//! Answer-agreement metrics: how similar are mining answers computed on
//! the original and on the published graph? These turn "utility" into
//! task-level numbers (the reproduction's mining-utility experiment).

use chameleon_ugraph::NodeId;
use std::collections::HashSet;

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` of two node sets (1.0 when both
/// are empty — identical answers).
pub fn jaccard(a: &[NodeId], b: &[NodeId]) -> f64 {
    let sa: HashSet<NodeId> = a.iter().copied().collect();
    let sb: HashSet<NodeId> = b.iter().copied().collect();
    let union = sa.union(&sb).count();
    if union == 0 {
        return 1.0;
    }
    sa.intersection(&sb).count() as f64 / union as f64
}

/// Top-k rank overlap: the fraction of the first `k` entries of `a` that
/// also appear in the first `k` entries of `b` (order-insensitive within
/// the prefix; 1.0 when both prefixes are empty).
pub fn rank_overlap_at_k(a: &[NodeId], b: &[NodeId], k: usize) -> f64 {
    let ka = a.iter().take(k).copied().collect::<HashSet<_>>();
    let kb = b.iter().take(k).copied().collect::<HashSet<_>>();
    let denom = ka.len().max(kb.len());
    if denom == 0 {
        return 1.0;
    }
    ka.intersection(&kb).count() as f64 / denom as f64
}

/// Best-match average Jaccard between two cluster sets: each cluster of
/// `a` is matched to its most similar cluster of `b`; the weighted (by
/// cluster size) mean similarity is returned. Asymmetric by design — call
/// both ways for a symmetric picture. Returns 1.0 when `a` is empty.
pub fn cluster_agreement(a: &[Vec<NodeId>], b: &[Vec<NodeId>]) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let mut weighted = 0.0;
    let mut total = 0.0;
    for ca in a {
        let best = b.iter().map(|cb| jaccard(ca, cb)).fold(0.0f64, f64::max);
        weighted += best * ca.len() as f64;
        total += ca.len() as f64;
    }
    weighted / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1], &[]), 0.0);
    }

    #[test]
    fn jaccard_ignores_duplicates_and_order() {
        assert_eq!(jaccard(&[3, 1, 2, 2], &[2, 1, 3]), 1.0);
    }

    #[test]
    fn rank_overlap() {
        let a = [1u32, 2, 3, 4, 5];
        let b = [3u32, 2, 9, 1, 8];
        // top-3 of a = {1,2,3}; of b = {3,2,9} → overlap 2/3.
        assert!((rank_overlap_at_k(&a, &b, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rank_overlap_at_k(&a, &a, 5), 1.0);
        assert_eq!(rank_overlap_at_k(&a, &b, 0), 1.0);
        // Prefixes shorter than k.
        assert!((rank_overlap_at_k(&[1], &[1, 2], 5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cluster_agreement_perfect_and_partial() {
        let a = vec![vec![0u32, 1, 2], vec![3, 4]];
        assert_eq!(cluster_agreement(&a, &a), 1.0);
        let b = vec![vec![0u32, 1, 2, 3, 4]];
        // Cluster {0,1,2}: best jaccard 3/5; {3,4}: 2/5.
        // Weighted: (3·0.6 + 2·0.4)/5 = 0.52
        assert!((cluster_agreement(&a, &b) - 0.52).abs() < 1e-12);
        assert_eq!(cluster_agreement(&[], &b), 1.0);
        assert_eq!(cluster_agreement(&a, &[]), 0.0);
    }
}
