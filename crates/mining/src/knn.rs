//! Reliability-based k-nearest neighbors (after Potamias et al., VLDB
//! 2010 — the paper's ref [30]).
//!
//! The "distance" from a source `s` to a node `v` in an uncertain graph is
//! taken to be the (negated) two-terminal reliability `R_{s,v}`: the most
//! reliable nodes are the nearest. Queries run off a shared
//! [`WorldEnsemble`], so a batch of kNN queries costs one sampling pass.

use chameleon_reliability::WorldEnsemble;
use chameleon_ugraph::NodeId;

/// One kNN answer: a neighbor and its estimated reliability from the
/// query source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The neighbor node.
    pub node: NodeId,
    /// Estimated two-terminal reliability from the query source.
    pub reliability: f64,
}

/// Returns the `k` nodes most reliably connected to `source`, descending
/// by reliability; ties break by node id for determinism. The source
/// itself is excluded. Nodes with zero estimated reliability are omitted,
/// so fewer than `k` answers may be returned on fragmented graphs.
///
/// # Panics
/// Panics if `source` is out of range for the ensemble's node count.
pub fn reliability_knn(ensemble: &WorldEnsemble, source: NodeId, k: usize) -> Vec<Neighbor> {
    let n = ensemble.num_nodes();
    assert!((source as usize) < n, "source {source} out of range");
    if k == 0 || ensemble.is_empty() {
        return Vec::new();
    }
    // One pass over the label cache: count co-membership per node.
    let mut hits = vec![0u32; n];
    for w in 0..ensemble.len() {
        let labels = ensemble.labels(w);
        let ls = labels[source as usize];
        for (v, &l) in labels.iter().enumerate() {
            if l == ls {
                hits[v] += 1;
            }
        }
    }
    let total = ensemble.len() as f64;
    let mut scored: Vec<Neighbor> = hits
        .iter()
        .enumerate()
        .filter(|&(v, &h)| v as NodeId != source && h > 0)
        .map(|(v, &h)| Neighbor {
            node: v as NodeId,
            reliability: h as f64 / total,
        })
        .collect();
    scored.sort_by(|a, b| {
        b.reliability
            .partial_cmp(&a.reliability)
            .unwrap()
            .then(a.node.cmp(&b.node))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_ugraph::UncertainGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_with_strong_and_weak() -> UncertainGraph {
        // 0 -0.95- 1 -0.95- 2   and   0 -0.2- 3
        let mut g = UncertainGraph::with_nodes(5);
        g.add_edge(0, 1, 0.95).unwrap();
        g.add_edge(1, 2, 0.95).unwrap();
        g.add_edge(0, 3, 0.2).unwrap();
        g
    }

    #[test]
    fn orders_by_reliability() {
        let g = chain_with_strong_and_weak();
        let mut rng = StdRng::seed_from_u64(0);
        let ens = WorldEnsemble::sample(&g, 3000, &mut rng);
        let knn = reliability_knn(&ens, 0, 3);
        assert_eq!(knn.len(), 3);
        assert_eq!(knn[0].node, 1); // R ≈ 0.95
        assert_eq!(knn[1].node, 2); // R ≈ 0.90
        assert_eq!(knn[2].node, 3); // R ≈ 0.20
        assert!(knn[0].reliability > knn[1].reliability);
        assert!(knn[1].reliability > knn[2].reliability);
        assert!((knn[0].reliability - 0.95).abs() < 0.03);
        assert!((knn[1].reliability - 0.9025).abs() < 0.03);
    }

    #[test]
    fn excludes_source_and_unreachable() {
        let g = chain_with_strong_and_weak(); // node 4 isolated
        let mut rng = StdRng::seed_from_u64(1);
        let ens = WorldEnsemble::sample(&g, 500, &mut rng);
        let knn = reliability_knn(&ens, 0, 10);
        assert!(knn.iter().all(|nb| nb.node != 0));
        assert!(knn.iter().all(|nb| nb.node != 4));
        assert_eq!(knn.len(), 3);
    }

    #[test]
    fn k_zero_and_empty_ensemble() {
        let g = chain_with_strong_and_weak();
        let mut rng = StdRng::seed_from_u64(2);
        let ens = WorldEnsemble::sample(&g, 50, &mut rng);
        assert!(reliability_knn(&ens, 0, 0).is_empty());
        let empty = WorldEnsemble::from_worlds(&g, vec![]);
        assert!(reliability_knn(&empty, 0, 5).is_empty());
    }

    #[test]
    fn matches_pairwise_reliability_queries() {
        let g = chain_with_strong_and_weak();
        let mut rng = StdRng::seed_from_u64(3);
        let ens = WorldEnsemble::sample(&g, 1000, &mut rng);
        let knn = reliability_knn(&ens, 2, 4);
        for nb in &knn {
            let direct = ens.two_terminal_reliability(2, nb.node);
            assert!((nb.reliability - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_tie_break() {
        // Symmetric star: all leaves have identical reliability from the
        // center; ordering must be by node id.
        let mut g = UncertainGraph::with_nodes(4);
        for v in 1..4u32 {
            g.add_edge(0, v, 1.0).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(4);
        let ens = WorldEnsemble::sample(&g, 50, &mut rng);
        let knn = reliability_knn(&ens, 0, 3);
        let ids: Vec<NodeId> = knn.iter().map(|nb| nb.node).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_source_panics() {
        let g = chain_with_strong_and_weak();
        let ens = WorldEnsemble::from_worlds(&g, vec![]);
        let _ = reliability_knn(&ens, 99, 1);
    }
}
