//! Uncertain-graph mining tasks.
//!
//! The paper motivates publishing uncertain graphs precisely because
//! downstream researchers run mining algorithms on them: locating
//! k-nearest neighbors under reliability distance (Potamias et al.,
//! VLDB 2010 — paper ref \[30\]), detecting protein complexes as reliable
//! dense clusters (refs \[4\], \[38\]), and maximizing influence spread
//! (Kempe et al. — ref \[20\]). This crate implements those tasks so the
//! reproduction can measure utility *as downstream analyses experience
//! it*: run the same task on the original and the published graph and
//! compare answers.
//!
//! * [`knn`] — reliability-based k-nearest neighbors.
//! * [`clusters`] — reliable-cluster detection (threshold peeling over
//!   pairwise reliabilities).
//! * [`influence`] — independent-cascade influence spread (= multi-source
//!   reachability over possible worlds) and a greedy seed selector.
//! * [`agreement`] — answer-agreement metrics (Jaccard, rank overlap)
//!   between original and published analyses.

//! # Example
//!
//! ```
//! use chameleon_mining::{reliability_knn, influence_spread};
//! use chameleon_reliability::WorldEnsemble;
//! use chameleon_ugraph::UncertainGraph;
//! use rand::SeedableRng;
//!
//! let mut g = UncertainGraph::with_nodes(4);
//! g.add_edge(0, 1, 0.9).unwrap();
//! g.add_edge(1, 2, 0.9).unwrap();
//! g.add_edge(0, 3, 0.1).unwrap();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let ens = WorldEnsemble::sample(&g, 1500, &mut rng);
//! let knn = reliability_knn(&ens, 0, 2);
//! assert_eq!(knn[0].node, 1); // the most reliable contact
//! assert!(influence_spread(&ens, &[0]) > 2.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agreement;
pub mod clusters;
pub mod influence;
pub mod knn;

pub use agreement::{cluster_agreement, jaccard, rank_overlap_at_k};
pub use clusters::reliable_clusters;
pub use influence::{greedy_seed_selection, influence_spread};
pub use knn::reliability_knn;
