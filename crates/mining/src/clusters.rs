//! Reliable-cluster detection (protein-complex style, after the paper's
//! refs [4] and [38]).
//!
//! A *reliable cluster* is a maximal set of nodes that stay mutually
//! connected in at least a `threshold` fraction of possible worlds. We
//! compute them by thresholding per-world co-membership: build the graph
//! whose edges are node pairs with estimated pairwise reliability ≥
//! `threshold` — restricted to the support edges of the uncertain graph to
//! stay O(N·|E|) — and take its connected components. This is the standard
//! sampled-reliability clustering used for protein-complex detection on
//! probabilistic PPI networks.

use chameleon_reliability::WorldEnsemble;
use chameleon_ugraph::{NodeId, UncertainGraph, UnionFind};

/// Clusters of nodes pairwise-reliably connected at the given threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSet {
    /// Clusters with ≥ `min_size` members, each sorted ascending; the list
    /// is sorted by (size desc, first member asc) for determinism.
    pub clusters: Vec<Vec<NodeId>>,
    /// The reliability threshold used.
    pub threshold: f64,
}

impl ClusterSet {
    /// Number of clusters found.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when no cluster met the size bar.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The cluster containing `v`, if any.
    pub fn cluster_of(&self, v: NodeId) -> Option<&[NodeId]> {
        self.clusters
            .iter()
            .find(|c| c.binary_search(&v).is_ok())
            .map(|c| c.as_slice())
    }
}

/// Detects reliable clusters: edges of the *support graph* whose endpoint
/// reliability is at least `threshold` are kept, and connected components
/// of the kept graph with at least `min_size` nodes are reported.
///
/// # Panics
/// Panics if `threshold` is outside `[0, 1]` or the ensemble does not
/// match the graph's node count.
pub fn reliable_clusters(
    graph: &UncertainGraph,
    ensemble: &WorldEnsemble,
    threshold: f64,
    min_size: usize,
) -> ClusterSet {
    assert!((0.0..=1.0).contains(&threshold), "invalid threshold");
    assert_eq!(
        graph.num_nodes(),
        ensemble.num_nodes(),
        "graph/ensemble mismatch"
    );
    let n = graph.num_nodes();
    let n_worlds = ensemble.len();
    let mut uf = UnionFind::new(n);
    if n_worlds > 0 {
        // Count co-membership per support edge in one pass.
        let mut hits = vec![0u32; graph.num_edges()];
        for w in 0..n_worlds {
            let labels = ensemble.labels(w);
            for (idx, e) in graph.edges().iter().enumerate() {
                if labels[e.u as usize] == labels[e.v as usize] {
                    hits[idx] += 1;
                }
            }
        }
        for (idx, e) in graph.edges().iter().enumerate() {
            if hits[idx] as f64 / n_worlds as f64 >= threshold {
                uf.union(e.u, e.v);
            }
        }
    }
    let labels = uf.component_labels();
    let num = uf.num_components();
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num];
    for v in 0..n as u32 {
        members[labels[v as usize] as usize].push(v);
    }
    let mut clusters: Vec<Vec<NodeId>> = members
        .into_iter()
        .filter(|c| c.len() >= min_size.max(1))
        .collect();
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    ClusterSet {
        clusters,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two strong triangles joined by a weak bridge.
    fn dumbbell() -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(7);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2)] {
            g.add_edge(u, v, 0.95).unwrap();
        }
        for &(u, v) in &[(3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 0.95).unwrap();
        }
        g.add_edge(2, 3, 0.15).unwrap(); // weak bridge; node 6 isolated
        g
    }

    #[test]
    fn high_threshold_separates_weakly_bridged_clusters() {
        let g = dumbbell();
        let mut rng = StdRng::seed_from_u64(0);
        let ens = WorldEnsemble::sample(&g, 2000, &mut rng);
        let cs = reliable_clusters(&g, &ens, 0.8, 2);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs.clusters[0], vec![0, 1, 2]);
        assert_eq!(cs.clusters[1], vec![3, 4, 5]);
        assert_eq!(cs.cluster_of(4), Some(&[3, 4, 5][..]));
        assert_eq!(cs.cluster_of(6), None);
    }

    #[test]
    fn low_threshold_merges_via_bridge() {
        let g = dumbbell();
        let mut rng = StdRng::seed_from_u64(1);
        let ens = WorldEnsemble::sample(&g, 2000, &mut rng);
        let cs = reliable_clusters(&g, &ens, 0.05, 2);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.clusters[0], vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn min_size_filters_singletons() {
        let g = dumbbell();
        let mut rng = StdRng::seed_from_u64(2);
        let ens = WorldEnsemble::sample(&g, 500, &mut rng);
        let cs = reliable_clusters(&g, &ens, 0.8, 1);
        // Singletons included at min_size = 1: node 6 and both triangles.
        assert!(cs.clusters.iter().any(|c| c == &vec![6]));
        let cs2 = reliable_clusters(&g, &ens, 0.8, 4);
        assert!(cs2.is_empty());
    }

    #[test]
    fn threshold_one_requires_certain_connection() {
        let mut g = UncertainGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(2, 3, 0.99).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let ens = WorldEnsemble::sample(&g, 800, &mut rng);
        let cs = reliable_clusters(&g, &ens, 1.0, 2);
        // 0-1 is certain; 2-3 will miss in ~8 of 800 worlds.
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.clusters[0], vec![0, 1]);
    }

    #[test]
    fn empty_ensemble_yields_singletons_only() {
        let g = dumbbell();
        let ens = WorldEnsemble::from_worlds(&g, vec![]);
        let cs = reliable_clusters(&g, &ens, 0.5, 2);
        assert!(cs.is_empty());
    }

    #[test]
    #[should_panic]
    fn invalid_threshold_panics() {
        let g = dumbbell();
        let ens = WorldEnsemble::from_worlds(&g, vec![]);
        let _ = reliable_clusters(&g, &ens, 1.5, 2);
    }

    #[test]
    fn deterministic_output_order() {
        let g = dumbbell();
        let mut rng = StdRng::seed_from_u64(4);
        let ens = WorldEnsemble::sample(&g, 300, &mut rng);
        let a = reliable_clusters(&g, &ens, 0.5, 2);
        let b = reliable_clusters(&g, &ens, 0.5, 2);
        assert_eq!(a, b);
    }
}
