//! Influence spread under the independent-cascade model (Kempe et al. —
//! the paper's ref [20], its social-trust motivation scenario).
//!
//! For an uncertain graph interpreted as an IC diffusion network, the
//! expected influence of a seed set S is the expected number of nodes
//! reachable from S across possible worlds — i.e. multi-source
//! reachability, computable directly from a [`WorldEnsemble`]'s component
//! labels. The classic greedy hill-climbing seed selector (1−1/e
//! approximation for this submodular objective) is provided too.

use chameleon_reliability::WorldEnsemble;
use chameleon_ugraph::NodeId;

/// Expected number of nodes reachable from the seed set (seeds count
/// themselves).
///
/// # Panics
/// Panics if `seeds` is empty or indexes out of range.
pub fn influence_spread(ensemble: &WorldEnsemble, seeds: &[NodeId]) -> f64 {
    assert!(!seeds.is_empty(), "need at least one seed");
    if ensemble.is_empty() {
        return seeds.len() as f64;
    }
    let mut total = 0u64;
    let mut seed_labels = std::collections::HashSet::new();
    for w in 0..ensemble.len() {
        let labels = ensemble.labels(w);
        let sizes = ensemble.component_sizes(w);
        seed_labels.clear();
        for &s in seeds {
            seed_labels.insert(labels[s as usize]);
        }
        total += seed_labels
            .iter()
            .map(|&l| sizes[l as usize] as u64)
            .sum::<u64>();
    }
    total as f64 / ensemble.len() as f64
}

/// Greedy influence maximization: picks `k` seeds by hill climbing on
/// [`influence_spread`] (ties by smallest node id). Returns the seeds in
/// selection order together with the marginal spread after each pick.
///
/// # Panics
/// Panics if `k` exceeds the node count.
#[allow(clippy::needless_range_loop)] // worlds index three parallel caches
pub fn greedy_seed_selection(ensemble: &WorldEnsemble, k: usize) -> Vec<(NodeId, f64)> {
    let n = ensemble.num_nodes();
    assert!(k <= n, "cannot select {k} seeds from {n} nodes");
    let mut selected: Vec<NodeId> = Vec::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    // Incremental: track which (world, label) pairs are already covered.
    let n_worlds = ensemble.len();
    let mut covered: Vec<std::collections::HashSet<u32>> =
        vec![std::collections::HashSet::new(); n_worlds];
    let mut current = 0.0f64;
    for _ in 0..k {
        let mut best: Option<(NodeId, f64)> = None;
        for v in 0..n as u32 {
            if selected.contains(&v) {
                continue;
            }
            // Marginal gain of v: sum of sizes of its components in worlds
            // where its component is not yet covered.
            let mut gain = 0u64;
            for w in 0..n_worlds {
                let l = ensemble.labels(w)[v as usize];
                if !covered[w].contains(&l) {
                    gain += ensemble.component_sizes(w)[l as usize] as u64;
                }
            }
            let gain = if n_worlds == 0 {
                1.0 // isolated counting: each new seed adds itself
            } else {
                gain as f64 / n_worlds as f64
            };
            let better = match best {
                None => true,
                Some((bv, bg)) => gain > bg + 1e-12 || ((gain - bg).abs() <= 1e-12 && v < bv),
            };
            if better {
                best = Some((v, gain));
            }
        }
        let (v, gain) = best.expect("k <= n guarantees a candidate");
        selected.push(v);
        for w in 0..n_worlds {
            let l = ensemble.labels(w)[v as usize];
            covered[w].insert(l);
        }
        current += gain;
        out.push((v, current));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_ugraph::UncertainGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_stars() -> UncertainGraph {
        // Star A: hub 0 with 4 leaves (p=0.9); star B: hub 5 with 2 leaves.
        let mut g = UncertainGraph::with_nodes(8);
        for v in 1..5u32 {
            g.add_edge(0, v, 0.9).unwrap();
        }
        for v in 6..8u32 {
            g.add_edge(5, v, 0.9).unwrap();
        }
        g
    }

    #[test]
    fn spread_counts_expected_reachability() {
        let g = two_stars();
        let mut rng = StdRng::seed_from_u64(0);
        let ens = WorldEnsemble::sample(&g, 4000, &mut rng);
        // Seed {0}: expected spread = 1 + 4·0.9 = 4.6.
        let s = influence_spread(&ens, &[0]);
        assert!((s - 4.6).abs() < 0.1, "spread={s}");
        // Seeding a leaf: 1 + 0.9·(1 + 3·0.9) ≈ 4.33? No: leaf 1 reaches 0
        // w.p. .9, and through it each other leaf w.p. .9² = .81:
        // E = 1 + .9 + 3·.81 = 4.33.
        let s_leaf = influence_spread(&ens, &[1]);
        assert!((s_leaf - 4.33).abs() < 0.12, "spread={s_leaf}");
    }

    #[test]
    fn disjoint_seeds_add_up() {
        let g = two_stars();
        let mut rng = StdRng::seed_from_u64(1);
        let ens = WorldEnsemble::sample(&g, 3000, &mut rng);
        let a = influence_spread(&ens, &[0]);
        let b = influence_spread(&ens, &[5]);
        let both = influence_spread(&ens, &[0, 5]);
        assert!((both - (a + b)).abs() < 0.05, "{both} vs {a}+{b}");
    }

    #[test]
    fn overlapping_seeds_are_submodular() {
        let g = two_stars();
        let mut rng = StdRng::seed_from_u64(2);
        let ens = WorldEnsemble::sample(&g, 2000, &mut rng);
        // Adding a node from the same component adds little.
        let hub = influence_spread(&ens, &[0]);
        let hub_plus_leaf = influence_spread(&ens, &[0, 1]);
        assert!(hub_plus_leaf >= hub);
        assert!(hub_plus_leaf - hub < 0.5);
    }

    #[test]
    fn greedy_picks_big_star_first() {
        let g = two_stars();
        let mut rng = StdRng::seed_from_u64(3);
        let ens = WorldEnsemble::sample(&g, 2000, &mut rng);
        let seeds = greedy_seed_selection(&ens, 2);
        assert_eq!(seeds[0].0, 0, "hub of the big star first");
        assert_eq!(seeds[1].0, 5, "hub of the small star second");
        // Cumulative spread grows.
        assert!(seeds[1].1 > seeds[0].1);
        // Greedy total matches direct evaluation of the chosen set.
        let direct = influence_spread(&ens, &[seeds[0].0, seeds[1].0]);
        assert!((seeds[1].1 - direct).abs() < 1e-9);
    }

    #[test]
    fn greedy_is_deterministic() {
        let g = two_stars();
        let mut rng = StdRng::seed_from_u64(4);
        let ens = WorldEnsemble::sample(&g, 500, &mut rng);
        let a = greedy_seed_selection(&ens, 3);
        let b = greedy_seed_selection(&ens, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_ensemble_counts_seeds() {
        let g = two_stars();
        let ens = WorldEnsemble::from_worlds(&g, vec![]);
        assert_eq!(influence_spread(&ens, &[0, 5]), 2.0);
    }

    #[test]
    #[should_panic]
    fn empty_seed_set_panics() {
        let g = two_stars();
        let ens = WorldEnsemble::from_worlds(&g, vec![]);
        let _ = influence_spread(&ens, &[]);
    }

    #[test]
    #[should_panic]
    fn too_many_seeds_panics() {
        let g = two_stars();
        let ens = WorldEnsemble::from_worlds(&g, vec![]);
        let _ = greedy_seed_selection(&ens, 99);
    }
}
