//! Synthetic dataset generation: heavy-tailed Chung–Lu topology + per-
//! dataset probability model.

use crate::prob_models::ProbModel;
use crate::spec::{DatasetKind, DatasetSpec};
use chameleon_stats::SeedSequence;
use chameleon_ugraph::{generators, UncertainGraph};
use rand::Rng;

/// Generates a synthetic uncertain graph realizing `spec`.
///
/// Topology: Chung–Lu with power-law expected-degree weights (exponent
/// `spec.power_law_gamma`, maximum weight ≈ √(mean·n) — the standard
/// structural cut-off), rescaled to hit `spec.edges`. Probabilities: the
/// dataset's [`ProbModel`].
pub fn generate(spec: &DatasetSpec, seed: u64) -> UncertainGraph {
    let seq = SeedSequence::new(seed);
    let mut topo_rng = seq.rng("topology");
    let mean_degree = spec.mean_degree().max(0.1);
    let max_weight = (mean_degree * spec.nodes as f64)
        .sqrt()
        .max(mean_degree + 1.0);
    let weights =
        generators::power_law_weights(spec.nodes, spec.power_law_gamma, mean_degree, max_weight);
    let mut graph = generators::chung_lu(&weights, &mut topo_rng);
    let model = match spec.kind {
        DatasetKind::Dblp => ProbModel::dblp(),
        DatasetKind::Brightkite => ProbModel::brightkite(),
        DatasetKind::Ppi => ProbModel::ppi(),
    };
    let mut prob_rng = seq.rng("probabilities");
    assign_probs(&mut graph, &model, &mut prob_rng);
    graph
}

/// Overwrites every edge probability with a draw from `model`.
pub fn assign_probs<R: Rng + ?Sized>(graph: &mut UncertainGraph, model: &ProbModel, rng: &mut R) {
    for e in 0..graph.num_edges() as u32 {
        let p = model.sample(rng);
        graph
            .set_prob(e, p)
            .expect("model yields valid probabilities");
    }
}

/// DBLP-like graph with ~`nodes` vertices.
pub fn dblp_like(nodes: usize, seed: u64) -> UncertainGraph {
    generate(&DatasetKind::Dblp.scaled_spec(nodes), seed)
}

/// BRIGHTKITE-like graph with ~`nodes` vertices.
pub fn brightkite_like(nodes: usize, seed: u64) -> UncertainGraph {
    generate(&DatasetKind::Brightkite.scaled_spec(nodes), seed)
}

/// PPI-like graph with ~`nodes` vertices.
pub fn ppi_like(nodes: usize, seed: u64) -> UncertainGraph {
    generate(&DatasetKind::Ppi.scaled_spec(nodes), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_stats::Summary;

    #[test]
    fn dblp_like_matches_spec() {
        let g = dblp_like(1200, 0);
        assert_eq!(g.num_nodes(), 1200);
        let spec = DatasetKind::Dblp.scaled_spec(1200);
        let got = g.num_edges() as f64;
        let want = spec.edges as f64;
        assert!((got - want).abs() / want < 0.1, "edges {got} vs {want}");
        assert!((g.mean_edge_prob() - 0.46).abs() < 0.05);
    }

    #[test]
    fn brightkite_like_small_probs() {
        let g = brightkite_like(1000, 1);
        assert!((g.mean_edge_prob() - 0.29).abs() < 0.04);
        // Right-skew: plenty of very low probability edges.
        let low = g.edges().iter().filter(|e| e.p < 0.15).count();
        assert!(low as f64 > 0.25 * g.num_edges() as f64);
    }

    #[test]
    fn ppi_like_is_denser() {
        let ppi = ppi_like(600, 2);
        let bk = brightkite_like(600, 2);
        assert!(
            ppi.expected_average_degree() > 2.0 * bk.expected_average_degree(),
            "ppi {} vs bk {}",
            ppi.expected_average_degree(),
            bk.expected_average_degree()
        );
    }

    #[test]
    fn heavy_tail_present() {
        let g = dblp_like(1500, 3);
        let degrees: Vec<f64> = (0..g.num_nodes() as u32)
            .map(|v| g.degree(v) as f64)
            .collect();
        let s = Summary::from_slice(&degrees);
        assert!(
            s.max() > 4.0 * s.mean(),
            "max {} vs mean {} — expected a heavy tail",
            s.max(),
            s.mean()
        );
    }

    #[test]
    fn generation_is_reproducible() {
        let a = dblp_like(400, 9);
        let b = dblp_like(400, 9);
        assert_eq!(a.num_edges(), b.num_edges());
        for (x, y) in a.edges().iter().zip(b.edges()) {
            assert_eq!((x.u, x.v), (y.u, y.v));
            assert!((x.p - y.p).abs() < 1e-15);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = dblp_like(400, 10);
        let b = dblp_like(400, 11);
        let identical = a.num_edges() == b.num_edges()
            && a.edges()
                .iter()
                .zip(b.edges())
                .all(|(x, y)| (x.u, x.v) == (y.u, y.v));
        assert!(!identical);
    }

    #[test]
    fn all_probabilities_valid() {
        for g in [dblp_like(300, 4), brightkite_like(300, 5), ppi_like(300, 6)] {
            assert!(g.edges().iter().all(|e| e.p > 0.0 && e.p <= 1.0));
        }
    }

    #[test]
    fn assign_probs_overwrites_all() {
        let mut g = UncertainGraph::with_nodes(5);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        let mut rng = chameleon_stats::SeedSequence::new(7).rng("t");
        assign_probs(&mut g, &ProbModel::Uniform { lo: 0.2, hi: 0.4 }, &mut rng);
        for e in g.edges() {
            assert!((0.2..=0.4).contains(&e.p));
        }
    }
}
