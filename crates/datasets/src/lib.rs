//! Synthetic uncertain-graph datasets modeled on the paper's evaluation
//! corpora (Table I): DBLP, BRIGHTKITE and PPI.
//!
//! The real datasets are not redistributable, so we generate *matched-
//! marginal substitutes* (DESIGN.md §4): a Chung–Lu heavy-tailed topology
//! scaled by a user-chosen factor, with edge existence probabilities drawn
//! from per-dataset models matching the distributions shown in the paper's
//! Figure 3(a):
//!
//! * **DBLP-like** — probabilities concentrate on a few discrete values
//!   (the output of a collaboration-count prediction model); mean ≈ 0.46.
//! * **BRIGHTKITE-like** — "generally very small" probabilities from a
//!   right-skewed (truncated-exponential) model; mean ≈ 0.29.
//! * **PPI-like** — "more uniform" probabilities; mean ≈ 0.29; denser
//!   topology (the real PPI has mean degree ≈ 64 vs DBLP's ≈ 13).
//!
//! All generators take an explicit scale (target node count) and a seed;
//! the paper-scale characteristics are tabulated in [`spec`].

//! # Example
//!
//! ```
//! use chameleon_datasets::{brightkite_like, DatasetKind};
//!
//! let g = brightkite_like(400, 42);
//! assert_eq!(g.num_nodes(), 400);
//! // Mean edge probability matches paper Table I within tolerance.
//! assert!((g.mean_edge_prob() - 0.29).abs() < 0.05);
//! // Paper-scale reference specs are also available:
//! assert_eq!(DatasetKind::Dblp.paper_spec().nodes, 824_774);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fit;
pub mod prob_models;
pub mod spec;
pub mod synth;

pub use fit::{fit_prob_model, synth_like};
pub use prob_models::ProbModel;
pub use spec::{DatasetKind, DatasetSpec};
pub use synth::{brightkite_like, dblp_like, generate, ppi_like};
