//! Dataset specifications: the paper-scale characteristics (Table I) and
//! the scaled defaults used by the reproduction experiments.

/// Which of the paper's three datasets a synthetic graph models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// DBLP co-authorship network.
    Dblp,
    /// BRIGHTKITE location-based social network.
    Brightkite,
    /// Protein–protein interaction network (DREAM challenge).
    Ppi,
}

impl DatasetKind {
    /// All three, in the paper's order.
    pub const ALL: [DatasetKind; 3] =
        [DatasetKind::Dblp, DatasetKind::Brightkite, DatasetKind::Ppi];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Dblp => "DBLP",
            DatasetKind::Brightkite => "BRIGHTKITE",
            DatasetKind::Ppi => "PPI",
        }
    }

    /// The paper-scale specification (Table I).
    pub fn paper_spec(&self) -> DatasetSpec {
        match self {
            DatasetKind::Dblp => DatasetSpec {
                kind: *self,
                nodes: 824_774,
                edges: 5_566_096,
                mean_edge_prob: 0.46,
                tolerance: 1e-4,
                power_law_gamma: 2.3,
            },
            DatasetKind::Brightkite => DatasetSpec {
                kind: *self,
                nodes: 58_228,
                edges: 214_078,
                mean_edge_prob: 0.29,
                tolerance: 1e-3,
                power_law_gamma: 2.4,
            },
            DatasetKind::Ppi => DatasetSpec {
                kind: *self,
                nodes: 12_420,
                edges: 397_309,
                mean_edge_prob: 0.29,
                tolerance: 1e-2,
                power_law_gamma: 2.6,
            },
        }
    }

    /// A spec scaled down to approximately `nodes` vertices, preserving the
    /// paper dataset's mean degree (capped for tractability), mean edge
    /// probability and tolerance.
    pub fn scaled_spec(&self, nodes: usize) -> DatasetSpec {
        let paper = self.paper_spec();
        // Cap mean degree: PPI's 64 is untenably dense for Monte-Carlo at
        // small scale; 24 preserves "much denser than the others".
        let mean_degree = paper.mean_degree().min(24.0);
        let edges = ((nodes as f64 * mean_degree) / 2.0).round() as usize;
        DatasetSpec {
            kind: *self,
            nodes,
            edges,
            mean_edge_prob: paper.mean_edge_prob,
            tolerance: paper.tolerance,
            power_law_gamma: paper.power_law_gamma,
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A dataset specification: target sizes and distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Which dataset this models.
    pub kind: DatasetKind,
    /// Target node count.
    pub nodes: usize,
    /// Target edge count.
    pub edges: usize,
    /// Target mean edge probability (paper Table I "Edge Prob").
    pub mean_edge_prob: f64,
    /// Paper tolerance parameter ε (Table I "Tolerance level").
    pub tolerance: f64,
    /// Degree power-law exponent used by the synthetic topology.
    pub power_law_gamma: f64,
}

impl DatasetSpec {
    /// Mean degree `2·|E| / |V|`.
    pub fn mean_degree(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            2.0 * self.edges as f64 / self.nodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_i_values() {
        let dblp = DatasetKind::Dblp.paper_spec();
        assert_eq!(dblp.nodes, 824_774);
        assert_eq!(dblp.edges, 5_566_096);
        assert!((dblp.mean_edge_prob - 0.46).abs() < 1e-12);
        assert!((dblp.tolerance - 1e-4).abs() < 1e-18);

        let bk = DatasetKind::Brightkite.paper_spec();
        assert_eq!(bk.nodes, 58_228);
        assert!((bk.tolerance - 1e-3).abs() < 1e-18);

        let ppi = DatasetKind::Ppi.paper_spec();
        assert_eq!(ppi.edges, 397_309);
        assert!((ppi.tolerance - 1e-2).abs() < 1e-18);
    }

    #[test]
    fn mean_degrees_match_paper() {
        // DBLP ≈ 13.5, BRIGHTKITE ≈ 7.35, PPI ≈ 64.
        assert!((DatasetKind::Dblp.paper_spec().mean_degree() - 13.497).abs() < 0.01);
        assert!((DatasetKind::Brightkite.paper_spec().mean_degree() - 7.353).abs() < 0.01);
        assert!((DatasetKind::Ppi.paper_spec().mean_degree() - 63.97).abs() < 0.01);
    }

    #[test]
    fn scaled_spec_preserves_shape() {
        let s = DatasetKind::Brightkite.scaled_spec(2000);
        assert_eq!(s.nodes, 2000);
        assert!((s.mean_degree() - 7.353).abs() < 0.1);
        assert_eq!(s.mean_edge_prob, 0.29);
        // PPI density capped.
        let p = DatasetKind::Ppi.scaled_spec(1000);
        assert!((p.mean_degree() - 24.0).abs() < 0.1);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(DatasetKind::Dblp.name(), "DBLP");
        assert_eq!(format!("{}", DatasetKind::Ppi), "PPI");
        assert_eq!(DatasetKind::ALL.len(), 3);
    }

    #[test]
    fn zero_node_mean_degree() {
        let mut s = DatasetKind::Dblp.paper_spec();
        s.nodes = 0;
        assert_eq!(s.mean_degree(), 0.0);
    }
}
