//! Edge-probability models matching the marginal distributions of paper
//! Figure 3(a).

use rand::Rng;

/// A distribution over edge existence probabilities.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbModel {
    /// A few discrete probability levels with weights — DBLP's prediction
    /// model emits "only a few probability values distributed in \[0,1\]".
    Discrete {
        /// The probability levels.
        levels: Vec<f64>,
        /// Relative weights (normalized internally).
        weights: Vec<f64>,
    },
    /// Truncated exponential on (0, 1]: right-skewed, "generally very
    /// small" values — BRIGHTKITE's visit-prediction probabilities.
    TruncatedExponential {
        /// Rate parameter; mean of the untruncated law is 1/rate.
        rate: f64,
    },
    /// Uniform on `[lo, hi]` — PPI's "more uniform" experimental
    /// confidences.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// General Beta(α, β) — for custom datasets whose probability marginal
    /// is neither discrete, exponential nor uniform.
    Beta {
        /// Alpha shape.
        alpha: f64,
        /// Beta shape.
        beta: f64,
    },
}

impl ProbModel {
    /// The DBLP-like model: levels from a count-based collaboration
    /// predictor `p = 1 − exp(−c/μ)` for c = 1..6 collaborations, weighted
    /// by a heavy-tailed count distribution. Mean ≈ 0.46.
    pub fn dblp() -> Self {
        ProbModel::Discrete {
            levels: vec![0.18, 0.33, 0.45, 0.55, 0.70, 0.86, 0.95],
            weights: vec![0.25, 0.20, 0.16, 0.13, 0.11, 0.09, 0.06],
        }
    }

    /// The BRIGHTKITE-like model: truncated exponential, mean ≈ 0.29.
    pub fn brightkite() -> Self {
        // Mean of Exp(rate) truncated to (0,1]:
        // μ(r) = 1/r − e^{−r}/(1 − e^{−r}); r = 2.97 gives μ ≈ 0.29.
        ProbModel::TruncatedExponential { rate: 2.97 }
    }

    /// The PPI-like model: uniform confidences, mean ≈ 0.29.
    pub fn ppi() -> Self {
        ProbModel::Uniform { lo: 0.01, hi: 0.57 }
    }

    /// Draws one probability.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            ProbModel::Discrete { levels, weights } => {
                let total: f64 = weights.iter().sum();
                let mut x = rng.gen::<f64>() * total;
                for (lvl, w) in levels.iter().zip(weights) {
                    if x < *w {
                        return *lvl;
                    }
                    x -= w;
                }
                *levels.last().expect("non-empty levels")
            }
            ProbModel::TruncatedExponential { rate } => {
                // Inverse CDF of Exp(rate) truncated to (0, 1]:
                // F(x) = (1 − e^{−r·x}) / (1 − e^{−r}).
                let u = rng.gen::<f64>();
                let z = 1.0 - (-rate).exp();
                let x = -(1.0 - u * z).ln() / rate;
                x.clamp(f64::MIN_POSITIVE, 1.0)
            }
            ProbModel::Uniform { lo, hi } => rng.gen_range(*lo..=*hi),
            ProbModel::Beta { alpha, beta } => {
                chameleon_stats::sample_beta(*alpha, *beta, rng).clamp(f64::MIN_POSITIVE, 1.0)
            }
        }
    }

    /// Analytic mean of the model.
    pub fn mean(&self) -> f64 {
        match self {
            ProbModel::Discrete { levels, weights } => {
                let total: f64 = weights.iter().sum();
                levels.iter().zip(weights).map(|(l, w)| l * w / total).sum()
            }
            ProbModel::TruncatedExponential { rate } => {
                let z = 1.0 - (-rate).exp();
                1.0 / rate - (-rate).exp() / z
            }
            ProbModel::Uniform { lo, hi } => 0.5 * (lo + hi),
            ProbModel::Beta { alpha, beta } => alpha / (alpha + beta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(model: &ProbModel, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| model.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn dblp_mean_matches_table_i() {
        let m = ProbModel::dblp();
        assert!((m.mean() - 0.46).abs() < 0.02, "mean={}", m.mean());
        assert!((sample_mean(&m, 20_000, 0) - m.mean()).abs() < 0.01);
    }

    #[test]
    fn brightkite_mean_matches_table_i() {
        let m = ProbModel::brightkite();
        assert!((m.mean() - 0.29).abs() < 0.01, "mean={}", m.mean());
        assert!((sample_mean(&m, 20_000, 1) - m.mean()).abs() < 0.01);
    }

    #[test]
    fn ppi_mean_matches_table_i() {
        let m = ProbModel::ppi();
        assert!((m.mean() - 0.29).abs() < 0.01, "mean={}", m.mean());
        assert!((sample_mean(&m, 20_000, 2) - m.mean()).abs() < 0.01);
    }

    #[test]
    fn dblp_produces_only_listed_levels() {
        let m = ProbModel::dblp();
        let ProbModel::Discrete { levels, .. } = &m else {
            panic!()
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let p = m.sample(&mut rng);
            assert!(levels.iter().any(|&l| (l - p).abs() < 1e-15));
        }
    }

    #[test]
    fn brightkite_is_right_skewed() {
        // Most mass below the mean: median < mean.
        let mut rng = StdRng::seed_from_u64(4);
        let m = ProbModel::brightkite();
        let mut xs: Vec<f64> = (0..20_001).map(|_| m.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[10_000];
        assert!(median < m.mean(), "median={median}, mean={}", m.mean());
        // Small values dominate: ≥ 55% below 0.3.
        let below = xs.iter().filter(|&&x| x < 0.3).count();
        assert!(below as f64 / xs.len() as f64 > 0.55);
    }

    #[test]
    fn all_samples_are_valid_probabilities() {
        let mut rng = StdRng::seed_from_u64(5);
        for m in [ProbModel::dblp(), ProbModel::brightkite(), ProbModel::ppi()] {
            for _ in 0..5000 {
                let p = m.sample(&mut rng);
                assert!((0.0..=1.0).contains(&p) && p > 0.0, "p={p} from {m:?}");
            }
        }
    }

    #[test]
    fn beta_model_moments_and_validity() {
        let m = ProbModel::Beta {
            alpha: 2.0,
            beta: 5.0,
        };
        assert!((m.mean() - 2.0 / 7.0).abs() < 1e-12);
        assert!((sample_mean(&m, 20_000, 9) - m.mean()).abs() < 0.01);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..2000 {
            let p = m.sample(&mut rng);
            assert!(p > 0.0 && p <= 1.0);
        }
    }

    #[test]
    fn ppi_spans_its_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = ProbModel::ppi();
        let xs: Vec<f64> = (0..5000).map(|_| m.sample(&mut rng)).collect();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 0.05 && max > 0.53, "min={min}, max={max}");
    }
}
