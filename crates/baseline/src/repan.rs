//! The Rep-An pipeline (paper Section IV, Figure 2): representative
//! extraction followed by deterministic-graph obfuscation.

use crate::representative::{extract_representative, RepresentativeStrategy};
use chameleon_core::{Chameleon, ChameleonConfig, ChameleonError, Method, ObfuscationResult};
use chameleon_ugraph::UncertainGraph;

/// The Rep-An baseline anonymizer.
#[derive(Debug, Clone)]
pub struct RepAn {
    config: ChameleonConfig,
    strategy: RepresentativeStrategy,
}

/// Output of the Rep-An pipeline.
#[derive(Debug, Clone)]
pub struct RepAnResult {
    /// The deterministic representative instance (stage-1 output).
    pub representative: UncertainGraph,
    /// The published obfuscated uncertain graph (stage-2 output).
    pub graph: UncertainGraph,
    /// Final noise parameter of the obfuscation stage.
    pub sigma: f64,
    /// Achieved unobfuscated fraction.
    pub eps_hat: f64,
    /// Stage-2 details.
    pub obfuscation: ObfuscationResult,
}

impl RepAn {
    /// Creates the baseline with the obfuscation parameters shared with
    /// Chameleon (so comparisons hold k, ε, c, q, t fixed) and the default
    /// expected-degree representative.
    pub fn new(config: ChameleonConfig) -> Self {
        Self {
            config,
            strategy: RepresentativeStrategy::default(),
        }
    }

    /// Overrides the representative-extraction strategy.
    pub fn with_strategy(mut self, strategy: RepresentativeStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The representative strategy in use.
    pub fn strategy(&self) -> RepresentativeStrategy {
        self.strategy
    }

    /// Runs the two-stage pipeline.
    ///
    /// Stage 2 is Boldi et al.'s deterministic-graph obfuscation, realized
    /// as the core crate's ME variant on the representative (max-entropy
    /// perturbation with p ∈ {0, 1} *is* Boldi's scheme; on a deterministic
    /// graph the adversary's expected-degree knowledge equals plain
    /// degrees).
    ///
    /// # Errors
    /// Propagates stage-2 failures ([`ChameleonError`]); additionally fails
    /// with [`ChameleonError::DegenerateInput`] when the representative
    /// came out edgeless (e.g. all probabilities below ½ with the
    /// most-probable strategy).
    pub fn anonymize(
        &self,
        graph: &UncertainGraph,
        seed: u64,
    ) -> Result<RepAnResult, ChameleonError> {
        let representative = extract_representative(graph, self.strategy);
        if representative.num_edges() == 0 {
            return Err(ChameleonError::DegenerateInput(
                "representative instance has no edges".into(),
            ));
        }
        let obfuscation =
            Chameleon::new(self.config.clone()).anonymize(&representative, Method::Me, seed)?;
        Ok(RepAnResult {
            representative,
            graph: obfuscation.graph.clone(),
            sigma: obfuscation.sigma,
            eps_hat: obfuscation.eps_hat,
            obfuscation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_core::anonymity::{anonymity_check, AdversaryKnowledge};
    use chameleon_ugraph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_graph(seed: u64) -> UncertainGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = generators::gnm(70, 180, &mut rng);
        for e in 0..g.num_edges() as u32 {
            g.set_prob(e, 0.25 + 0.6 * ((e % 4) as f64 / 4.0)).unwrap();
        }
        g
    }

    fn quick_config(k: usize) -> ChameleonConfig {
        ChameleonConfig::builder()
            .k(k)
            .epsilon(0.1)
            .trials(3)
            .num_world_samples(100)
            .sigma_tolerance(0.2)
            .build()
    }

    #[test]
    fn pipeline_achieves_privacy_on_representative() {
        let g = test_graph(1);
        let repan = RepAn::new(quick_config(6));
        let res = repan.anonymize(&g, 17).unwrap();
        assert!(res.eps_hat <= 0.1);
        // Privacy must hold against degree knowledge of the representative.
        let knowledge = AdversaryKnowledge::structural_degrees(&res.representative);
        let rep = anonymity_check(&res.graph, &knowledge, 6);
        assert!((rep.eps_hat - res.eps_hat).abs() < 1e-12);
        // Output is genuinely uncertain (obfuscation injects probabilities).
        let fuzzy = res
            .graph
            .edges()
            .iter()
            .filter(|e| e.p > 0.0 && e.p < 1.0)
            .count();
        assert!(fuzzy > 0, "obfuscated output should carry uncertainty");
    }

    #[test]
    fn representative_is_deterministic_stage() {
        let g = test_graph(2);
        let repan = RepAn::new(quick_config(5));
        let res = repan.anonymize(&g, 3).unwrap();
        assert!(res.representative.edges().iter().all(|e| e.p == 1.0));
        assert_eq!(res.representative.num_nodes(), g.num_nodes());
    }

    #[test]
    fn strategy_override() {
        let repan = RepAn::new(quick_config(4)).with_strategy(RepresentativeStrategy::MostProbable);
        assert_eq!(repan.strategy(), RepresentativeStrategy::MostProbable);
    }

    #[test]
    fn edgeless_representative_is_an_error() {
        // All probabilities 0.2 → most-probable world empty.
        let mut g = UncertainGraph::with_nodes(10);
        for v in 0..9u32 {
            g.add_edge(v, v + 1, 0.2).unwrap();
        }
        let repan = RepAn::new(quick_config(2)).with_strategy(RepresentativeStrategy::MostProbable);
        assert!(matches!(
            repan.anonymize(&g, 0),
            Err(ChameleonError::DegenerateInput(_))
        ));
    }

    #[test]
    fn reproducible_pipeline() {
        let g = test_graph(3);
        let repan = RepAn::new(quick_config(5));
        let a = repan.anonymize(&g, 7).unwrap();
        let b = repan.anonymize(&g, 7).unwrap();
        assert_eq!(a.sigma, b.sigma);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for (x, y) in a.graph.edges().iter().zip(b.graph.edges()) {
            assert!((x.p - y.p).abs() < 1e-15);
        }
    }

    #[test]
    fn representative_detaches_probabilities() {
        // The paper's criticism: stage 1 discards the input probabilities.
        // Two graphs with the same most-probable world but different
        // probabilities yield the same representative.
        let mut g1 = UncertainGraph::with_nodes(4);
        g1.add_edge(0, 1, 0.9).unwrap();
        g1.add_edge(1, 2, 0.7).unwrap();
        g1.add_edge(2, 3, 0.3).unwrap();
        let mut g2 = UncertainGraph::with_nodes(4);
        g2.add_edge(0, 1, 0.6).unwrap();
        g2.add_edge(1, 2, 0.99).unwrap();
        g2.add_edge(2, 3, 0.1).unwrap();
        let r1 = extract_representative(&g1, RepresentativeStrategy::MostProbable);
        let r2 = extract_representative(&g2, RepresentativeStrategy::MostProbable);
        assert_eq!(r1.num_edges(), r2.num_edges());
        for (a, b) in r1.edges().iter().zip(r2.edges()) {
            assert_eq!((a.u, a.v, a.p), (b.u, b.v, b.p));
        }
    }
}
