//! Representative-instance extraction (after Parchas et al., SIGMOD 2014:
//! "The pursuit of a good possible world").
//!
//! A representative is a *deterministic* graph standing in for the
//! uncertain one. The reference point is the most-probable world (keep
//! edges with p ≥ ½); the expected-degree strategy then greedily repairs
//! per-vertex discrepancies `deg_rep(v) − E[deg_G(v)]` by adding omitted
//! high-probability edges and removing included low-probability ones while
//! the total absolute discrepancy improves — the core idea of Parchas's
//! greedy algorithms (ADR/ABM), which aim to preserve expected degrees.

use chameleon_ugraph::UncertainGraph;

/// Extraction strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepresentativeStrategy {
    /// Most-probable world: keep every edge with `p ≥ 0.5`.
    MostProbable,
    /// Most-probable world followed by greedy expected-degree repair
    /// (the default; closest to Parchas et al.).
    #[default]
    ExpectedDegree,
}

/// Extracts a deterministic representative. The returned graph has the
/// same node set; every retained edge carries probability 1.
pub fn extract_representative(
    graph: &UncertainGraph,
    strategy: RepresentativeStrategy,
) -> UncertainGraph {
    match strategy {
        RepresentativeStrategy::MostProbable => threshold_world(graph, 0.5),
        RepresentativeStrategy::ExpectedDegree => expected_degree_repair(graph),
    }
}

/// Keeps every edge with `p >= threshold` at probability 1.
fn threshold_world(graph: &UncertainGraph, threshold: f64) -> UncertainGraph {
    let mut rep = UncertainGraph::with_nodes(graph.num_nodes());
    for e in graph.edges() {
        if e.p >= threshold {
            rep.add_edge(e.u, e.v, 1.0).expect("valid edge");
        }
    }
    rep
}

/// Greedy expected-degree repair (see module docs).
fn expected_degree_repair(graph: &UncertainGraph) -> UncertainGraph {
    let n = graph.num_nodes();
    let expected = graph.expected_degrees();
    // Membership flags over the original edge array.
    let mut included: Vec<bool> = graph.edges().iter().map(|e| e.p >= 0.5).collect();
    // Current discrepancy per vertex.
    let mut disc: Vec<f64> = vec![0.0; n];
    for (idx, e) in graph.edges().iter().enumerate() {
        if included[idx] {
            disc[e.u as usize] += 1.0;
            disc[e.v as usize] += 1.0;
        }
    }
    for v in 0..n {
        disc[v] -= expected[v];
    }
    // Candidate moves: add omitted edges (desc p), remove included edges
    // (asc p). Two alternating passes suffice in practice; we iterate until
    // a pass makes no change (bounded by |E| flips total per pass, and the
    // objective strictly decreases, so termination is guaranteed).
    let improves = |disc: &[f64], u: usize, v: usize, delta: f64| -> bool {
        let before = disc[u].abs() + disc[v].abs();
        let after = (disc[u] + delta).abs() + (disc[v] + delta).abs();
        after + 1e-12 < before
    };
    let mut add_order: Vec<usize> = (0..graph.num_edges()).filter(|&i| !included[i]).collect();
    add_order.sort_by(|&a, &b| {
        graph.edges()[b]
            .p
            .partial_cmp(&graph.edges()[a].p)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut remove_order: Vec<usize> = (0..graph.num_edges()).filter(|&i| included[i]).collect();
    remove_order.sort_by(|&a, &b| {
        graph.edges()[a]
            .p
            .partial_cmp(&graph.edges()[b].p)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    loop {
        let mut changed = false;
        for &idx in &add_order {
            if included[idx] {
                continue;
            }
            let e = graph.edges()[idx];
            if improves(&disc, e.u as usize, e.v as usize, 1.0) {
                included[idx] = true;
                disc[e.u as usize] += 1.0;
                disc[e.v as usize] += 1.0;
                changed = true;
            }
        }
        for &idx in &remove_order {
            if !included[idx] {
                continue;
            }
            let e = graph.edges()[idx];
            if improves(&disc, e.u as usize, e.v as usize, -1.0) {
                included[idx] = false;
                disc[e.u as usize] -= 1.0;
                disc[e.v as usize] -= 1.0;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut rep = UncertainGraph::with_nodes(n);
    for (idx, e) in graph.edges().iter().enumerate() {
        if included[idx] {
            rep.add_edge(e.u, e.v, 1.0).expect("valid edge");
        }
    }
    rep
}

/// Total absolute expected-degree discrepancy
/// `Σ_v |deg_rep(v) − E[deg_G(v)]|` — the objective the repair minimizes;
/// exposed for evaluation.
pub fn degree_discrepancy(graph: &UncertainGraph, rep: &UncertainGraph) -> f64 {
    assert_eq!(graph.num_nodes(), rep.num_nodes(), "node sets must match");
    let expected = graph.expected_degrees();
    (0..graph.num_nodes())
        .map(|v| (rep.degree(v as u32) as f64 - expected[v]).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_ugraph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uncertain_test_graph(seed: u64) -> UncertainGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = generators::gnm(60, 150, &mut rng);
        for e in 0..g.num_edges() as u32 {
            g.set_prob(e, ((e % 10) as f64 + 0.5) / 10.5).unwrap();
        }
        g
    }

    #[test]
    fn deterministic_graph_is_its_own_representative() {
        let mut g = UncertainGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        for strategy in [
            RepresentativeStrategy::MostProbable,
            RepresentativeStrategy::ExpectedDegree,
        ] {
            let rep = extract_representative(&g, strategy);
            assert_eq!(rep.num_edges(), 2);
            assert!(rep.has_edge(0, 1) && rep.has_edge(2, 3));
            assert_eq!(degree_discrepancy(&g, &rep), 0.0);
        }
    }

    #[test]
    fn threshold_keeps_majority_edges_only() {
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, 0.8).unwrap();
        g.add_edge(1, 2, 0.2).unwrap();
        let rep = extract_representative(&g, RepresentativeStrategy::MostProbable);
        assert!(rep.has_edge(0, 1));
        assert!(!rep.has_edge(1, 2));
        assert!(rep.edges().iter().all(|e| e.p == 1.0));
    }

    #[test]
    fn repair_no_worse_than_threshold() {
        let g = uncertain_test_graph(1);
        let thresh = extract_representative(&g, RepresentativeStrategy::MostProbable);
        let repaired = extract_representative(&g, RepresentativeStrategy::ExpectedDegree);
        assert!(
            degree_discrepancy(&g, &repaired) <= degree_discrepancy(&g, &thresh) + 1e-9,
            "repair must not increase discrepancy: {} vs {}",
            degree_discrepancy(&g, &repaired),
            degree_discrepancy(&g, &thresh)
        );
    }

    #[test]
    fn repair_improves_skewed_graph() {
        // Star with all p = 0.4: threshold world is empty (discrepancy =
        // sum of expected degrees); repair should add edges back.
        let mut g = UncertainGraph::with_nodes(6);
        for v in 1..6u32 {
            g.add_edge(0, v, 0.4).unwrap();
        }
        let thresh = extract_representative(&g, RepresentativeStrategy::MostProbable);
        assert_eq!(thresh.num_edges(), 0);
        let repaired = extract_representative(&g, RepresentativeStrategy::ExpectedDegree);
        assert!(repaired.num_edges() > 0);
        assert!(degree_discrepancy(&g, &repaired) < degree_discrepancy(&g, &thresh));
    }

    #[test]
    fn representative_total_degree_tracks_expected() {
        let g = uncertain_test_graph(2);
        let rep = extract_representative(&g, RepresentativeStrategy::ExpectedDegree);
        let expected_total: f64 = g.expected_degrees().iter().sum();
        let rep_total: f64 = (0..g.num_nodes() as u32)
            .map(|v| rep.degree(v) as f64)
            .sum();
        assert!(
            (rep_total - expected_total).abs() / expected_total < 0.15,
            "rep_total={rep_total}, expected_total={expected_total}"
        );
    }

    #[test]
    fn representative_only_uses_original_edges() {
        let g = uncertain_test_graph(3);
        let rep = extract_representative(&g, RepresentativeStrategy::ExpectedDegree);
        for e in rep.edges() {
            assert!(
                g.has_edge(e.u, e.v),
                "edge ({},{}) not in original",
                e.u,
                e.v
            );
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let g = uncertain_test_graph(4);
        let a = extract_representative(&g, RepresentativeStrategy::ExpectedDegree);
        let b = extract_representative(&g, RepresentativeStrategy::ExpectedDegree);
        assert_eq!(a.num_edges(), b.num_edges());
        for (x, y) in a.edges().iter().zip(b.edges()) {
            assert_eq!((x.u, x.v), (y.u, y.v));
        }
    }

    #[test]
    #[should_panic]
    fn discrepancy_requires_matching_nodes() {
        let g = uncertain_test_graph(5);
        let other = UncertainGraph::with_nodes(3);
        let _ = degree_discrepancy(&g, &other);
    }
}
