//! Rep-An: the benchmark solution of paper Section IV.
//!
//! Rep-An anonymizes an uncertain graph in two *isolated* stages:
//!
//! 1. **Representative extraction** — collapse the uncertain graph into a
//!    single deterministic instance that preserves expected vertex degrees
//!    (Parchas et al., SIGMOD 2014).
//! 2. **Deterministic obfuscation** — run the (k, ε)-obfuscation of Boldi
//!    et al. (VLDB 2012) on that instance, re-injecting *fresh* uncertainty.
//!
//! Because stage 2 never sees the original probabilities and stage 1 is
//! oblivious to reliability, the composition injects far more structural
//! noise than Chameleon for the same privacy level — the paper's Figure 4
//! experiment, reproduced by the `fig4` bench binary.
//!
//! Boldi et al.'s scheme is exactly the ME variant of the core crate run on
//! a deterministic input (the paper notes max-entropy perturbation with
//! p ∈ {0, 1} *is* Boldi's scheme, and on a deterministic graph expected
//! degrees coincide with structural degrees), so stage 2 reuses
//! [`chameleon_core::Chameleon`] with [`chameleon_core::Method::Me`].

//! # Example
//!
//! ```
//! use chameleon_baseline::RepAn;
//! use chameleon_core::ChameleonConfig;
//! use chameleon_datasets::dblp_like;
//!
//! let graph = dblp_like(150, 3);
//! let config = ChameleonConfig::builder()
//!     .k(5)
//!     .epsilon(0.08)
//!     .trials(2)
//!     .num_world_samples(60)
//!     .build();
//! let result = RepAn::new(config).anonymize(&graph, 1).unwrap();
//! assert!(result.eps_hat <= 0.08);
//! // Stage 1 is deterministic: every representative edge has p = 1.
//! assert!(result.representative.edges().iter().all(|e| e.p == 1.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod repan;
pub mod representative;

pub use repan::{RepAn, RepAnResult};
pub use representative::{extract_representative, RepresentativeStrategy};
