//! Gamma and Beta samplers (Marsaglia–Tsang), used by the dataset crate's
//! general-purpose Beta edge-probability model.

use rand::Rng;

/// Samples Gamma(shape, 1) via Marsaglia & Tsang's squeeze method
/// (augmented with the standard shape < 1 boost).
///
/// # Panics
/// Panics if `shape` is not strictly positive and finite.
pub fn sample_gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    assert!(
        shape.is_finite() && shape > 0.0,
        "gamma shape must be positive, got {shape}"
    );
    if shape < 1.0 {
        // Boost: X ~ Gamma(a+1), U^(1/a) correction.
        let x = sample_gamma(shape + 1.0, rng);
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return x * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller (two uniforms).
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = 1.0 + c * z;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u < 1.0 - 0.0331 * z * z * z * z {
            return d * v3;
        }
        if u.ln() < 0.5 * z * z + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Samples Beta(alpha, beta) as `X / (X + Y)` with independent gammas.
///
/// # Panics
/// Panics if either parameter is not strictly positive and finite.
pub fn sample_beta<R: Rng + ?Sized>(alpha: f64, beta: f64, rng: &mut R) -> f64 {
    let x = sample_gamma(alpha, rng);
    let y = sample_gamma(beta, rng);
    if x + y == 0.0 {
        // Both gammas underflowed (extreme shapes); fall back to the mean.
        return alpha / (alpha + beta);
    }
    x / (x + y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn gamma_moments_large_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let samples: Vec<f64> = (0..40_000).map(|_| sample_gamma(5.0, &mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
        assert!((var - 5.0).abs() < 0.25, "var={var}");
    }

    #[test]
    fn gamma_moments_small_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..40_000).map(|_| sample_gamma(0.4, &mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 0.4).abs() < 0.03, "mean={mean}");
        assert!((var - 0.4).abs() < 0.08, "var={var}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn beta_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let (a, b) = (2.0, 5.0);
        let samples: Vec<f64> = (0..40_000).map(|_| sample_beta(a, b, &mut rng)).collect();
        let (mean, var) = moments(&samples);
        let expect_mean = a / (a + b);
        let expect_var = a * b / ((a + b) * (a + b) * (a + b + 1.0));
        assert!((mean - expect_mean).abs() < 0.01, "mean={mean}");
        assert!((var - expect_var).abs() < 0.005, "var={var}");
        assert!(samples.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn beta_uniform_special_case() {
        // Beta(1,1) = U(0,1).
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..30_000)
            .map(|_| sample_beta(1.0, 1.0, &mut rng))
            .collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 0.5).abs() < 0.01);
        assert!((var - 1.0 / 12.0).abs() < 0.005);
    }

    #[test]
    fn beta_skewed_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        // Beta(0.5, 3): mass near 0.
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sample_beta(0.5, 3.0, &mut rng))
            .collect();
        let below = samples.iter().filter(|&&x| x < 0.1).count();
        assert!(below as f64 > 0.4 * samples.len() as f64);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| sample_beta(2.0, 2.0, &mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| sample_beta(2.0, 2.0, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = sample_gamma(0.0, &mut rng);
    }
}
