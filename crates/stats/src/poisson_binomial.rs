//! Poisson–binomial distribution: the law of a sum of independent, non-
//! identically distributed Bernoulli variables.
//!
//! In an uncertain graph the degree of a vertex `v` is exactly Poisson–
//! binomial over the existence probabilities of `v`'s incident edges. The
//! (k, ε)-obfuscation check (paper Definition 3) needs, for every vertex `u`
//! and every adversary property value `ω`, the probability
//! `Pr[deg(u) = ω]` — i.e. pointwise evaluations of this pmf. Lemma 6 of the
//! paper additionally uses its mean/variance and a normal (CLT)
//! approximation of its entropy.

use crate::entropy::shannon_entropy_nats;

/// Exact Poisson–binomial pmf, built by the standard O(n²) dynamic program.
///
/// The DP is numerically benign (all operations are convex combinations of
/// probabilities) and exact up to f64 rounding; a final renormalization
/// guard absorbs accumulated error of order n·ε.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonBinomial {
    pmf: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl PoissonBinomial {
    /// Builds the distribution of `X = Σ Bernoulli(p_i)`.
    ///
    /// # Panics
    /// Panics if any `p_i` is outside `[0, 1]` or non-finite.
    pub fn new(probs: &[f64]) -> Self {
        let mut pmf = vec![0.0; probs.len() + 1];
        pmf[0] = 1.0;
        let mut mean = 0.0;
        let mut variance = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "probability out of range: {p}"
            );
            mean += p;
            variance += p * (1.0 - p);
            // In-place update, scanning downward so pmf[j-1] is still the
            // value from the previous round.
            for j in (1..=i + 1).rev() {
                pmf[j] = pmf[j] * (1.0 - p) + pmf[j - 1] * p;
            }
            pmf[0] *= 1.0 - p;
        }
        // Renormalization guard.
        let total: f64 = pmf.iter().sum();
        if (total - 1.0).abs() > 1e-12 && total > 0.0 {
            for x in &mut pmf {
                *x /= total;
            }
        }
        Self {
            pmf,
            mean,
            variance,
        }
    }

    /// `Pr[X = k]`, zero outside the support.
    pub fn pmf(&self, k: usize) -> f64 {
        self.pmf.get(k).copied().unwrap_or(0.0)
    }

    /// The full pmf vector over `0..=n`.
    pub fn pmf_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// `Pr[X <= k]`.
    pub fn cdf(&self, k: usize) -> f64 {
        let upto = k.min(self.pmf.len().saturating_sub(1));
        self.pmf[..=upto].iter().sum()
    }

    /// `E[X] = Σ p_i` (exact, not read off the pmf).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// `Var[X] = Σ p_i (1 - p_i)` (exact).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Number of Bernoulli summands.
    pub fn n(&self) -> usize {
        self.pmf.len() - 1
    }

    /// Most probable value (smallest mode on ties).
    pub fn mode(&self) -> usize {
        let mut best = 0;
        for (k, &p) in self.pmf.iter().enumerate() {
            if p > self.pmf[best] {
                best = k;
            }
        }
        best
    }

    /// Exact Shannon entropy of the pmf, in nats.
    pub fn entropy_nats(&self) -> f64 {
        shannon_entropy_nats(&self.pmf)
    }

    /// CLT approximation of the entropy in nats:
    /// `½·ln(2π·Var) + ½` — the differential entropy of the matching normal
    /// (paper Lemma 6). Returns 0 for a deterministic (zero-variance) sum.
    pub fn entropy_nats_normal_approx(&self) -> f64 {
        if self.variance <= 0.0 {
            0.0
        } else {
            0.5 * (2.0 * std::f64::consts::PI * self.variance).ln() + 0.5
        }
    }
}

/// `Pr[X = k]` without materializing the full pmf when only the head is
/// needed: computes the DP truncated at `k_max` states. Useful for anonymity
/// checks where the adversary values of interest are bounded.
pub fn pmf_truncated(probs: &[f64], k_max: usize) -> Vec<f64> {
    let cap = k_max.min(probs.len());
    let mut pmf = vec![0.0; cap + 1];
    pmf[0] = 1.0;
    for (i, &p) in probs.iter().enumerate() {
        debug_assert!((0.0..=1.0).contains(&p));
        let hi = (i + 1).min(cap);
        for j in (1..=hi).rev() {
            pmf[j] = pmf[j] * (1.0 - p) + pmf[j - 1] * p;
        }
        pmf[0] *= 1.0 - p;
    }
    pmf
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn binomial_pmf(n: usize, p: f64, k: usize) -> f64 {
        // n choose k * p^k * (1-p)^(n-k), small n only.
        let mut c = 1.0;
        for i in 0..k {
            c *= (n - i) as f64 / (i + 1) as f64;
        }
        c * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
    }

    #[test]
    fn empty_sum_is_point_mass_at_zero() {
        let d = PoissonBinomial::new(&[]);
        assert_eq!(d.pmf(0), 1.0);
        assert_eq!(d.pmf(1), 0.0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.n(), 0);
    }

    #[test]
    fn matches_binomial_when_iid() {
        let p = 0.3;
        let n = 8;
        let d = PoissonBinomial::new(&vec![p; n]);
        for k in 0..=n {
            assert!(
                (d.pmf(k) - binomial_pmf(n, p, k)).abs() < 1e-12,
                "k={k}: {} vs {}",
                d.pmf(k),
                binomial_pmf(n, p, k)
            );
        }
    }

    #[test]
    fn deterministic_edges_shift_support() {
        let d = PoissonBinomial::new(&[1.0, 1.0, 0.0]);
        assert!((d.pmf(2) - 1.0).abs() < 1e-15);
        assert_eq!(d.mode(), 2);
        assert!(d.entropy_nats() < 1e-12);
    }

    #[test]
    fn two_heterogeneous_bernoullis() {
        let d = PoissonBinomial::new(&[0.5, 0.2]);
        assert!((d.pmf(0) - 0.4).abs() < 1e-15);
        assert!((d.pmf(1) - 0.5).abs() < 1e-15);
        assert!((d.pmf(2) - 0.1).abs() < 1e-15);
    }

    #[test]
    fn mean_and_variance_closed_form() {
        let probs = [0.1, 0.9, 0.5, 0.33];
        let d = PoissonBinomial::new(&probs);
        let m: f64 = probs.iter().sum();
        let v: f64 = probs.iter().map(|p| p * (1.0 - p)).sum();
        assert!((d.mean() - m).abs() < 1e-15);
        assert!((d.variance() - v).abs() < 1e-15);
        // Mean read off the pmf agrees too.
        let m2: f64 = d
            .pmf_slice()
            .iter()
            .enumerate()
            .map(|(k, p)| k as f64 * p)
            .sum();
        assert!((m2 - m).abs() < 1e-12);
    }

    #[test]
    fn cdf_terminates_at_one() {
        let d = PoissonBinomial::new(&[0.4, 0.6, 0.25]);
        assert!((d.cdf(3) - 1.0).abs() < 1e-12);
        assert!((d.cdf(10) - 1.0).abs() < 1e-12);
        assert!(d.cdf(0) > 0.0);
    }

    #[test]
    fn truncated_matches_full_head() {
        let probs = [0.2, 0.7, 0.4, 0.9, 0.05];
        let full = PoissonBinomial::new(&probs);
        let head = pmf_truncated(&probs, 2);
        for (k, &h) in head.iter().enumerate() {
            assert!((h - full.pmf(k)).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_approx_tracks_exact_entropy_for_large_n() {
        let probs = vec![0.5; 200];
        let d = PoissonBinomial::new(&probs);
        let exact = d.entropy_nats();
        let approx = d.entropy_nats_normal_approx();
        // CLT regime: relative error small.
        assert!(
            (exact - approx).abs() / exact < 0.02,
            "exact={exact}, approx={approx}"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_probability() {
        let _ = PoissonBinomial::new(&[1.5]);
    }

    proptest! {
        #[test]
        fn pmf_sums_to_one(probs in proptest::collection::vec(0.0f64..=1.0, 0..40)) {
            let d = PoissonBinomial::new(&probs);
            let total: f64 = d.pmf_slice().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn pmf_nonnegative(probs in proptest::collection::vec(0.0f64..=1.0, 0..40)) {
            let d = PoissonBinomial::new(&probs);
            prop_assert!(d.pmf_slice().iter().all(|&p| p >= 0.0));
        }

        #[test]
        fn mean_matches_pmf_expectation(
            probs in proptest::collection::vec(0.0f64..=1.0, 0..30)
        ) {
            let d = PoissonBinomial::new(&probs);
            let m: f64 = d.pmf_slice().iter().enumerate()
                .map(|(k, p)| k as f64 * p).sum();
            prop_assert!((m - d.mean()).abs() < 1e-8);
        }

        #[test]
        fn entropy_bounded_by_log_support(
            probs in proptest::collection::vec(0.01f64..=0.99, 1..30)
        ) {
            let d = PoissonBinomial::new(&probs);
            let h = d.entropy_nats();
            prop_assert!(h >= 0.0);
            prop_assert!(h <= ((probs.len() + 1) as f64).ln() + 1e-9);
        }
    }
}
