//! Deterministic data-parallel execution.
//!
//! The Monte-Carlo hot paths of this workspace (world sampling, ERR
//! estimation, per-vertex degree pmfs, GenObf trials) are all
//! embarrassingly parallel, but naive parallelization destroys the
//! reproducibility contract the whole experiment harness is built on. This
//! module provides the one primitive every call site shares:
//! **fixed-chunk scheduling**. Work is split into chunks whose boundaries
//! depend only on the item count — never on the thread count — and chunk
//! results are combined in chunk order. Any randomness is seeded per chunk
//! (see `SeedSequence::rng_indexed`), and floating-point accumulation
//! happens per chunk then folds in chunk order, so the result is
//! bit-identical at 1 thread and at N threads.
//!
//! The pool is a scoped `std::thread` fan-out with an atomic work counter:
//! no dependencies, no unsafe code, no global state. Spawning a handful of
//! threads costs microseconds, which is negligible against the
//! millisecond-to-second chunk workloads this crate schedules.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// What one worker thread hands back: its `(chunk_index, result)` pairs,
/// or the payload of the panic that killed it.
type WorkerOutcome<T> = Result<Vec<(usize, T)>, Box<dyn std::any::Any + Send>>;

/// Receiver for scheduler telemetry: per-chunk busy time and per-scope
/// utilization totals.
///
/// This crate sits at the bottom of the workspace, so the observability
/// layer (`chameleon_obs`, which depends on this crate) cannot be called
/// directly from here; instead it installs itself through this hook
/// (dependency inversion). When no observer is installed — the default —
/// [`map_chunks`] takes no timestamps at all, so the uninstrumented cost
/// is one atomic load per call.
///
/// Implementations must tolerate concurrent calls from many worker
/// threads; none of the callbacks may influence scheduling (they receive
/// copies of already-final values), so observation can never perturb the
/// deterministic chunk semantics.
pub trait ParallelObserver: Sync {
    /// One chunk finished: which worker ran it, its chunk index, and the
    /// wall-clock nanoseconds the closure took.
    fn chunk_completed(&self, worker: usize, chunk: usize, busy_ns: u64);
    /// One whole [`map_chunks`] call finished: resolved worker count,
    /// number of chunks, summed per-chunk busy nanoseconds and the
    /// end-to-end wall nanoseconds of the scope (busy/(threads·wall) is
    /// the thread-utilization of the fan-out).
    fn scope_completed(&self, threads: usize, chunks: usize, busy_ns: u64, wall_ns: u64);
}

static PARALLEL_OBSERVER: OnceLock<&'static dyn ParallelObserver> = OnceLock::new();

/// Installs the process-wide scheduler observer (first caller wins;
/// returns `false` when an observer was already installed). The observer
/// must live for the rest of the process — a `&'static` borrow enforces
/// that without allocation.
pub fn set_parallel_observer(observer: &'static dyn ParallelObserver) -> bool {
    PARALLEL_OBSERVER.set(observer).is_ok()
}

/// The installed observer, if any (one atomic load).
fn observer() -> Option<&'static dyn ParallelObserver> {
    PARALLEL_OBSERVER.get().copied()
}

/// Number of hardware threads, as reported by the OS (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a user-facing thread knob: `0` means "all hardware threads",
/// any other value is used as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Number of fixed-size chunks covering `num_items` items.
pub fn chunk_count(num_items: usize, chunk_size: usize) -> usize {
    assert!(chunk_size > 0, "chunk size must be positive");
    num_items.div_ceil(chunk_size)
}

/// The half-open item range of chunk `chunk` (boundaries depend only on
/// `num_items` and `chunk_size`, never on the thread count).
pub fn chunk_range(chunk: usize, chunk_size: usize, num_items: usize) -> Range<usize> {
    let start = chunk * chunk_size;
    start..((start + chunk_size).min(num_items))
}

/// Maps `f` over the fixed-size chunks of `0..num_items` using up to
/// `threads` worker threads, returning the per-chunk results **in chunk
/// order**.
///
/// `f` receives `(chunk_index, item_range)`. Because chunk boundaries are
/// a pure function of `(num_items, chunk_size)` and results are returned
/// in chunk order, the output is identical for every `threads` value —
/// callers get parallel speed with serial semantics. `threads == 1` (or a
/// single chunk) short-circuits to a plain in-order loop with no thread
/// machinery at all.
///
/// Panics in `f` are propagated to the caller after all workers stop.
pub fn map_chunks<T, F>(num_items: usize, chunk_size: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    map_chunks_scratch(num_items, chunk_size, threads, || (), |(), c, r| f(c, r))
}

/// Like [`map_chunks`], but hands each chunk closure a mutable *scratch*
/// value that is created once per worker thread (by `make_scratch`) and
/// reused across every chunk that worker claims.
///
/// This is the allocation-hygiene primitive of the Monte-Carlo kernels: a
/// worker's union-find, label buffer, or uniform buffer is built once and
/// then recycled, so an N-world ensemble performs O(chunks) allocations
/// instead of O(N). Determinism is unaffected — scratch is an arbitrary
/// workspace, and the contract that output depends only on
/// `(chunk_index, item_range)` still holds: `f` must leave no information
/// behind in the scratch that changes later results (reset or overwrite it
/// per chunk). Scratch construction happens outside the per-chunk
/// telemetry window, so observer timings measure chunk work only.
pub fn map_chunks_scratch<S, T, MS, F>(
    num_items: usize,
    chunk_size: usize,
    threads: usize,
    make_scratch: MS,
    f: F,
) -> Vec<T>
where
    T: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Range<usize>) -> T + Sync,
{
    let n_chunks = chunk_count(num_items, chunk_size);
    let threads = resolve_threads(threads).min(n_chunks.max(1));
    // Telemetry is observational only: timestamps are taken around the
    // already-scheduled closure calls, so the chunk → result mapping (and
    // with it the bit-exact output) is identical with and without an
    // observer installed.
    let obs = observer();
    let scope_start = obs.map(|_| Instant::now());
    let total_busy_ns = AtomicUsize::new(0);
    let run_chunk = |scratch: &mut S, worker: usize, c: usize| -> T {
        match obs {
            None => f(scratch, c, chunk_range(c, chunk_size, num_items)),
            Some(o) => {
                let t = Instant::now();
                let out = f(scratch, c, chunk_range(c, chunk_size, num_items));
                let busy = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                total_busy_ns.fetch_add(busy as usize, Ordering::Relaxed);
                o.chunk_completed(worker, c, busy);
                out
            }
        }
    };
    let report_scope = |threads: usize| {
        if let (Some(o), Some(start)) = (obs, scope_start) {
            o.scope_completed(
                threads,
                n_chunks,
                total_busy_ns.load(Ordering::Relaxed) as u64,
                start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
        }
    };
    if threads <= 1 {
        let mut scratch = make_scratch();
        let out = (0..n_chunks)
            .map(|c| run_chunk(&mut scratch, 0, c))
            .collect();
        report_scope(1);
        return out;
    }

    let next = AtomicUsize::new(0);
    let worker_results: Vec<WorkerOutcome<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let run_chunk = &run_chunk;
                let make_scratch = &make_scratch;
                let next = &next;
                scope.spawn(move || {
                    let mut scratch = make_scratch();
                    let mut out = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        out.push((c, run_chunk(&mut scratch, worker, c)));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    report_scope(threads);

    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n_chunks).collect();
    let mut panic_payload = None;
    for r in worker_results {
        match r {
            Ok(pairs) => {
                for (c, v) in pairs {
                    slots[c] = Some(v);
                }
            }
            Err(payload) => panic_payload = Some(payload),
        }
    }
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every chunk is claimed exactly once"))
        .collect()
}

/// Maps `f` over `0..num_items` item-by-item on up to `threads` threads,
/// returning results in item order.
///
/// For *pure* per-item functions (no shared RNG), the output is trivially
/// independent of both the thread count and the internal chunking, so this
/// helper picks a chunk size balancing scheduling overhead against load
/// balance. Callers whose `f` draws randomness must use [`map_chunks`]
/// with an explicit chunk size and per-chunk seeding instead.
pub fn map_items<T, F>(num_items: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if num_items == 0 {
        return Vec::new();
    }
    let threads = resolve_threads(threads);
    // ~8 chunks per worker keeps stragglers short without excessive
    // scheduling traffic.
    let chunk_size = num_items.div_ceil(threads.max(1) * 8).max(1);
    let chunks = map_chunks(num_items, chunk_size, threads, |_, range| {
        range.map(&f).collect::<Vec<T>>()
    });
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_resolution() {
        assert!(available_threads() >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(0), available_threads());
    }

    #[test]
    fn chunk_geometry() {
        assert_eq!(chunk_count(0, 4), 0);
        assert_eq!(chunk_count(9, 4), 3);
        assert_eq!(chunk_range(0, 4, 9), 0..4);
        assert_eq!(chunk_range(2, 4, 9), 8..9);
    }

    #[test]
    fn map_chunks_results_arrive_in_chunk_order() {
        for threads in [1, 2, 8] {
            let out = map_chunks(10, 3, threads, |c, r| (c, r.start, r.end));
            assert_eq!(out, vec![(0, 0, 3), (1, 3, 6), (2, 6, 9), (3, 9, 10)]);
        }
    }

    #[test]
    fn map_chunks_is_thread_count_invariant() {
        // Per-chunk fp sums folded in chunk order must agree bit-for-bit.
        let sum_at = |threads| -> f64 {
            map_chunks(1000, 7, threads, |_, r| {
                r.map(|i| (i as f64).sqrt()).sum::<f64>()
            })
            .iter()
            .sum()
        };
        let serial = sum_at(1);
        for threads in [2, 3, 8, 33] {
            assert_eq!(serial.to_bits(), sum_at(threads).to_bits());
        }
    }

    #[test]
    fn map_items_matches_serial() {
        for threads in [1, 2, 8] {
            let out = map_items(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(map_items(0, 4, |i| i).is_empty());
    }

    #[test]
    fn map_chunks_scratch_reuses_per_worker_buffers() {
        use std::sync::atomic::AtomicU64;
        static SCRATCHES_MADE: AtomicU64 = AtomicU64::new(0);
        for threads in [1, 2, 8] {
            let before = SCRATCHES_MADE.load(Ordering::Relaxed);
            let out = map_chunks_scratch(
                100,
                5,
                threads,
                || {
                    SCRATCHES_MADE.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |buf, _, r| {
                    buf.clear();
                    buf.extend(r);
                    buf.iter().sum::<usize>()
                },
            );
            // One scratch per worker, never one per chunk.
            let made = SCRATCHES_MADE.load(Ordering::Relaxed) - before;
            assert!(made <= threads as u64, "made {made} scratches");
            // Output bit-identical to the serial semantics at any thread
            // count.
            let expect: Vec<usize> = (0..20)
                .map(|c| (c * 5..(c + 1) * 5).sum::<usize>())
                .collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(map_chunks(0, 4, 8, |c, _| c).is_empty());
    }

    #[test]
    fn observer_sees_every_chunk_and_scope() {
        use std::sync::atomic::AtomicU64;
        static CHUNKS: AtomicU64 = AtomicU64::new(0);
        static SCOPES: AtomicU64 = AtomicU64::new(0);
        static BUSY: AtomicU64 = AtomicU64::new(0);
        struct Probe;
        impl ParallelObserver for Probe {
            fn chunk_completed(&self, _worker: usize, _chunk: usize, busy_ns: u64) {
                CHUNKS.fetch_add(1, Ordering::Relaxed);
                BUSY.fetch_add(busy_ns, Ordering::Relaxed);
            }
            fn scope_completed(&self, threads: usize, chunks: usize, busy: u64, wall: u64) {
                assert!(threads >= 1);
                assert!(chunks >= 1);
                assert!(wall >= 1, "wall clock must advance");
                let _ = busy;
                SCOPES.fetch_add(1, Ordering::Relaxed);
            }
        }
        static PROBE: Probe = Probe;
        // First caller wins; other tests may already have installed PROBE.
        set_parallel_observer(&PROBE);
        let chunks_before = CHUNKS.load(Ordering::Relaxed);
        let scopes_before = SCOPES.load(Ordering::Relaxed);
        // Serial and threaded paths must both report; results unchanged.
        for threads in [1, 4] {
            let out = map_chunks(20, 3, threads, |_, r| r.map(|i| i as u64).sum::<u64>());
            assert_eq!(out.iter().sum::<u64>(), (0..20).sum::<u64>());
        }
        // 7 chunks per call × 2 calls; concurrent tests may add more.
        assert!(CHUNKS.load(Ordering::Relaxed) >= chunks_before + 14);
        assert!(SCOPES.load(Ordering::Relaxed) >= scopes_before + 2);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            map_chunks(16, 1, 4, |c, _| {
                if c == 7 {
                    panic!("chunk 7 exploded");
                }
                c
            })
        });
        assert!(result.is_err());
    }
}
