//! Deterministic data-parallel execution.
//!
//! The Monte-Carlo hot paths of this workspace (world sampling, ERR
//! estimation, per-vertex degree pmfs, GenObf trials) are all
//! embarrassingly parallel, but naive parallelization destroys the
//! reproducibility contract the whole experiment harness is built on. This
//! module provides the one primitive every call site shares:
//! **fixed-chunk scheduling**. Work is split into chunks whose boundaries
//! depend only on the item count — never on the thread count — and chunk
//! results are combined in chunk order. Any randomness is seeded per chunk
//! (see `SeedSequence::rng_indexed`), and floating-point accumulation
//! happens per chunk then folds in chunk order, so the result is
//! bit-identical at 1 thread and at N threads.
//!
//! The pool is a scoped `std::thread` fan-out with an atomic work counter:
//! no dependencies, no unsafe code, no global state. Spawning a handful of
//! threads costs microseconds, which is negligible against the
//! millisecond-to-second chunk workloads this crate schedules.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// What one worker thread hands back: its `(chunk_index, result)` pairs,
/// or the payload of the panic that killed it.
type WorkerOutcome<T> = Result<Vec<(usize, T)>, Box<dyn std::any::Any + Send>>;

/// Number of hardware threads, as reported by the OS (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a user-facing thread knob: `0` means "all hardware threads",
/// any other value is used as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Number of fixed-size chunks covering `num_items` items.
pub fn chunk_count(num_items: usize, chunk_size: usize) -> usize {
    assert!(chunk_size > 0, "chunk size must be positive");
    num_items.div_ceil(chunk_size)
}

/// The half-open item range of chunk `chunk` (boundaries depend only on
/// `num_items` and `chunk_size`, never on the thread count).
pub fn chunk_range(chunk: usize, chunk_size: usize, num_items: usize) -> Range<usize> {
    let start = chunk * chunk_size;
    start..((start + chunk_size).min(num_items))
}

/// Maps `f` over the fixed-size chunks of `0..num_items` using up to
/// `threads` worker threads, returning the per-chunk results **in chunk
/// order**.
///
/// `f` receives `(chunk_index, item_range)`. Because chunk boundaries are
/// a pure function of `(num_items, chunk_size)` and results are returned
/// in chunk order, the output is identical for every `threads` value —
/// callers get parallel speed with serial semantics. `threads == 1` (or a
/// single chunk) short-circuits to a plain in-order loop with no thread
/// machinery at all.
///
/// Panics in `f` are propagated to the caller after all workers stop.
pub fn map_chunks<T, F>(num_items: usize, chunk_size: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let n_chunks = chunk_count(num_items, chunk_size);
    let threads = resolve_threads(threads).min(n_chunks.max(1));
    if threads <= 1 {
        return (0..n_chunks)
            .map(|c| f(c, chunk_range(c, chunk_size, num_items)))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let worker_results: Vec<WorkerOutcome<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        out.push((c, f(c, chunk_range(c, chunk_size, num_items))));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n_chunks).collect();
    let mut panic_payload = None;
    for r in worker_results {
        match r {
            Ok(pairs) => {
                for (c, v) in pairs {
                    slots[c] = Some(v);
                }
            }
            Err(payload) => panic_payload = Some(payload),
        }
    }
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every chunk is claimed exactly once"))
        .collect()
}

/// Maps `f` over `0..num_items` item-by-item on up to `threads` threads,
/// returning results in item order.
///
/// For *pure* per-item functions (no shared RNG), the output is trivially
/// independent of both the thread count and the internal chunking, so this
/// helper picks a chunk size balancing scheduling overhead against load
/// balance. Callers whose `f` draws randomness must use [`map_chunks`]
/// with an explicit chunk size and per-chunk seeding instead.
pub fn map_items<T, F>(num_items: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if num_items == 0 {
        return Vec::new();
    }
    let threads = resolve_threads(threads);
    // ~8 chunks per worker keeps stragglers short without excessive
    // scheduling traffic.
    let chunk_size = num_items.div_ceil(threads.max(1) * 8).max(1);
    let chunks = map_chunks(num_items, chunk_size, threads, |_, range| {
        range.map(&f).collect::<Vec<T>>()
    });
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_resolution() {
        assert!(available_threads() >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(0), available_threads());
    }

    #[test]
    fn chunk_geometry() {
        assert_eq!(chunk_count(0, 4), 0);
        assert_eq!(chunk_count(9, 4), 3);
        assert_eq!(chunk_range(0, 4, 9), 0..4);
        assert_eq!(chunk_range(2, 4, 9), 8..9);
    }

    #[test]
    fn map_chunks_results_arrive_in_chunk_order() {
        for threads in [1, 2, 8] {
            let out = map_chunks(10, 3, threads, |c, r| (c, r.start, r.end));
            assert_eq!(out, vec![(0, 0, 3), (1, 3, 6), (2, 6, 9), (3, 9, 10)]);
        }
    }

    #[test]
    fn map_chunks_is_thread_count_invariant() {
        // Per-chunk fp sums folded in chunk order must agree bit-for-bit.
        let sum_at = |threads| -> f64 {
            map_chunks(1000, 7, threads, |_, r| {
                r.map(|i| (i as f64).sqrt()).sum::<f64>()
            })
            .iter()
            .sum()
        };
        let serial = sum_at(1);
        for threads in [2, 3, 8, 33] {
            assert_eq!(serial.to_bits(), sum_at(threads).to_bits());
        }
    }

    #[test]
    fn map_items_matches_serial() {
        for threads in [1, 2, 8] {
            let out = map_items(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(map_items(0, 4, |i| i).is_empty());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(map_chunks(0, 4, 8, |c, _| c).is_empty());
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            map_chunks(16, 1, 4, |c, _| {
                if c == 7 {
                    panic!("chunk 7 exploded");
                }
                c
            })
        });
        assert!(result.is_err());
    }
}
