//! Streaming summary statistics (Welford's algorithm).
//!
//! Used throughout the experiment harness to aggregate Monte-Carlo samples
//! (per-world metric values, per-pair reliability deviations) without
//! storing them, and by the KDE bandwidth selection (σ_G).

/// Single-pass mean/variance/min/max accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 when fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let whole = Summary::from_slice(&xs);
        let mut a = Summary::from_slice(&xs[..3]);
        let b = Summary::from_slice(&xs[3..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_slice(&[1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    proptest! {
        #[test]
        fn mean_within_min_max(xs in proptest::collection::vec(-100.0f64..100.0, 1..100)) {
            let s = Summary::from_slice(&xs);
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        #[test]
        fn variance_nonnegative(xs in proptest::collection::vec(-100.0f64..100.0, 0..100)) {
            let s = Summary::from_slice(&xs);
            prop_assert!(s.sample_variance() >= 0.0);
            prop_assert!(s.population_variance() >= 0.0);
        }

        #[test]
        fn merge_any_split_matches(
            xs in proptest::collection::vec(-50.0f64..50.0, 2..60),
            split_frac in 0.0f64..1.0
        ) {
            let split = ((xs.len() as f64) * split_frac) as usize;
            let whole = Summary::from_slice(&xs);
            let mut a = Summary::from_slice(&xs[..split]);
            let b = Summary::from_slice(&xs[split..]);
            a.merge(&b);
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
            prop_assert!((a.population_variance() - whole.population_variance()).abs() < 1e-7);
        }
    }
}
