//! Shannon entropy utilities.
//!
//! The (k, ε)-obfuscation criterion compares `H(Y_ω)` — the entropy, in
//! *bits*, of a distribution over vertices — against `log₂ k` (paper
//! Definition 3). The degree-entropy analysis of Lemma 4–6 works in nats.
//! Both conventions are provided; inputs need not be normalized — callers
//! may pass unnormalized non-negative weights, and normalization happens
//! internally (this is exactly what the anonymity check needs, since the
//! per-vertex weights `Pr[deg(u) = ω]` do not sum to one over `u`).

/// Shannon entropy in bits of the normalized distribution induced by
/// non-negative weights. Returns 0 for an all-zero (or empty) input.
pub fn shannon_entropy_bits(weights: &[f64]) -> f64 {
    shannon_entropy_nats(weights) / std::f64::consts::LN_2
}

/// Shannon entropy in nats of the normalized distribution induced by
/// non-negative weights. Returns 0 for an all-zero (or empty) input.
pub fn shannon_entropy_nats(weights: &[f64]) -> f64 {
    let mut total = WeightTotal::new();
    for &w in weights {
        total.add(w);
    }
    let mut terms = total.into_terms();
    for &w in weights {
        terms.add(w);
    }
    terms.nats()
}

/// Phase one of streaming Shannon entropy: accumulate the weight total.
///
/// Entropy of unnormalized weights needs the total before any `p·ln p`
/// term can be formed, so a streaming computation is two passes: feed
/// every weight to [`WeightTotal::add`], convert with
/// [`WeightTotal::into_terms`], then feed every weight *in the same
/// order* to [`EntropyTerms::add`]. The arithmetic (a left-to-right `+=`
/// sum, then per-weight `h -= p * p.ln()`) is exactly the sequence
/// [`shannon_entropy_nats`] performs — which is itself implemented on top
/// of these accumulators — so a strip-streamed caller that replays the
/// weights in slice order reproduces the slice result bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightTotal {
    total: f64,
}

impl WeightTotal {
    /// An empty accumulator (total 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one weight to the running total.
    pub fn add(&mut self, w: f64) {
        debug_assert!(w >= -1e-15, "negative weight {w}");
        self.total += w;
    }

    /// The accumulated total so far.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Finishes phase one, producing the phase-two term accumulator.
    pub fn into_terms(self) -> EntropyTerms {
        EntropyTerms {
            total: self.total,
            h: 0.0,
        }
    }
}

/// Phase two of streaming Shannon entropy: accumulate `-p·ln p` terms
/// against a fixed total. See [`WeightTotal`] for the protocol.
#[derive(Debug, Clone, Copy)]
pub struct EntropyTerms {
    total: f64,
    h: f64,
}

impl EntropyTerms {
    /// Adds one weight's entropy term. Weights must be replayed in the
    /// same order as phase one for bit-identical results.
    pub fn add(&mut self, w: f64) {
        if self.total > 0.0 && w > 0.0 {
            let p = w / self.total;
            self.h -= p * p.ln();
        }
    }

    /// Entropy in nats (0 for an all-zero or empty stream).
    pub fn nats(&self) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.h
    }

    /// Entropy in bits (0 for an all-zero or empty stream).
    pub fn bits(&self) -> f64 {
        self.nats() / std::f64::consts::LN_2
    }
}

/// Entropy in bits computed from an iterator of weights without allocating.
pub fn entropy_bits_iter<I: IntoIterator<Item = f64> + Clone>(weights: I) -> f64 {
    let total: f64 = weights.clone().into_iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for w in weights {
        if w > 0.0 {
            let p = w / total;
            h -= p * p.log2();
        }
    }
    h
}

/// The effective anonymity set size `2^H` implied by an entropy of `h` bits.
///
/// `(k, ε)`-obfuscation asks `2^H ≥ k`; this helper makes reports readable.
pub fn effective_anonymity(h_bits: f64) -> f64 {
    h_bits.exp2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_distribution_maximizes() {
        let h = shannon_entropy_bits(&[1.0; 8]);
        assert!((h - 3.0).abs() < 1e-12);
    }

    #[test]
    fn point_mass_is_zero() {
        assert_eq!(shannon_entropy_bits(&[0.0, 5.0, 0.0]), 0.0);
    }

    #[test]
    fn empty_and_zero_inputs() {
        assert_eq!(shannon_entropy_bits(&[]), 0.0);
        assert_eq!(shannon_entropy_bits(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn unnormalized_weights_equal_normalized() {
        let a = shannon_entropy_bits(&[0.2, 0.3, 0.5]);
        let b = shannon_entropy_bits(&[2.0, 3.0, 5.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn bits_nats_conversion() {
        let w = [1.0, 2.0, 3.0];
        assert!(
            (shannon_entropy_bits(&w) * std::f64::consts::LN_2 - shannon_entropy_nats(&w)).abs()
                < 1e-12
        );
    }

    #[test]
    fn iterator_variant_matches_slice() {
        let w = vec![0.1, 0.4, 0.5, 0.0];
        assert!((entropy_bits_iter(w.iter().copied()) - shannon_entropy_bits(&w)).abs() < 1e-12);
    }

    #[test]
    fn effective_anonymity_roundtrip() {
        assert!((effective_anonymity(3.0) - 8.0).abs() < 1e-12);
        assert!((effective_anonymity(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binary_entropy_known_value() {
        // H(0.25) = 0.811278... bits
        let h = shannon_entropy_bits(&[0.25, 0.75]);
        assert!((h - 0.8112781244591328).abs() < 1e-12);
    }

    #[test]
    fn accumulator_handles_zero_total() {
        let mut t = WeightTotal::new();
        t.add(0.0);
        let mut terms = t.into_terms();
        terms.add(0.0);
        assert_eq!(terms.nats(), 0.0);
        assert_eq!(terms.bits(), 0.0);
        assert_eq!(WeightTotal::new().into_terms().nats(), 0.0);
    }

    proptest! {
        #[test]
        fn entropy_nonnegative(w in proptest::collection::vec(0.0f64..10.0, 0..64)) {
            prop_assert!(shannon_entropy_bits(&w) >= 0.0);
        }

        /// Streaming the weights in strips through the two-phase
        /// accumulator is bit-identical to the slice entry point.
        #[test]
        fn two_phase_accumulator_matches_slice_bitwise(
            w in proptest::collection::vec(0.0f64..10.0, 0..64),
            strip in 1usize..8,
        ) {
            let mut total = WeightTotal::new();
            for chunk in w.chunks(strip) {
                for &x in chunk {
                    total.add(x);
                }
            }
            let mut terms = total.into_terms();
            for chunk in w.chunks(strip) {
                for &x in chunk {
                    terms.add(x);
                }
            }
            prop_assert_eq!(terms.nats().to_bits(), shannon_entropy_nats(&w).to_bits());
            prop_assert_eq!(terms.bits().to_bits(), shannon_entropy_bits(&w).to_bits());
        }

        #[test]
        fn entropy_at_most_log_support(w in proptest::collection::vec(0.0f64..10.0, 1..64)) {
            let h = shannon_entropy_bits(&w);
            prop_assert!(h <= (w.len() as f64).log2() + 1e-9);
        }

        #[test]
        fn scale_invariance(w in proptest::collection::vec(0.001f64..10.0, 1..32), s in 0.001f64..100.0) {
            let scaled: Vec<f64> = w.iter().map(|x| x * s).collect();
            prop_assert!((shannon_entropy_bits(&w) - shannon_entropy_bits(&scaled)).abs() < 1e-9);
        }
    }
}
