//! Shannon entropy utilities.
//!
//! The (k, ε)-obfuscation criterion compares `H(Y_ω)` — the entropy, in
//! *bits*, of a distribution over vertices — against `log₂ k` (paper
//! Definition 3). The degree-entropy analysis of Lemma 4–6 works in nats.
//! Both conventions are provided; inputs need not be normalized — callers
//! may pass unnormalized non-negative weights, and normalization happens
//! internally (this is exactly what the anonymity check needs, since the
//! per-vertex weights `Pr[deg(u) = ω]` do not sum to one over `u`).

/// Shannon entropy in bits of the normalized distribution induced by
/// non-negative weights. Returns 0 for an all-zero (or empty) input.
pub fn shannon_entropy_bits(weights: &[f64]) -> f64 {
    shannon_entropy_nats(weights) / std::f64::consts::LN_2
}

/// Shannon entropy in nats of the normalized distribution induced by
/// non-negative weights. Returns 0 for an all-zero (or empty) input.
pub fn shannon_entropy_nats(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &w in weights {
        debug_assert!(w >= -1e-15, "negative weight {w}");
        if w > 0.0 {
            let p = w / total;
            h -= p * p.ln();
        }
    }
    h
}

/// Entropy in bits computed from an iterator of weights without allocating.
pub fn entropy_bits_iter<I: IntoIterator<Item = f64> + Clone>(weights: I) -> f64 {
    let total: f64 = weights.clone().into_iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for w in weights {
        if w > 0.0 {
            let p = w / total;
            h -= p * p.log2();
        }
    }
    h
}

/// The effective anonymity set size `2^H` implied by an entropy of `h` bits.
///
/// `(k, ε)`-obfuscation asks `2^H ≥ k`; this helper makes reports readable.
pub fn effective_anonymity(h_bits: f64) -> f64 {
    h_bits.exp2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_distribution_maximizes() {
        let h = shannon_entropy_bits(&[1.0; 8]);
        assert!((h - 3.0).abs() < 1e-12);
    }

    #[test]
    fn point_mass_is_zero() {
        assert_eq!(shannon_entropy_bits(&[0.0, 5.0, 0.0]), 0.0);
    }

    #[test]
    fn empty_and_zero_inputs() {
        assert_eq!(shannon_entropy_bits(&[]), 0.0);
        assert_eq!(shannon_entropy_bits(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn unnormalized_weights_equal_normalized() {
        let a = shannon_entropy_bits(&[0.2, 0.3, 0.5]);
        let b = shannon_entropy_bits(&[2.0, 3.0, 5.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn bits_nats_conversion() {
        let w = [1.0, 2.0, 3.0];
        assert!(
            (shannon_entropy_bits(&w) * std::f64::consts::LN_2 - shannon_entropy_nats(&w)).abs()
                < 1e-12
        );
    }

    #[test]
    fn iterator_variant_matches_slice() {
        let w = vec![0.1, 0.4, 0.5, 0.0];
        assert!((entropy_bits_iter(w.iter().copied()) - shannon_entropy_bits(&w)).abs() < 1e-12);
    }

    #[test]
    fn effective_anonymity_roundtrip() {
        assert!((effective_anonymity(3.0) - 8.0).abs() < 1e-12);
        assert!((effective_anonymity(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binary_entropy_known_value() {
        // H(0.25) = 0.811278... bits
        let h = shannon_entropy_bits(&[0.25, 0.75]);
        assert!((h - 0.8112781244591328).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn entropy_nonnegative(w in proptest::collection::vec(0.0f64..10.0, 0..64)) {
            prop_assert!(shannon_entropy_bits(&w) >= 0.0);
        }

        #[test]
        fn entropy_at_most_log_support(w in proptest::collection::vec(0.0f64..10.0, 1..64)) {
            let h = shannon_entropy_bits(&w);
            prop_assert!(h <= (w.len() as f64).log2() + 1e-9);
        }

        #[test]
        fn scale_invariance(w in proptest::collection::vec(0.001f64..10.0, 1..32), s in 0.001f64..100.0) {
            let scaled: Vec<f64> = w.iter().map(|x| x * s).collect();
            prop_assert!((shannon_entropy_bits(&w) - shannon_entropy_bits(&scaled)).abs() < 1e-9);
        }
    }
}
