//! Probability and statistics toolkit underpinning the Chameleon
//! uncertain-graph anonymization framework.
//!
//! The anonymization pipeline of the paper ("Sharing Uncertain Graphs Using
//! Syntactic Private Graph Models", ICDE 2018) repeatedly needs a small set
//! of numeric primitives:
//!
//! * [`trunc_normal`] — the truncated normal noise distribution `R(σ)` used
//!   to draw edge-probability perturbations (paper §V-A).
//! * [`poisson_binomial`] — the exact degree distribution of a vertex in an
//!   uncertain graph, required by the (k, ε)-obfuscation anonymity check
//!   (paper Definition 3) and by the degree-entropy argument of Lemma 6.
//! * [`entropy`] — Shannon entropy in bits and nats, for obfuscation levels
//!   and for the degree-uncertainty analysis.
//! * [`kde`] — Gaussian-kernel commonness/uniqueness density estimation
//!   (paper Definition 4).
//! * [`histogram`] — fixed-bin histograms used to reproduce the paper's
//!   distribution figures (Fig. 3).
//! * [`summary`] — streaming mean/variance (Welford) summaries.
//! * [`rng`] — deterministic seed fan-out so that every experiment in the
//!   reproduction is bit-for-bit repeatable.
//! * [`parallel`] — fixed-chunk data parallelism whose results are
//!   bit-identical at any thread count, so the Monte-Carlo hot paths can
//!   use every core without giving up reproducibility.
//! * [`alloc_guard`] — allocation accounting: a counting global allocator
//!   for test binaries plus the process-global ensemble byte budget behind
//!   `--max-ensemble-bytes` (DESIGN.md §12).
//!
//! All samplers take `&mut impl Rng` so callers control determinism.

#![warn(missing_docs)]
// `deny`, not `forbid`: alloc_guard implements `GlobalAlloc`, which is an
// unsafe trait, behind a module-scoped `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]

pub mod alloc_guard;
pub mod entropy;
pub mod gamma;
pub mod histogram;
pub mod kde;
pub mod parallel;
pub mod poisson_binomial;
pub mod rng;
pub mod summary;
pub mod trunc_normal;

pub use alloc_guard::{BudgetExceeded, CountingAlloc, Tracked};
pub use entropy::{shannon_entropy_bits, shannon_entropy_nats, EntropyTerms, WeightTotal};
pub use gamma::{sample_beta, sample_gamma};
pub use histogram::{Histogram, Log2Histogram};
pub use kde::GaussianKde;
pub use poisson_binomial::PoissonBinomial;
pub use rng::SeedSequence;
pub use summary::Summary;
pub use trunc_normal::TruncatedNormal;
