//! Allocation accounting for memory-ceiling enforcement (DESIGN.md §12).
//!
//! Two independent instruments live here:
//!
//! * [`CountingAlloc`] — a `#[global_allocator]` wrapper around the system
//!   allocator that counts allocation calls and tracks current/peak heap
//!   bytes. Test binaries install it to pin steady-state allocation budgets
//!   (O(chunks), not O(worlds)); production binaries never need it.
//! * The **ensemble byte budget** — a process-global gauge that the
//!   ensemble arenas (world matrices, label arenas, compressed world
//!   stores) register their bytes against via [`Tracked`] guards. A
//!   configured limit ([`set_ensemble_limit`], wired to
//!   `--max-ensemble-bytes`) turns the gauge into a ceiling: fallible
//!   entry points call [`Tracked::try_register`] and surface [`BudgetExceeded`] with a
//!   hint to switch to strip-streamed analysis (`--strip-worlds`) instead
//!   of letting the process OOM. The gauge works without any custom
//!   global allocator, so every binary gets accurate "peak tracked
//!   ensemble bytes" reporting for free.
//!
//! The gauge is process-global: concurrent ensembles (e.g. parallel tests)
//! share it, so exact-peak assertions belong in single-ensemble binaries
//! like the scale sweep, not in parallel test suites.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------------
// Counting global allocator (opt-in via #[global_allocator] in a binary).

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
static HEAP_CURRENT: AtomicUsize = AtomicUsize::new(0);
static HEAP_PEAK: AtomicUsize = AtomicUsize::new(0);

/// A counting wrapper around the system allocator. Install with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;` in a test
/// or bench binary, then read [`alloc_calls`] / [`heap_peak_bytes`].
pub struct CountingAlloc;

fn heap_add(bytes: usize) {
    let now = HEAP_CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    HEAP_PEAK.fetch_max(now, Ordering::Relaxed);
}

fn heap_sub(bytes: usize) {
    // Saturating: frees of memory allocated before a reset must not wrap.
    let _ = HEAP_CURRENT.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(bytes))
    });
}

#[allow(unsafe_code)] // GlobalAlloc is an inherently unsafe trait to implement.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        heap_add(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        heap_sub(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        heap_add(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        heap_sub(layout.size());
        heap_add(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

/// Number of allocation calls (alloc + alloc_zeroed + realloc) since the
/// last [`reset_alloc_calls`]. Only meaningful when [`CountingAlloc`] is
/// installed as the global allocator.
pub fn alloc_calls() -> usize {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Resets the allocation-call counter.
pub fn reset_alloc_calls() {
    ALLOC_CALLS.store(0, Ordering::Relaxed);
}

/// Current heap bytes as seen by [`CountingAlloc`] (0 when not installed).
pub fn heap_current_bytes() -> usize {
    HEAP_CURRENT.load(Ordering::Relaxed)
}

/// Peak heap bytes since the last [`reset_heap_peak`] (0 when
/// [`CountingAlloc`] is not installed).
pub fn heap_peak_bytes() -> usize {
    HEAP_PEAK.load(Ordering::Relaxed)
}

/// Resets the heap peak to the current level.
pub fn reset_heap_peak() {
    HEAP_PEAK.store(HEAP_CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Ensemble byte budget (always available; no custom allocator required).

static ENSEMBLE_LIMIT: AtomicUsize = AtomicUsize::new(0);
static ENSEMBLE_CURRENT: AtomicUsize = AtomicUsize::new(0);
static ENSEMBLE_PEAK: AtomicUsize = AtomicUsize::new(0);

/// The ensemble byte budget was exhausted: registering `requested` more
/// bytes on top of `in_use` would exceed `limit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Bytes the failed registration asked for.
    pub requested: usize,
    /// Tracked ensemble bytes already in use at the time.
    pub in_use: usize,
    /// The configured ceiling.
    pub limit: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ensemble memory ceiling exceeded: {} bytes requested with {} already \
             tracked, limit {} (raise --max-ensemble-bytes or lower --strip-worlds \
             to analyze worlds in smaller strips)",
            self.requested, self.in_use, self.limit
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Sets the ensemble byte ceiling (`0` = unlimited). Wired to the
/// `--max-ensemble-bytes` CLI flag.
pub fn set_ensemble_limit(bytes: usize) {
    ENSEMBLE_LIMIT.store(bytes, Ordering::Relaxed);
}

/// The configured ensemble byte ceiling (`0` = unlimited).
pub fn ensemble_limit() -> usize {
    ENSEMBLE_LIMIT.load(Ordering::Relaxed)
}

/// Tracked ensemble bytes currently live.
pub fn ensemble_current_bytes() -> usize {
    ENSEMBLE_CURRENT.load(Ordering::Relaxed)
}

/// Peak tracked ensemble bytes since the last [`reset_ensemble_peak`].
pub fn ensemble_peak_bytes() -> usize {
    ENSEMBLE_PEAK.load(Ordering::Relaxed)
}

/// Resets the tracked-bytes peak to the current level.
pub fn reset_ensemble_peak() {
    ENSEMBLE_PEAK.store(ENSEMBLE_CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Would registering `bytes` more stay under the ceiling? `Ok` when no
/// limit is set. This is advisory (racy against concurrent registrations);
/// the scale sweep and the pipeline entry points use it for fail-fast
/// errors *before* allocating, then the gauge records what truly happened.
pub fn check_ensemble_budget(bytes: usize) -> Result<(), BudgetExceeded> {
    let limit = ensemble_limit();
    let in_use = ensemble_current_bytes();
    if limit > 0 && in_use.saturating_add(bytes) > limit {
        return Err(BudgetExceeded {
            requested: bytes,
            in_use,
            limit,
        });
    }
    Ok(())
}

/// A registration of ensemble bytes against the process-global gauge. The
/// bytes are released when the guard drops; cloning re-registers the same
/// amount (a cloned arena really does occupy more memory).
#[derive(Debug, Default)]
pub struct Tracked {
    bytes: usize,
}

impl Tracked {
    /// Registers `bytes` unconditionally (gauge accounting only — the
    /// ceiling is not consulted). Infallible constructors use this so the
    /// peak stays accurate even on paths that cannot return errors.
    pub fn register(bytes: usize) -> Self {
        let now = ENSEMBLE_CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
        ENSEMBLE_PEAK.fetch_max(now, Ordering::Relaxed);
        Self { bytes }
    }

    /// Registers `bytes` only if the ceiling allows it.
    ///
    /// # Errors
    /// [`BudgetExceeded`] when a limit is set and the registration would
    /// cross it; the gauge is left unchanged.
    pub fn try_register(bytes: usize) -> Result<Self, BudgetExceeded> {
        let limit = ensemble_limit();
        let prior = ENSEMBLE_CURRENT.fetch_add(bytes, Ordering::Relaxed);
        let now = prior + bytes;
        if limit > 0 && now > limit {
            ENSEMBLE_CURRENT.fetch_sub(bytes, Ordering::Relaxed);
            return Err(BudgetExceeded {
                requested: bytes,
                in_use: prior,
                limit,
            });
        }
        ENSEMBLE_PEAK.fetch_max(now, Ordering::Relaxed);
        Ok(Self { bytes })
    }

    /// Bytes this guard holds registered.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Clone for Tracked {
    fn clone(&self) -> Self {
        Self::register(self.bytes)
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        ENSEMBLE_CURRENT.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The gauge is process-global; tests touching the limit serialize.
    static GAUGE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn tracked_registers_and_releases() {
        let _guard = GAUGE_LOCK.lock().unwrap();
        set_ensemble_limit(0);
        let before = ensemble_current_bytes();
        let t = Tracked::register(1024);
        assert_eq!(t.bytes(), 1024);
        assert!(ensemble_current_bytes() >= before + 1024);
        let cloned = t.clone();
        assert!(ensemble_current_bytes() >= before + 2048);
        drop(cloned);
        drop(t);
        assert_eq!(ensemble_current_bytes(), before);
    }

    #[test]
    fn peak_is_monotone_until_reset() {
        let _guard = GAUGE_LOCK.lock().unwrap();
        set_ensemble_limit(0);
        let t = Tracked::register(4096);
        let peak_with = ensemble_peak_bytes();
        assert!(peak_with >= 4096);
        drop(t);
        assert!(ensemble_peak_bytes() >= peak_with);
        reset_ensemble_peak();
        assert_eq!(ensemble_peak_bytes(), ensemble_current_bytes());
    }

    #[test]
    fn try_register_enforces_the_limit() {
        let _guard = GAUGE_LOCK.lock().unwrap();
        let floor = ensemble_current_bytes();
        set_ensemble_limit(floor + 1000);
        let ok = Tracked::try_register(900).expect("within budget");
        let err = Tracked::try_register(200).expect_err("over budget");
        assert_eq!(err.limit, floor + 1000);
        assert!(err.in_use >= floor + 900);
        assert_eq!(err.requested, 200);
        // A failed registration leaves the gauge unchanged.
        assert_eq!(ensemble_current_bytes(), floor + 900);
        let msg = err.to_string();
        assert!(msg.contains("strip-worlds"), "{msg}");
        drop(ok);
        set_ensemble_limit(0);
        assert!(Tracked::try_register(usize::MAX / 2).is_ok());
    }

    #[test]
    fn check_is_advisory_and_respects_limit() {
        let _guard = GAUGE_LOCK.lock().unwrap();
        let floor = ensemble_current_bytes();
        set_ensemble_limit(0);
        assert!(check_ensemble_budget(usize::MAX).is_ok());
        set_ensemble_limit(floor + 10);
        assert!(check_ensemble_budget(10).is_ok());
        assert!(check_ensemble_budget(11).is_err());
        set_ensemble_limit(0);
    }
}
