//! Fixed-bin histograms for reproducing the paper's distribution plots
//! (Fig. 3: edge-probability distributions and degree distributions).

/// A histogram with `bins` equal-width bins over `[lo, hi)`; values exactly
/// equal to `hi` fall into the last bin, values outside the range are
//  counted separately.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x > self.hi {
            self.overflow += 1;
            return;
        }
        let bins = self.counts.len();
        let idx = if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
    }

    /// Adds every observation in the slice.
    pub fn extend_from(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations pushed (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Inclusive-lower bin edges, `bins + 1` values from `lo` to `hi`.
    pub fn edges(&self) -> Vec<f64> {
        let bins = self.counts.len();
        (0..=bins)
            .map(|i| self.lo + (self.hi - self.lo) * i as f64 / bins as f64)
            .collect()
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Bin counts normalized to fractions of total in-range observations
    /// (empty histogram yields all zeros).
    pub fn fractions(&self) -> Vec<f64> {
        let in_range = self.total - self.underflow - self.overflow;
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / in_range as f64)
            .collect()
    }

    /// Renders an ASCII bar chart (one line per bin) — used by the figure
    /// binaries to print distribution plots into terminals and logs.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar_len = ((c as f64 / max as f64) * width as f64).round() as usize;
            let lo = self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64;
            let hi = self.lo + (self.hi - self.lo) * (i + 1) as f64 / self.counts.len() as f64;
            out.push_str(&format!(
                "[{lo:8.3},{hi:8.3}) {c:>8} {}\n",
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

/// Number of buckets of a [`Log2Histogram`]: one per possible bit-length
/// of a `u64` value, plus a dedicated zero bucket.
pub const LOG2_BUCKETS: usize = 65;

/// A power-of-two (log-scaled) histogram over non-negative integer values,
/// built for latency/magnitude telemetry: bucket 0 holds exact zeros and
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`. Sixty-five buckets
/// cover the full `u64` range, so recording never needs range
/// configuration and can never under/overflow — the properties the
/// observability layer (`chameleon_obs`) relies on when it mirrors these
/// buckets with relaxed atomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; LOG2_BUCKETS],
            total: 0,
            sum: 0,
        }
    }

    /// The bucket index of value `x`: 0 for 0, else `bit_length(x)`
    /// (so bucket `i` spans `[2^(i-1), 2^i)`).
    pub fn bucket_index(x: u64) -> usize {
        (u64::BITS - x.leading_zeros()) as usize
    }

    /// The half-open value range `[lo, hi)` of bucket `i` (bucket 0 is the
    /// degenerate `[0, 1)`; the top bucket's `hi` saturates at `u64::MAX`).
    ///
    /// # Panics
    /// Panics if `i >= LOG2_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < LOG2_BUCKETS, "bucket {i} out of range");
        match i {
            0 => (0, 1),
            _ => (1u64 << (i - 1), (1u128 << i).min(u64::MAX as u128) as u64),
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: u64) {
        self.counts[Self::bucket_index(x)] += 1;
        self.total += 1;
        self.sum += x as u128;
    }

    /// Rebuilds a histogram from externally accumulated per-bucket counts
    /// and a value sum — how `chameleon_obs` materializes its atomic
    /// bucket arrays into this shared representation at snapshot time.
    ///
    /// # Panics
    /// Panics if `counts` does not hold exactly [`LOG2_BUCKETS`] entries.
    pub fn from_counts(counts: &[u64], sum: u128) -> Self {
        assert_eq!(counts.len(), LOG2_BUCKETS, "need {LOG2_BUCKETS} buckets");
        Self {
            counts: counts.to_vec(),
            total: counts.iter().sum(),
            sum,
        }
    }

    /// Raw bucket counts ([`LOG2_BUCKETS`] entries).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of all recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0 ≤ q ≤ 1`)
    /// — an estimate with inherent power-of-two resolution. Returns 0 for
    /// an empty histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bounds(i).1;
            }
        }
        Self::bucket_bounds(LOG2_BUCKETS - 1).1
    }

    /// Sparse `(bucket_lo, bucket_hi, count)` triples for the non-empty
    /// buckets, in ascending value order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

/// An integer-valued exact frequency counter (for degree distributions,
/// where bins must align with integers).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntHistogram {
    counts: std::collections::BTreeMap<u64, u64>,
    total: u64,
}

impl IntHistogram {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: u64) {
        *self.counts.entry(x).or_insert(0) += 1;
        self.total += 1;
    }

    /// Frequency of value `x`.
    pub fn count(&self, x: u64) -> u64 {
        self.counts.get(&x).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sorted `(value, count)` pairs.
    pub fn items(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Largest observed value.
    pub fn max_value(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Complementary cumulative distribution `Pr[X >= x]` at each observed
    /// value, in ascending value order — the standard way heavy-tailed
    /// degree distributions are plotted.
    pub fn ccdf(&self) -> Vec<(u64, f64)> {
        let mut remaining = self.total as f64;
        let mut out = Vec::with_capacity(self.counts.len());
        for (&v, &c) in &self.counts {
            out.push((v, remaining / self.total.max(1) as f64));
            remaining -= c as f64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend_from(&[0.0, 0.1, 0.3, 0.5, 0.74, 0.76, 0.99, 1.0]);
        assert_eq!(h.counts(), &[2, 1, 2, 3]);
        assert_eq!(h.total(), 8);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn top_edge_goes_to_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.push(1.0);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-0.5);
        h.push(1.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts(), &[0, 0]);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend_from(&[1.0, 2.0, 3.0, 7.0, 9.0]);
        let total: f64 = h.fractions().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edges_and_centers() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.edges(), vec![0.0, 0.5, 1.0]);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-12);
        assert!((h.bin_center(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_nonempty() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.extend_from(&[0.1, 0.1, 0.9]);
        let s = h.render_ascii(10);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('#'));
    }

    #[test]
    fn int_histogram_counts() {
        let mut h = IntHistogram::new();
        for x in [3u64, 3, 3, 7, 9] {
            h.push(x);
        }
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(7), 1);
        assert_eq!(h.count(4), 0);
        assert_eq!(h.total(), 5);
        assert_eq!(h.max_value(), Some(9));
    }

    #[test]
    fn int_histogram_ccdf() {
        let mut h = IntHistogram::new();
        for x in [1u64, 2, 2, 3] {
            h.push(x);
        }
        let ccdf = h.ccdf();
        assert_eq!(ccdf[0], (1, 1.0));
        assert!((ccdf[1].1 - 0.75).abs() < 1e-12);
        assert!((ccdf[2].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn log2_bucket_boundaries() {
        // Zero gets its own bucket; each power of two starts a new bucket.
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(1023), 10);
        assert_eq!(Log2Histogram::bucket_index(1024), 11);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        // Bounds partition the value space: bucket i ends where i+1 starts.
        for i in 0..LOG2_BUCKETS - 1 {
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            let (next_lo, _) = Log2Histogram::bucket_bounds(i + 1);
            assert!(lo < hi, "bucket {i}: [{lo}, {hi})");
            assert_eq!(hi, next_lo, "bucket {i} must abut bucket {}", i + 1);
        }
        // Every value lands inside its bucket's bounds.
        for x in [0u64, 1, 2, 3, 7, 8, 1_000_000, u64::MAX / 2] {
            let (lo, hi) = Log2Histogram::bucket_bounds(Log2Histogram::bucket_index(x));
            assert!(x >= lo && x < hi, "{x} outside [{lo}, {hi})");
        }
    }

    #[test]
    fn log2_record_and_stats() {
        let mut h = Log2Histogram::new();
        for x in [0u64, 1, 5, 5, 9] {
            h.record(x);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.sum(), 20);
        assert!((h.mean() - 4.0).abs() < 1e-12);
        assert_eq!(h.counts()[0], 1); // the zero
        assert_eq!(h.counts()[1], 1); // 1
        assert_eq!(h.counts()[3], 2); // 5, 5 in [4, 8)
        assert_eq!(h.counts()[4], 1); // 9 in [8, 16)
        let sparse = h.nonzero_buckets();
        assert_eq!(sparse.len(), 4);
        assert_eq!(sparse[0], (0, 1, 1));
    }

    #[test]
    fn log2_from_counts_round_trips() {
        let mut h = Log2Histogram::new();
        for x in [3u64, 100, 40_000] {
            h.record(x);
        }
        let rebuilt = Log2Histogram::from_counts(h.counts(), h.sum());
        assert_eq!(rebuilt, h);
    }

    #[test]
    fn log2_quantiles() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.quantile_upper_bound(0.5), 0);
        for _ in 0..99 {
            h.record(10); // bucket [8, 16)
        }
        h.record(1_000_000); // bucket [2^19, 2^20)
        assert_eq!(h.quantile_upper_bound(0.5), 16);
        assert_eq!(h.quantile_upper_bound(0.99), 16);
        assert_eq!(h.quantile_upper_bound(1.0), 1 << 20);
    }

    proptest! {
        #[test]
        fn log2_value_always_in_own_bucket(x in 0u64..=u64::MAX) {
            let i = Log2Histogram::bucket_index(x);
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            prop_assert!(x >= lo);
            prop_assert!(x < hi || (i == LOG2_BUCKETS - 1 && x == u64::MAX));
        }
    }

    proptest! {
        #[test]
        fn total_conserved(xs in proptest::collection::vec(-2.0f64..3.0, 0..200)) {
            let mut h = Histogram::new(0.0, 1.0, 7);
            h.extend_from(&xs);
            let binned: u64 = h.counts().iter().sum();
            prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        }

        #[test]
        fn ccdf_monotone_decreasing(xs in proptest::collection::vec(0u64..50, 1..100)) {
            let mut h = IntHistogram::new();
            for x in &xs { h.push(*x); }
            let ccdf = h.ccdf();
            for w in ccdf.windows(2) {
                prop_assert!(w[0].1 >= w[1].1);
            }
            prop_assert!((ccdf[0].1 - 1.0).abs() < 1e-12);
        }
    }
}
