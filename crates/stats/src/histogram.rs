//! Fixed-bin histograms for reproducing the paper's distribution plots
//! (Fig. 3: edge-probability distributions and degree distributions).

/// A histogram with `bins` equal-width bins over `[lo, hi)`; values exactly
/// equal to `hi` fall into the last bin, values outside the range are
//  counted separately.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x > self.hi {
            self.overflow += 1;
            return;
        }
        let bins = self.counts.len();
        let idx = if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
    }

    /// Adds every observation in the slice.
    pub fn extend_from(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations pushed (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Inclusive-lower bin edges, `bins + 1` values from `lo` to `hi`.
    pub fn edges(&self) -> Vec<f64> {
        let bins = self.counts.len();
        (0..=bins)
            .map(|i| self.lo + (self.hi - self.lo) * i as f64 / bins as f64)
            .collect()
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Bin counts normalized to fractions of total in-range observations
    /// (empty histogram yields all zeros).
    pub fn fractions(&self) -> Vec<f64> {
        let in_range = self.total - self.underflow - self.overflow;
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / in_range as f64)
            .collect()
    }

    /// Renders an ASCII bar chart (one line per bin) — used by the figure
    /// binaries to print distribution plots into terminals and logs.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar_len = ((c as f64 / max as f64) * width as f64).round() as usize;
            let lo = self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64;
            let hi = self.lo + (self.hi - self.lo) * (i + 1) as f64 / self.counts.len() as f64;
            out.push_str(&format!(
                "[{lo:8.3},{hi:8.3}) {c:>8} {}\n",
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

/// An integer-valued exact frequency counter (for degree distributions,
/// where bins must align with integers).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntHistogram {
    counts: std::collections::BTreeMap<u64, u64>,
    total: u64,
}

impl IntHistogram {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: u64) {
        *self.counts.entry(x).or_insert(0) += 1;
        self.total += 1;
    }

    /// Frequency of value `x`.
    pub fn count(&self, x: u64) -> u64 {
        self.counts.get(&x).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sorted `(value, count)` pairs.
    pub fn items(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Largest observed value.
    pub fn max_value(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Complementary cumulative distribution `Pr[X >= x]` at each observed
    /// value, in ascending value order — the standard way heavy-tailed
    /// degree distributions are plotted.
    pub fn ccdf(&self) -> Vec<(u64, f64)> {
        let mut remaining = self.total as f64;
        let mut out = Vec::with_capacity(self.counts.len());
        for (&v, &c) in &self.counts {
            out.push((v, remaining / self.total.max(1) as f64));
            remaining -= c as f64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend_from(&[0.0, 0.1, 0.3, 0.5, 0.74, 0.76, 0.99, 1.0]);
        assert_eq!(h.counts(), &[2, 1, 2, 3]);
        assert_eq!(h.total(), 8);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn top_edge_goes_to_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.push(1.0);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-0.5);
        h.push(1.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts(), &[0, 0]);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend_from(&[1.0, 2.0, 3.0, 7.0, 9.0]);
        let total: f64 = h.fractions().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edges_and_centers() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.edges(), vec![0.0, 0.5, 1.0]);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-12);
        assert!((h.bin_center(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_nonempty() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.extend_from(&[0.1, 0.1, 0.9]);
        let s = h.render_ascii(10);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('#'));
    }

    #[test]
    fn int_histogram_counts() {
        let mut h = IntHistogram::new();
        for x in [3u64, 3, 3, 7, 9] {
            h.push(x);
        }
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(7), 1);
        assert_eq!(h.count(4), 0);
        assert_eq!(h.total(), 5);
        assert_eq!(h.max_value(), Some(9));
    }

    #[test]
    fn int_histogram_ccdf() {
        let mut h = IntHistogram::new();
        for x in [1u64, 2, 2, 3] {
            h.push(x);
        }
        let ccdf = h.ccdf();
        assert_eq!(ccdf[0], (1, 1.0));
        assert!((ccdf[1].1 - 0.75).abs() < 1e-12);
        assert!((ccdf[2].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    proptest! {
        #[test]
        fn total_conserved(xs in proptest::collection::vec(-2.0f64..3.0, 0..200)) {
            let mut h = Histogram::new(0.0, 1.0, 7);
            h.extend_from(&xs);
            let binned: u64 = h.counts().iter().sum();
            prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        }

        #[test]
        fn ccdf_monotone_decreasing(xs in proptest::collection::vec(0u64..50, 1..100)) {
            let mut h = IntHistogram::new();
            for x in &xs { h.push(*x); }
            let ccdf = h.ccdf();
            for w in ccdf.windows(2) {
                prop_assert!(w[0].1 >= w[1].1);
            }
            prop_assert!((ccdf[0].1 - 1.0).abs() < 1e-12);
        }
    }
}
