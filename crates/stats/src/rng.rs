//! Deterministic random-number management.
//!
//! Experiments in the reproduction fan out many independent stochastic
//! components (world sampling, candidate-edge selection, noise draws, …).
//! To keep every table reproducible from a single master seed, components
//! derive their own child seeds through a [`SeedSequence`]: a SplitMix64
//! stream keyed by the master seed and a stable label.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
///
/// This is the classic Vigna SplitMix64 generator; we use it only for seed
/// derivation (never as the experiment RNG itself, which is [`StdRng`]).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent child seeds/RNGs from a master seed.
///
/// Child seeds are a pure function of `(master_seed, label)`, so adding new
/// labelled components to an experiment does not disturb the randomness of
/// existing ones.
///
/// ```
/// use chameleon_stats::SeedSequence;
/// let seq = SeedSequence::new(42);
/// let a = seq.derive("world-sampling");
/// let b = seq.derive("noise");
/// assert_ne!(a, b);
/// assert_eq!(a, SeedSequence::new(42).derive("world-sampling"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence keyed by `master` seed.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// Returns the master seed this sequence was built from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives a child seed for the component named `label`.
    pub fn derive(&self, label: &str) -> u64 {
        // FNV-1a over the label, mixed with the master through SplitMix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = self.master ^ h;
        // A couple of extra steps decorrelates nearby (master, label) pairs.
        splitmix64(&mut state);
        splitmix64(&mut state)
    }

    /// Derives a child seed indexed by `(label, index)`, e.g. per-trial RNGs.
    pub fn derive_indexed(&self, label: &str, index: u64) -> u64 {
        let mut state = self.derive(label) ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
        splitmix64(&mut state)
    }

    /// Derives a child seed indexed by a `(label, i, j)` pair.
    ///
    /// Each index is mixed through its own SplitMix64 step, so distinct
    /// `(i, j)` pairs never alias by construction — unlike flattening the
    /// pair into `i·K + j`, which collides as soon as `j` reaches `K`
    /// (e.g. per-call × per-trial streams with ≥ K trials).
    pub fn derive_indexed2(&self, label: &str, i: u64, j: u64) -> u64 {
        let mut state = self.derive(label) ^ i.wrapping_mul(0xA24B_AED4_963E_E407);
        splitmix64(&mut state);
        state ^= j.wrapping_mul(0x9FB2_1C65_1E98_DF25);
        splitmix64(&mut state)
    }

    /// Builds a [`StdRng`] for the component named `label`.
    pub fn rng(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.derive(label))
    }

    /// Builds a [`StdRng`] for the `(label, index)` component.
    pub fn rng_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.derive_indexed(label, index))
    }

    /// Builds a [`StdRng`] for the `(label, i, j)` component.
    pub fn rng_indexed2(&self, label: &str, i: u64, j: u64) -> StdRng {
        StdRng::seed_from_u64(self.derive_indexed2(label, i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic() {
        let s1 = SeedSequence::new(7);
        let s2 = SeedSequence::new(7);
        assert_eq!(s1.derive("x"), s2.derive("x"));
        assert_eq!(s1.derive_indexed("x", 3), s2.derive_indexed("x", 3));
    }

    #[test]
    fn labels_give_distinct_streams() {
        let s = SeedSequence::new(7);
        assert_ne!(s.derive("a"), s.derive("b"));
        assert_ne!(s.derive_indexed("a", 0), s.derive_indexed("a", 1));
    }

    #[test]
    fn indexed2_pairs_never_alias_like_flattened_indices() {
        // The old call sites flattened (call, trial) into call·1000 + trial,
        // which collides e.g. (0, 1000) with (1, 0). derive_indexed2 keeps a
        // dense grid of pairs distinct.
        let s = SeedSequence::new(11);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            for j in 0..2048u64 {
                assert!(
                    seen.insert(s.derive_indexed2("t", i, j)),
                    "seed collision at ({i}, {j})"
                );
            }
        }
        // Deterministic, and sensitive to both indices.
        assert_eq!(
            s.derive_indexed2("t", 3, 5),
            SeedSequence::new(11).derive_indexed2("t", 3, 5)
        );
        assert_ne!(s.derive_indexed2("t", 3, 5), s.derive_indexed2("t", 5, 3));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedSequence::new(1).derive("x"),
            SeedSequence::new(2).derive("x")
        );
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut a = SeedSequence::new(99).rng("t");
        let mut b = SeedSequence::new(99).rng("t");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference output of SplitMix64 seeded with 0 (first output).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn master_accessor() {
        assert_eq!(SeedSequence::new(5).master(), 5);
    }
}
