//! The truncated normal noise distribution `R(σ)` (paper §V-A).
//!
//! The obfuscation algorithms perturb edge probabilities by a stochastic
//! amount `r_e` drawn from a distribution "with density function proportional
//! to the normal distribution, with mean 0 and variance σ²", truncated to a
//! bounded interval so the perturbed probability stays meaningful. Following
//! Boldi et al. (VLDB 2012), the mass is restricted to `[0, 1]`: the noise is
//! a *magnitude* in probability space; the direction is supplied by the
//! perturbation rule (max-entropy `p + (1-2p)·r`, or a random sign for the
//! unguided variant).

use rand::Rng;

/// Density ∝ `exp(-x² / (2σ²))` on the interval `[lo, hi]`.
///
/// Sampling is via inverse-transform on the (erf-based) normal CDF, which is
/// exact up to `erf`/`erfinv` accuracy and — unlike rejection sampling —
/// consumes exactly one uniform variate per draw, which keeps common-random-
/// number experiment designs aligned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    sigma: f64,
    lo: f64,
    hi: f64,
    /// Φ₀,σ(lo), cached.
    cdf_lo: f64,
    /// Φ₀,σ(hi) − Φ₀,σ(lo), cached.
    cdf_span: f64,
}

impl TruncatedNormal {
    /// Half-normal on `[0, 1]`: the paper's `R(σ)` noise magnitude.
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive and finite.
    pub fn half_unit(sigma: f64) -> Self {
        Self::new(sigma, 0.0, 1.0)
    }

    /// General truncation to `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `sigma <= 0`, `sigma` is non-finite, or `lo >= hi`.
    pub fn new(sigma: f64, lo: f64, hi: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "sigma must be positive and finite, got {sigma}"
        );
        assert!(lo < hi, "invalid truncation interval [{lo}, {hi}]");
        let cdf = |x: f64| normal_cdf(x / sigma);
        let cdf_lo = cdf(lo);
        let cdf_span = cdf(hi) - cdf_lo;
        Self {
            sigma,
            lo,
            hi,
            cdf_lo,
            cdf_span,
        }
    }

    /// The shape parameter σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Lower truncation bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper truncation bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inverse_cdf(rng.gen::<f64>())
    }

    /// Quantile function: maps `u ∈ [0, 1]` to the sample value.
    ///
    /// Exposed so that experiments can reuse a single uniform stream across
    /// σ values (common random numbers).
    pub fn inverse_cdf(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        if self.cdf_span <= f64::EPSILON {
            // Degenerate truncation (σ ≪ interval offset); all mass at `lo`.
            return self.lo;
        }
        let target = self.cdf_lo + u * self.cdf_span;
        let x = self.sigma * normal_quantile(target);
        x.clamp(self.lo, self.hi)
    }

    /// Probability density at `x` (0 outside the truncation interval).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi || self.cdf_span <= f64::EPSILON {
            return 0.0;
        }
        let z = x / self.sigma;
        let phi = (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt());
        phi / self.cdf_span
    }
}

/// Standard normal CDF via `erf`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal quantile (inverse CDF), Acklam's rational approximation
/// refined with one Halley step; |error| < 1e-13 over (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }

    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Error function, accurate to ~1e-14: Maclaurin series for small |x|,
/// complementary continued fraction (modified Lentz) for large |x|.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x == 0.0 {
        return 0.0;
    }
    if x > 6.5 {
        return 1.0; // erfc < 4e-20, below f64 resolution of 1 - erfc
    }
    if x <= 2.0 {
        // erf(x) = (2/√π) Σ_{n≥0} (−1)ⁿ x^{2n+1} / (n! (2n+1))
        let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
        let x2 = x * x;
        let mut term = x;
        let mut sum = x;
        let mut n = 1.0;
        loop {
            term *= -x2 / n;
            let add = term / (2.0 * n + 1.0);
            sum += add;
            if add.abs() < 1e-17 * sum.abs() {
                break;
            }
            n += 1.0;
        }
        two_over_sqrt_pi * sum
    } else {
        1.0 - erfc_large(x)
    }
}

/// erfc(x) for x > 2 via the Laplace continued fraction (A&S 7.1.14):
/// √π·e^{x²}·erfc(x) = 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + 2/(x + …)))))
/// — partial numerators aₙ = (n−1)/2 for n ≥ 2 (a₁ = 1), denominators x —
/// evaluated with the modified Lentz algorithm.
fn erfc_large(x: f64) -> f64 {
    let tiny = 1e-300;
    let mut f: f64 = tiny; // b0 = 0
    let mut c: f64 = f;
    let mut d: f64 = 0.0;
    for n in 1..400 {
        let a = if n == 1 { 1.0 } else { (n as f64 - 1.0) / 2.0 };
        d = x + a * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = x + a / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / std::f64::consts::PI.sqrt() * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let z = normal_quantile(p);
            assert!(
                (normal_cdf(z) - p).abs() < 1e-9,
                "p={p}, z={z}, cdf={}",
                normal_cdf(z)
            );
        }
    }

    #[test]
    fn quantile_median_is_zero() {
        assert!(normal_quantile(0.5).abs() < 1e-12);
    }

    #[test]
    fn samples_respect_bounds() {
        let d = TruncatedNormal::half_unit(0.3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = d.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x), "sample {x} out of [0,1]");
        }
    }

    #[test]
    fn small_sigma_concentrates_near_zero() {
        let d = TruncatedNormal::half_unit(0.05);
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..4000).map(|_| d.sample(&mut rng)).sum::<f64>() / 4000.0;
        // Half-normal mean is σ·sqrt(2/π) ≈ 0.0399 for σ = 0.05.
        assert!((mean - 0.05 * (2.0 / std::f64::consts::PI).sqrt()).abs() < 0.01);
    }

    #[test]
    fn large_sigma_spreads_mass() {
        let d = TruncatedNormal::half_unit(10.0);
        let mut rng = StdRng::seed_from_u64(3);
        // With σ ≫ 1 the truncated density is nearly uniform on [0,1]:
        // mean ≈ 0.5.
        let mean: f64 = (0..4000).map(|_| d.sample(&mut rng)).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.03, "mean={mean}");
    }

    #[test]
    fn monotone_quantile() {
        let d = TruncatedNormal::half_unit(0.4);
        let mut prev = -1.0;
        for i in 0..=100 {
            let q = d.inverse_cdf(i as f64 / 100.0);
            assert!(q >= prev);
            prev = q;
        }
        assert!((d.inverse_cdf(0.0) - 0.0).abs() < 1e-9);
        assert!((d.inverse_cdf(1.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = TruncatedNormal::half_unit(0.5);
        let n = 20_000;
        let h = 1.0 / n as f64;
        let integral: f64 = (0..n).map(|i| d.pdf((i as f64 + 0.5) * h) * h).sum();
        assert!((integral - 1.0).abs() < 1e-4, "integral={integral}");
    }

    #[test]
    fn pdf_zero_outside_support() {
        let d = TruncatedNormal::half_unit(0.5);
        assert_eq!(d.pdf(-0.1), 0.0);
        assert_eq!(d.pdf(1.1), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_sigma() {
        let _ = TruncatedNormal::half_unit(0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_interval() {
        let _ = TruncatedNormal::new(1.0, 0.5, 0.5);
    }

    #[test]
    fn accessors() {
        let d = TruncatedNormal::new(0.7, 0.1, 0.9);
        assert_eq!(d.sigma(), 0.7);
        assert_eq!(d.lo(), 0.1);
        assert_eq!(d.hi(), 0.9);
    }
}
