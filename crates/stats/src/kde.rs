//! Gaussian-kernel density estimation for commonness/uniqueness scores.
//!
//! Paper Definition 4 (after Boldi et al.): the θ-commonness of a property
//! value ω is `C_θ(ω) = Σ_u φ_{0,θ}(d(ω, P(u)))` — a Gaussian KDE evaluated
//! at ω over all vertices' property values — and the θ-uniqueness is
//! `U_θ(ω) = 1 / C_θ(ω)`. Chameleon sets θ = σ_G, the standard deviation of
//! the property values in the input uncertain graph (paper §V-C).

use crate::summary::Summary;

/// A Gaussian kernel density / commonness estimator over scalar property
/// values (expected degrees in the paper).
#[derive(Debug, Clone)]
pub struct GaussianKde {
    points: Vec<f64>,
    theta: f64,
    norm: f64,
}

impl GaussianKde {
    /// Builds the estimator with explicit bandwidth `theta`.
    ///
    /// # Panics
    /// Panics if `theta` is not strictly positive and finite.
    pub fn new(points: Vec<f64>, theta: f64) -> Self {
        assert!(
            theta.is_finite() && theta > 0.0,
            "bandwidth must be positive, got {theta}"
        );
        let norm = 1.0 / (theta * (2.0 * std::f64::consts::PI).sqrt());
        Self {
            points,
            theta,
            norm,
        }
    }

    /// Builds the estimator with the paper's bandwidth choice θ = σ_G, the
    /// (population) standard deviation of the property values themselves.
    /// Falls back to bandwidth 1 when the values are constant, matching the
    /// degenerate case where every node is equally common.
    pub fn with_data_bandwidth(points: Vec<f64>) -> Self {
        let mut s = Summary::new();
        for &x in &points {
            s.push(x);
        }
        let sd = s.population_std_dev();
        let theta = if sd > 1e-12 { sd } else { 1.0 };
        Self::new(points, theta)
    }

    /// The bandwidth θ in use.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of support points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the estimator holds no support points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// θ-commonness `C_θ(ω) = Σ_u φ_{0,θ}(ω − x_u)` (unnormalized KDE, as in
    /// the paper: the kernel values are summed, not averaged).
    pub fn commonness(&self, omega: f64) -> f64 {
        let inv2t2 = 1.0 / (2.0 * self.theta * self.theta);
        self.points
            .iter()
            .map(|&x| {
                let d = omega - x;
                self.norm * (-d * d * inv2t2).exp()
            })
            .sum()
    }

    /// θ-uniqueness `U_θ(ω) = 1 / C_θ(ω)`.
    ///
    /// A value far from all support points has commonness ≈ 0; the result is
    /// capped at `1/f64::MIN_POSITIVE`-ish via a floor on commonness so that
    /// downstream weighting stays finite.
    pub fn uniqueness(&self, omega: f64) -> f64 {
        let c = self.commonness(omega).max(1e-300);
        1.0 / c
    }

    /// Evaluates uniqueness at every support point (the per-vertex scores
    /// `U^v` of Algorithm 3 line 1). O(n²) — fine at experiment scales; the
    /// binned variant below is available for large graphs.
    pub fn uniqueness_at_support(&self) -> Vec<f64> {
        self.points.iter().map(|&x| self.uniqueness(x)).collect()
    }
}

/// Commonness of every support point computed via value-binning:
/// property values (e.g. expected degrees) concentrate on few distinct
/// values, so we bucket identical-after-rounding values and evaluate the
/// kernel once per pair of buckets. Exact when values are multiples of
/// `resolution`; otherwise an approximation with error bounded by the kernel
/// Lipschitz constant times `resolution`.
pub fn binned_uniqueness(points: &[f64], theta: f64, resolution: f64) -> Vec<f64> {
    assert!(theta > 0.0 && resolution > 0.0);
    use std::collections::BTreeMap;
    let key = |x: f64| (x / resolution).round() as i64;
    let mut buckets: BTreeMap<i64, usize> = BTreeMap::new();
    for &x in points {
        *buckets.entry(key(x)).or_insert(0) += 1;
    }
    let reps: Vec<(f64, f64)> = buckets
        .iter()
        .map(|(&k, &c)| (k as f64 * resolution, c as f64))
        .collect();
    let norm = 1.0 / (theta * (2.0 * std::f64::consts::PI).sqrt());
    let inv2t2 = 1.0 / (2.0 * theta * theta);
    let mut commonness_by_key: BTreeMap<i64, f64> = BTreeMap::new();
    for (&k, _) in buckets.iter() {
        let omega = k as f64 * resolution;
        let c: f64 = reps
            .iter()
            .map(|&(x, cnt)| {
                let d = omega - x;
                cnt * norm * (-d * d * inv2t2).exp()
            })
            .sum();
        commonness_by_key.insert(k, c);
    }
    points
        .iter()
        .map(|&x| 1.0 / commonness_by_key[&key(x)].max(1e-300))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn common_value_has_low_uniqueness() {
        // Many nodes with degree 3, one with degree 50.
        let mut pts = vec![3.0; 99];
        pts.push(50.0);
        let kde = GaussianKde::new(pts, 1.0);
        assert!(kde.uniqueness(50.0) > 10.0 * kde.uniqueness(3.0));
    }

    #[test]
    fn commonness_is_kernel_sum() {
        let kde = GaussianKde::new(vec![0.0], 1.0);
        let expected = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
        assert!((kde.commonness(0.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn data_bandwidth_is_population_sd() {
        let pts = vec![1.0, 2.0, 3.0, 4.0];
        let kde = GaussianKde::with_data_bandwidth(pts);
        // population sd of {1,2,3,4} = sqrt(1.25)
        assert!((kde.theta() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn constant_data_falls_back_to_unit_bandwidth() {
        let kde = GaussianKde::with_data_bandwidth(vec![5.0; 10]);
        assert_eq!(kde.theta(), 1.0);
    }

    #[test]
    fn uniqueness_at_support_matches_pointwise() {
        let pts = vec![1.0, 2.0, 2.0, 8.0];
        let kde = GaussianKde::new(pts.clone(), 1.5);
        let scores = kde.uniqueness_at_support();
        for (i, &x) in pts.iter().enumerate() {
            assert!((scores[i] - kde.uniqueness(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn binned_matches_exact_on_integer_grid() {
        let pts: Vec<f64> = vec![1.0, 1.0, 2.0, 5.0, 5.0, 5.0, 9.0];
        let kde = GaussianKde::new(pts.clone(), 2.0);
        let exact = kde.uniqueness_at_support();
        let binned = binned_uniqueness(&pts, 2.0, 1.0);
        for (a, b) in exact.iter().zip(&binned) {
            assert!((a - b).abs() / a < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_estimator() {
        let kde = GaussianKde::new(vec![], 1.0);
        assert!(kde.is_empty());
        assert_eq!(kde.len(), 0);
        assert_eq!(kde.commonness(0.0), 0.0);
        assert!(kde.uniqueness(0.0) > 1e100); // floor kicks in, finite
        assert!(kde.uniqueness(0.0).is_finite());
    }

    #[test]
    #[should_panic]
    fn rejects_zero_bandwidth() {
        let _ = GaussianKde::new(vec![1.0], 0.0);
    }

    proptest! {
        #[test]
        fn uniqueness_positive_and_finite(
            pts in proptest::collection::vec(0.0f64..100.0, 1..50),
            omega in 0.0f64..100.0
        ) {
            let kde = GaussianKde::new(pts, 2.0);
            let u = kde.uniqueness(omega);
            prop_assert!(u > 0.0 && u.is_finite());
        }

        #[test]
        fn farther_values_are_more_unique(
            base in 0.0f64..10.0
        ) {
            let kde = GaussianKde::new(vec![base; 20], 1.0);
            let near = kde.uniqueness(base + 0.5);
            let far = kde.uniqueness(base + 5.0);
            prop_assert!(far > near);
        }
    }
}
