//! Cross-validation of the ANF sketch against exact BFS on sampled worlds
//! — justifying the paper's use of ANF [8] for shortest-path statistics
//! as a drop-in estimator.

use chameleon_reliability::metrics::anf::anf;
use chameleon_reliability::WorldEnsemble;
use chameleon_stats::Summary;
use chameleon_ugraph::traversal::distance_stats;
use chameleon_ugraph::{generators, UncertainGraph, WorldView};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dense_uncertain_graph(seed: u64) -> UncertainGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = generators::barabasi_albert(180, 3, &mut rng);
    for e in 0..g.num_edges() as u32 {
        g.set_prob(e, 0.85).unwrap();
    }
    g
}

/// ANF mean distance tracks exact BFS mean distance over sampled worlds
/// within sketch tolerance on a connected-ish graph.
#[test]
fn anf_mean_distance_tracks_bfs() {
    let g = dense_uncertain_graph(1);
    let mut rng = StdRng::seed_from_u64(2);
    let ens = WorldEnsemble::sample(&g, 12, &mut rng);

    let all_sources: Vec<u32> = (0..g.num_nodes() as u32).collect();
    let mut exact = Summary::new();
    let mut sketch = Summary::new();
    for w in 0..ens.len() {
        let view = WorldView::new(&g, ens.world(w));
        let stats = distance_stats(&view, &all_sources);
        if stats.reachable_pairs == 0 {
            continue;
        }
        exact.push(stats.mean_distance);
        let nf = anf(&view, 64, 64, &mut rng);
        sketch.push(nf.mean_distance());
    }
    assert!(exact.count() > 0, "need connected worlds");
    let rel = (exact.mean() - sketch.mean()).abs() / exact.mean();
    assert!(
        rel < 0.25,
        "ANF mean {} vs BFS mean {} (rel err {rel})",
        sketch.mean(),
        exact.mean()
    );
}

/// ANF must preserve *ordering*: a long path has larger mean distance than
/// a dense BA graph of the same size.
#[test]
fn anf_orders_topologies_correctly() {
    let n = 128usize;
    let mut path = UncertainGraph::with_nodes(n);
    for v in 0..(n - 1) as u32 {
        path.add_edge(v, v + 1, 1.0).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(3);
    let dense = generators::barabasi_albert(n, 4, &mut rng);

    let full = |g: &UncertainGraph| {
        let mut w = chameleon_ugraph::World::empty(g.num_edges());
        for e in 0..g.num_edges() as u32 {
            w.set(e, true);
        }
        w
    };
    let wp = full(&path);
    let wd = full(&dense);
    let vp = WorldView::new(&path, &wp);
    let vd = WorldView::new(&dense, &wd);
    let mp = anf(&vp, 48, 160, &mut rng).mean_distance();
    let md = anf(&vd, 48, 20, &mut rng).mean_distance();
    assert!(
        mp > 3.0 * md,
        "path mean {mp} should far exceed dense mean {md}"
    );
}

/// Effective diameter from the sketch is consistent with the exact
/// diameter on a known topology.
#[test]
fn anf_effective_diameter_sane_on_star() {
    // Star: every pair within 2 hops.
    let mut g = UncertainGraph::with_nodes(100);
    for v in 1..100u32 {
        g.add_edge(0, v, 1.0).unwrap();
    }
    let mut w = chameleon_ugraph::World::empty(g.num_edges());
    for e in 0..g.num_edges() as u32 {
        w.set(e, true);
    }
    let view = WorldView::new(&g, &w);
    let mut rng = StdRng::seed_from_u64(4);
    let nf = anf(&view, 64, 10, &mut rng);
    assert!(nf.effective_diameter(0.99) <= 3);
    assert!(nf.mean_distance() < 2.5);
    assert!(nf.mean_distance() > 1.0);
}
