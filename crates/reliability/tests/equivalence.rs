//! Kernel-equivalence suite: the flat arena ensemble must be bit-identical
//! to the pre-rewrite reference path (one `World` allocation per world,
//! `World::components` union–find, `component_labels()` + naive size
//! counting). The reference implementation is reproduced here, against the
//! stable public API, so any drift in the optimized kernel — RNG draw
//! order, union order, label numbering, size indexing, pair counting —
//! fails loudly.

use chameleon_reliability::{WorldEnsemble, WORLD_CHUNK};
use chameleon_stats::SeedSequence;
use chameleon_ugraph::{NodeId, UncertainGraph, World, WorldSampler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-world analysis results of the historical layout.
struct RefWorld {
    world: World,
    labels: Vec<u32>,
    sizes: Vec<u32>,
    connected_pairs: u64,
}

/// The pre-rewrite analysis: one union–find per world via
/// `World::components`, dense labels via `component_labels`, sizes by
/// counting label occurrences.
fn analyze_reference(graph: &UncertainGraph, world: World) -> RefWorld {
    let mut uf = world.components(graph);
    let labels = uf.component_labels();
    let ncomp = uf.num_components();
    let mut sizes = vec![0u32; ncomp];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let connected_pairs = uf.connected_pairs();
    RefWorld {
        world,
        labels,
        sizes,
        connected_pairs,
    }
}

/// The pre-rewrite `sample_seeded` draw schedule: fixed chunks of
/// [`WORLD_CHUNK`] worlds, chunk `c` drawing from the RNG stream
/// `(seed, "world-chunk", c)`, one `WorldSampler::sample` call per world.
fn sample_seeded_reference(graph: &UncertainGraph, n: usize, seed: u64) -> Vec<RefWorld> {
    let seq = SeedSequence::new(seed);
    let mut out = Vec::with_capacity(n);
    let mut c = 0u64;
    while out.len() < n {
        let mut rng = seq.rng_indexed("world-chunk", c);
        let take = WORLD_CHUNK.min(n - out.len());
        for _ in 0..take {
            out.push(analyze_reference(
                graph,
                WorldSampler::sample(graph, &mut rng),
            ));
        }
        c += 1;
    }
    out
}

fn assert_matches_reference(graph: &UncertainGraph, ens: &WorldEnsemble, reference: &[RefWorld]) {
    assert_eq!(ens.len(), reference.len());
    assert_eq!(ens.num_nodes(), graph.num_nodes());
    for (w, r) in reference.iter().enumerate() {
        assert_eq!(ens.world(w), r.world.as_world_ref(), "world {w} bits");
        assert_eq!(ens.labels(w), r.labels.as_slice(), "world {w} labels");
        assert_eq!(
            ens.component_sizes(w),
            r.sizes.as_slice(),
            "world {w} sizes"
        );
        assert_eq!(ens.connected_pairs(w), r.connected_pairs, "world {w} pairs");
    }
}

/// Reference `reliability_many`: the plain per-pair/per-world double loop,
/// no blocking.
fn reliability_many_reference(reference: &[RefWorld], pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
    pairs
        .iter()
        .map(|&(u, v)| {
            if reference.is_empty() {
                return 0.0;
            }
            let hits = reference
                .iter()
                .filter(|r| r.labels[u as usize] == r.labels[v as usize])
                .count();
            hits as f64 / reference.len() as f64
        })
        .collect()
}

/// Reference `set_reliability`: the historical `HashSet` membership test.
fn set_reliability_reference(
    reference: &[RefWorld],
    sources: &[NodeId],
    targets: &[NodeId],
) -> f64 {
    if reference.is_empty() {
        return 0.0;
    }
    let hits = reference
        .iter()
        .filter(|r| {
            let source_labels: std::collections::HashSet<u32> =
                sources.iter().map(|&s| r.labels[s as usize]).collect();
            targets
                .iter()
                .any(|&t| source_labels.contains(&r.labels[t as usize]))
        })
        .count();
    hits as f64 / reference.len() as f64
}

/// A deterministic pair list covering all node pairs (capped), in a mixed
/// order so blocking bugs that only show off the diagonal get exercised.
fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::new();
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v {
                pairs.push((u, v));
            }
        }
    }
    pairs
}

fn check_graph(graph: &UncertainGraph, n_worlds: usize, seed: u64) {
    let reference = sample_seeded_reference(graph, n_worlds, seed);
    for threads in [1, 2, 4] {
        let ens = WorldEnsemble::sample_seeded(graph, n_worlds, seed, threads);
        assert_matches_reference(graph, &ens, &reference);
        let pairs = all_pairs(graph.num_nodes());
        let flat = ens.reliability_many(&pairs);
        let refr = reliability_many_reference(&reference, &pairs);
        for (i, (f, r)) in flat.iter().zip(&refr).enumerate() {
            assert_eq!(f.to_bits(), r.to_bits(), "pair {i}");
        }
        if graph.num_nodes() >= 3 {
            let sources = [0u32, 1];
            let targets = [(graph.num_nodes() - 1) as u32];
            assert_eq!(
                ens.set_reliability(&sources, &targets).to_bits(),
                set_reliability_reference(&reference, &sources, &targets).to_bits()
            );
        }
    }
}

fn bridge_graph() -> UncertainGraph {
    let mut g = UncertainGraph::with_nodes(6);
    for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
        g.add_edge(u, v, 0.9).unwrap();
    }
    g.add_edge(2, 3, 0.5).unwrap();
    g
}

#[test]
fn flat_ensemble_matches_reference_on_bridge_graph() {
    // Ragged tail: not a multiple of WORLD_CHUNK.
    check_graph(&bridge_graph(), 2 * WORLD_CHUNK + 13, 42);
}

#[test]
fn flat_ensemble_matches_reference_on_exact_chunk_multiple() {
    check_graph(&bridge_graph(), 2 * WORLD_CHUNK, 7);
}

#[test]
fn flat_ensemble_matches_reference_below_one_chunk() {
    check_graph(&bridge_graph(), WORLD_CHUNK - 5, 3);
}

#[test]
fn flat_ensemble_matches_reference_on_empty_graph() {
    let g = UncertainGraph::with_nodes(5);
    check_graph(&g, WORLD_CHUNK + 9, 17);
}

#[test]
fn flat_ensemble_matches_reference_on_all_deterministic_graph() {
    // Every edge has p ∈ {0, 1}: the sampling plan draws zero uniforms and
    // the template carries all present bits.
    let mut g = UncertainGraph::with_nodes(7);
    g.add_edge(0, 1, 1.0).unwrap();
    g.add_edge(1, 2, 1.0).unwrap();
    g.add_edge(2, 3, 0.0).unwrap();
    g.add_edge(4, 5, 1.0).unwrap();
    g.add_edge(5, 6, 0.0).unwrap();
    check_graph(&g, WORLD_CHUNK + 1, 23);
}

#[test]
fn flat_ensemble_matches_reference_past_a_word_boundary() {
    // More than 64 edges so worlds span multiple bitset words.
    let n = 40u32;
    let mut g = UncertainGraph::with_nodes(n as usize);
    let mut p = 0.1f64;
    for u in 0..n {
        for v in (u + 1)..n {
            if (u + v) % 5 == 0 {
                g.add_edge(u, v, p).unwrap();
                p = (p + 0.13) % 1.0;
            }
        }
    }
    assert!(g.num_edges() > 64, "need multi-word worlds");
    check_graph(&g, WORLD_CHUNK + 3, 29);
}

#[test]
fn from_worlds_matches_reference_analysis() {
    // The analysis entry point that takes externally sampled worlds must
    // agree with the reference analysis of those same worlds.
    let g = bridge_graph();
    let mut rng = StdRng::seed_from_u64(99);
    let worlds = WorldSampler::sample_many(&g, WORLD_CHUNK + 11, &mut rng);
    let reference: Vec<RefWorld> = worlds
        .iter()
        .map(|w| analyze_reference(&g, w.clone()))
        .collect();
    for threads in [1, 4] {
        let ens = WorldEnsemble::from_worlds_threads(&g, worlds.clone(), threads);
        assert_matches_reference(&g, &ens, &reference);
    }
}

/// Random uncertain graph: up to 12 nodes, edge probabilities mixing
/// deterministic (0/1) and uncertain values.
fn arb_graph() -> impl Strategy<Value = UncertainGraph> {
    (
        2usize..12,
        proptest::collection::vec((0u8..4, 0.0f64..1.0), 0..24),
    )
        .prop_map(|(n, edge_specs)| {
            let mut g = UncertainGraph::with_nodes(n);
            for (i, (kind, p)) in edge_specs.into_iter().enumerate() {
                let u = (i % n) as u32;
                let v = ((i * 7 + 1 + kind as usize) % n) as u32;
                if u == v || g.has_edge(u, v) {
                    continue;
                }
                let prob = match kind {
                    0 => 0.0,
                    1 => 1.0,
                    _ => p,
                };
                g.add_edge(u, v, prob).unwrap();
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flat_ensemble_matches_reference_on_random_graphs(
        g in arb_graph(),
        seed in 0u64..1000,
        n_worlds in 1usize..(2 * WORLD_CHUNK + 9),
    ) {
        check_graph(&g, n_worlds, seed);
    }

    #[test]
    fn sequential_sampler_matches_reference_on_random_graphs(
        g in arb_graph(),
        seed in 0u64..1000,
        n_worlds in 1usize..40,
    ) {
        // `WorldEnsemble::sample` must consume the RNG exactly like the
        // per-world sampler: same draws, same worlds, same analysis.
        let mut rng_a = StdRng::seed_from_u64(seed);
        let ens = WorldEnsemble::sample(&g, n_worlds, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let reference: Vec<RefWorld> = (0..n_worlds)
            .map(|_| analyze_reference(&g, WorldSampler::sample(&g, &mut rng_b)))
            .collect();
        assert_matches_reference(&g, &ens, &reference);
        // Both paths must leave the RNG in the same state.
        use rand::Rng;
        prop_assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }
}
