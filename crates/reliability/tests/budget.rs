//! Ensemble byte-ceiling enforcement (`--max-ensemble-bytes` contract).
//!
//! Runs as its own integration binary: the gauge and limit in
//! `chameleon_stats::alloc_guard` are process-global, so these tests
//! serialize on a local mutex and never share a process with the
//! unlimited-gauge unit tests.

use chameleon_reliability::{EnsembleStream, WorldEnsemble};
use chameleon_stats::alloc_guard;
use chameleon_ugraph::GraphBuilder;
use std::sync::Mutex;

static LIMIT_LOCK: Mutex<()> = Mutex::new(());

fn test_graph() -> chameleon_ugraph::UncertainGraph {
    let mut b = GraphBuilder::new(0);
    for i in 0..400u32 {
        b.add_edge(i, i + 1, 0.3 + f64::from(i % 5) / 10.0).unwrap();
    }
    b.build()
}

#[test]
fn tiny_ceiling_rejects_streamed_sampling_cleanly() {
    let _lock = LIMIT_LOCK.lock().unwrap();
    let g = test_graph();
    alloc_guard::set_ensemble_limit(1);
    let result = EnsembleStream::sample(&g, 256, 7, 1, 64);
    alloc_guard::set_ensemble_limit(0);
    let Err(err) = result else {
        panic!("1-byte ceiling must reject the store");
    };
    assert!(err.to_string().contains("strip-worlds"), "{err}");
    assert_eq!(err.limit, 1);
}

#[test]
fn generous_ceiling_admits_stream_and_peak_stays_under_it() {
    let _lock = LIMIT_LOCK.lock().unwrap();
    let g = test_graph();
    let n = 192;

    // Measure what the in-RAM ensemble costs, unlimited.
    alloc_guard::set_ensemble_limit(0);
    let in_ram_bytes = {
        let ens = WorldEnsemble::sample_seeded(&g, n, 7, 1);
        ens.tracked_bytes()
    };
    assert!(in_ram_bytes > 0);

    // A ceiling far below the full ensemble but enough for one strip:
    // the streamed path must fit, strip by strip.
    alloc_guard::reset_ensemble_peak();
    let strip_bytes = WorldEnsemble::estimate_arena_bytes(&g, 64);
    let limit = alloc_guard::ensemble_current_bytes() + strip_bytes * 3;
    assert!(
        limit < alloc_guard::ensemble_current_bytes() + in_ram_bytes,
        "ceiling must be tighter than the in-RAM footprint for this test to bite"
    );
    alloc_guard::set_ensemble_limit(limit);
    let stream = EnsembleStream::sample(&g, n, 7, 1, 64).expect("stream fits under ceiling");
    let ecp = stream.expected_connected_pairs().expect("strips fit");
    alloc_guard::set_ensemble_limit(0);
    let peak = alloc_guard::ensemble_peak_bytes();
    assert!(
        peak <= limit,
        "peak tracked bytes {peak} breached the ceiling {limit}"
    );

    // And the ceiling-constrained result is still the in-RAM result.
    let dense = WorldEnsemble::sample_seeded(&g, n, 7, 1);
    assert_eq!(ecp.to_bits(), dense.expected_connected_pairs().to_bits());
}

#[test]
fn strip_analysis_over_ceiling_fails_not_oom() {
    let _lock = LIMIT_LOCK.lock().unwrap();
    let g = test_graph();
    alloc_guard::set_ensemble_limit(0);
    let stream = EnsembleStream::sample(&g, 192, 7, 1, 192).expect("unlimited sample");
    // Now clamp below one 192-world strip (but above the compressed
    // store, which is already registered): analysis must fail fallibly.
    let limit =
        alloc_guard::ensemble_current_bytes() + WorldEnsemble::estimate_arena_bytes(&g, 192) / 2;
    alloc_guard::set_ensemble_limit(limit);
    let err = stream.for_each_strip(|_, _| {});
    alloc_guard::set_ensemble_limit(0);
    assert!(err.is_err(), "strip larger than ceiling must be rejected");
}
