//! Structural metrics of uncertain graphs (paper §VI-A).
//!
//! Except for the expected average degree (closed form), every metric is an
//! expectation over possible worlds, approximated by Monte-Carlo sampling
//! exactly as in the paper: "we create a number of random instances of an
//! uncertain graph, and we compute the expected value of each metric using
//! the average of the sampled graphs".
//!
//! * [`degree`] — average/maximum degree and degree distributions.
//! * [`distance`] — average distance & diameter via per-world BFS.
//! * [`anf`] — Flajolet–Martin Approximate Neighbourhood Function sketches.
//! * [`hyperanf`] — the HyperLogLog variant (the paper's citation [8] is
//!   HyperANF) with smaller memory per node.
//! * [`clustering`] — expected global clustering coefficient.
//! * [`distribution`] — distribution-level distances (total variation,
//!   earth mover's, Kolmogorov–Smirnov) between sampled degree laws.

pub mod anf;
pub mod clustering;
pub mod degree;
pub mod distance;
pub mod distribution;
pub mod hyperanf;

/// Relative error `|measured − reference| / reference` with the convention
/// that a zero reference yields 0 when both are zero and +∞ otherwise.
/// This is the "ratio of absolute difference against the original" the
/// paper reports for every metric (§VI-A).
pub fn relative_error(reference: f64, measured: f64) -> f64 {
    if reference == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured - reference).abs() / reference.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::relative_error;

    #[test]
    fn basic_ratio() {
        assert!((relative_error(10.0, 12.0) - 0.2).abs() < 1e-12);
        assert!((relative_error(10.0, 8.0) - 0.2).abs() < 1e-12);
        assert_eq!(relative_error(10.0, 10.0), 0.0);
    }

    #[test]
    fn zero_reference_conventions() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(0.0, 1.0), f64::INFINITY);
    }

    #[test]
    fn negative_reference_uses_magnitude() {
        assert!((relative_error(-4.0, -5.0) - 0.25).abs() < 1e-12);
    }
}
