//! Distribution-level comparison metrics.
//!
//! The paper's Fig. 9 reports the scalar average-degree error; reviewers
//! of anonymization systems usually also want *distributional* fidelity.
//! This module provides the standard distances between degree (or any
//! integer-valued) distributions — total variation / L1, earth mover's
//! (1-Wasserstein), and Kolmogorov–Smirnov — plus helpers to extract
//! sampled degree distributions from world ensembles.

use crate::ensemble::WorldEnsemble;
use chameleon_stats::histogram::IntHistogram;
use chameleon_ugraph::{UncertainGraph, WorldView};

/// Builds the pooled sampled-degree histogram of a graph over an ensemble
/// (each node of each world contributes one observation).
pub fn sampled_degree_distribution(
    graph: &UncertainGraph,
    ensemble: &WorldEnsemble,
) -> IntHistogram {
    let mut h = IntHistogram::new();
    for w in 0..ensemble.len() {
        let view = WorldView::new(graph, ensemble.world(w));
        for v in 0..graph.num_nodes() as u32 {
            h.push(view.degree(v) as u64);
        }
    }
    h
}

/// Normalizes an integer histogram into a dense probability vector over
/// `0..=max` (max taken across both inputs by the distance functions).
fn dense_pmf(h: &IntHistogram, max: u64) -> Vec<f64> {
    let total = h.total().max(1) as f64;
    (0..=max).map(|v| h.count(v) as f64 / total).collect()
}

/// Total-variation distance `½·Σ|p_i − q_i|` between two integer
/// histograms (0 = identical, 1 = disjoint).
pub fn total_variation(a: &IntHistogram, b: &IntHistogram) -> f64 {
    let max = a.max_value().unwrap_or(0).max(b.max_value().unwrap_or(0));
    let (pa, pb) = (dense_pmf(a, max), dense_pmf(b, max));
    0.5 * pa.iter().zip(&pb).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

/// Earth mover's distance (1-Wasserstein) between two integer histograms,
/// in units of the integer support: `Σ_i |CDF_a(i) − CDF_b(i)|`.
pub fn earth_movers(a: &IntHistogram, b: &IntHistogram) -> f64 {
    let max = a.max_value().unwrap_or(0).max(b.max_value().unwrap_or(0));
    let (pa, pb) = (dense_pmf(a, max), dense_pmf(b, max));
    let mut cum = 0.0;
    let mut dist = 0.0;
    for (x, y) in pa.iter().zip(&pb) {
        cum += x - y;
        dist += cum.abs();
    }
    dist
}

/// Kolmogorov–Smirnov statistic `max_i |CDF_a(i) − CDF_b(i)|`.
pub fn kolmogorov_smirnov(a: &IntHistogram, b: &IntHistogram) -> f64 {
    let max = a.max_value().unwrap_or(0).max(b.max_value().unwrap_or(0));
    let (pa, pb) = (dense_pmf(a, max), dense_pmf(b, max));
    let mut cum = 0.0;
    let mut worst: f64 = 0.0;
    for (x, y) in pa.iter().zip(&pb) {
        cum += x - y;
        worst = worst.max(cum.abs());
    }
    worst
}

/// All three distances between the sampled degree distributions of two
/// graphs under their ensembles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeDistributionDistances {
    /// Total variation in `[0, 1]`.
    pub total_variation: f64,
    /// Earth mover's distance in degree units.
    pub earth_movers: f64,
    /// Kolmogorov–Smirnov statistic in `[0, 1]`.
    pub kolmogorov_smirnov: f64,
}

/// Convenience: compare two graphs' sampled degree distributions.
pub fn degree_distribution_distances(
    a: &UncertainGraph,
    ens_a: &WorldEnsemble,
    b: &UncertainGraph,
    ens_b: &WorldEnsemble,
) -> DegreeDistributionDistances {
    let ha = sampled_degree_distribution(a, ens_a);
    let hb = sampled_degree_distribution(b, ens_b);
    DegreeDistributionDistances {
        total_variation: total_variation(&ha, &hb),
        earth_movers: earth_movers(&ha, &hb),
        kolmogorov_smirnov: kolmogorov_smirnov(&ha, &hb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hist(values: &[u64]) -> IntHistogram {
        let mut h = IntHistogram::new();
        for &v in values {
            h.push(v);
        }
        h
    }

    #[test]
    fn identical_histograms_have_zero_distance() {
        let a = hist(&[1, 2, 2, 3]);
        let b = hist(&[1, 2, 2, 3]);
        assert_eq!(total_variation(&a, &b), 0.0);
        assert_eq!(earth_movers(&a, &b), 0.0);
        assert_eq!(kolmogorov_smirnov(&a, &b), 0.0);
    }

    #[test]
    fn disjoint_histograms_max_tv() {
        let a = hist(&[0, 0, 0]);
        let b = hist(&[5, 5, 5]);
        assert!((total_variation(&a, &b) - 1.0).abs() < 1e-12);
        assert!((kolmogorov_smirnov(&a, &b) - 1.0).abs() < 1e-12);
        // EMD = shift of 5 units.
        assert!((earth_movers(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn emd_is_mean_shift_for_point_masses() {
        let a = hist(&[2]);
        let b = hist(&[7]);
        assert!((earth_movers(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn tv_known_value() {
        // p = (.5, .5), q = (.75, .25) → TV = .25
        let a = hist(&[0, 1]);
        let b = hist(&[0, 0, 0, 1]);
        assert!((total_variation(&a, &b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn distances_symmetric() {
        let a = hist(&[0, 1, 1, 4]);
        let b = hist(&[2, 2, 3]);
        assert!((total_variation(&a, &b) - total_variation(&b, &a)).abs() < 1e-12);
        assert!((earth_movers(&a, &b) - earth_movers(&b, &a)).abs() < 1e-12);
        assert!((kolmogorov_smirnov(&a, &b) - kolmogorov_smirnov(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn ks_bounded_by_tv_times_two_relation() {
        // KS ≤ 2·TV always (KS ≤ TV·... actually KS ≤ TV is false in
        // general for CDF-vs-pmf distances; but KS ≤ 2·TV holds since each
        // CDF gap is a sum of pmf gaps). Sanity check on random data.
        let a = hist(&[0, 1, 2, 3, 3, 3, 9]);
        let b = hist(&[1, 1, 2, 5, 8]);
        assert!(kolmogorov_smirnov(&a, &b) <= 2.0 * total_variation(&a, &b) + 1e-12);
    }

    #[test]
    fn graph_level_distances_detect_perturbation() {
        let mut g = UncertainGraph::with_nodes(30);
        for v in 0..29u32 {
            g.add_edge(v, v + 1, 0.8).unwrap();
        }
        let mut h = g.clone();
        for e in 0..h.num_edges() as u32 {
            h.set_prob(e, 0.2).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(0);
        let ea = WorldEnsemble::sample(&g, 200, &mut rng);
        let eb = WorldEnsemble::sample(&h, 200, &mut rng);
        let same = degree_distribution_distances(&g, &ea, &g, &ea);
        let diff = degree_distribution_distances(&g, &ea, &h, &eb);
        assert_eq!(same.total_variation, 0.0);
        assert!(diff.total_variation > 0.2, "tv={}", diff.total_variation);
        assert!(diff.earth_movers > 0.5);
        assert!(diff.kolmogorov_smirnov > 0.2);
    }

    #[test]
    fn empty_histograms() {
        let a = IntHistogram::new();
        let b = IntHistogram::new();
        assert_eq!(total_variation(&a, &b), 0.0);
        assert_eq!(earth_movers(&a, &b), 0.0);
    }
}
