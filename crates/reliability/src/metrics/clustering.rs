//! Clustering-coefficient metrics (paper Fig. 11 and the third metric
//! group of §VI-A): the expected global clustering coefficient over
//! possible worlds.

use crate::ensemble::WorldEnsemble;
use chameleon_stats::Summary;
use chameleon_ugraph::traversal::{global_clustering_coefficient, triangles_and_wedges};
use chameleon_ugraph::{UncertainGraph, WorldView};

/// Expected clustering statistics over an ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpectedClustering {
    /// Mean over worlds of the per-world global clustering coefficient
    /// `3·triangles / wedges`.
    pub clustering_coefficient: f64,
    /// Mean triangles per world.
    pub avg_triangles: f64,
    /// Mean wedges (connected triples) per world.
    pub avg_wedges: f64,
    /// Number of worlds evaluated.
    pub worlds: usize,
}

/// Estimates the expected global clustering coefficient by averaging the
/// per-world coefficient (the paper's Monte-Carlo recipe).
pub fn expected_clustering(graph: &UncertainGraph, ensemble: &WorldEnsemble) -> ExpectedClustering {
    let mut cc = Summary::new();
    let mut tri = Summary::new();
    let mut wed = Summary::new();
    for w in 0..ensemble.len() {
        let view = WorldView::new(graph, ensemble.world(w));
        let (t, wd) = triangles_and_wedges(&view);
        tri.push(t as f64);
        wed.push(wd as f64);
        cc.push(if wd == 0 {
            0.0
        } else {
            3.0 * t as f64 / wd as f64
        });
    }
    ExpectedClustering {
        clustering_coefficient: cc.mean(),
        avg_triangles: tri.mean(),
        avg_wedges: wed.mean(),
        worlds: ensemble.len(),
    }
}

/// Exact expected triangle count: `Σ_{triangles (a,b,c)} p(ab)·p(bc)·p(ca)`
/// by linearity of expectation — a cheap closed-form cross-check for the
/// sampled estimate (enumerates structural triangles of the uncertain
/// graph).
pub fn exact_expected_triangles(graph: &UncertainGraph) -> f64 {
    // Build full world view to enumerate structural triangles.
    let mut total = 0.0;
    let n = graph.num_nodes();
    // Sorted neighbor lists with probabilities.
    let mut nbrs: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
    for v in 0..n as u32 {
        let mut l: Vec<(u32, f64)> = graph
            .neighbors(v)
            .iter()
            .map(|&(u, e)| (u, graph.prob(e)))
            .collect();
        l.sort_unstable_by_key(|&(u, _)| u);
        nbrs.push(l);
    }
    for u in 0..n as u32 {
        for &(v, p_uv) in nbrs[u as usize].iter().filter(|&&(v, _)| v > u) {
            // Intersect neighbor lists of u and v for w > v.
            let (lu, lv) = (&nbrs[u as usize], &nbrs[v as usize]);
            let (mut i, mut j) = (0usize, 0usize);
            while i < lu.len() && j < lv.len() {
                match lu[i].0.cmp(&lv[j].0) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = lu[i].0;
                        if w > v {
                            total += p_uv * lu[i].1 * lv[j].1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    total
}

/// Global clustering coefficient of a single deterministic world view
/// (re-exported convenience).
pub fn world_clustering(view: &WorldView<'_>) -> f64 {
    global_clustering_coefficient(view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn triangle(p: f64) -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, p).unwrap();
        g.add_edge(1, 2, p).unwrap();
        g.add_edge(0, 2, p).unwrap();
        g
    }

    #[test]
    fn deterministic_triangle_coefficient_is_one() {
        let g = triangle(1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let ens = WorldEnsemble::sample(&g, 20, &mut rng);
        let c = expected_clustering(&g, &ens);
        assert_eq!(c.clustering_coefficient, 1.0);
        assert_eq!(c.avg_triangles, 1.0);
        assert_eq!(c.avg_wedges, 3.0);
        assert_eq!(c.worlds, 20);
    }

    #[test]
    fn exact_expected_triangles_closed_form() {
        let g = triangle(0.5);
        assert!((exact_expected_triangles(&g) - 0.125).abs() < 1e-12);
        let g2 = triangle(1.0);
        assert!((exact_expected_triangles(&g2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_triangles_converge_to_exact() {
        let g = triangle(0.6);
        let mut rng = StdRng::seed_from_u64(1);
        let ens = WorldEnsemble::sample(&g, 6000, &mut rng);
        let c = expected_clustering(&g, &ens);
        let exact = exact_expected_triangles(&g);
        assert!(
            (c.avg_triangles - exact).abs() < 0.03,
            "sampled={}, exact={exact}",
            c.avg_triangles
        );
    }

    #[test]
    fn path_has_zero_clustering() {
        let mut g = UncertainGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let ens = WorldEnsemble::sample(&g, 10, &mut rng);
        let c = expected_clustering(&g, &ens);
        assert_eq!(c.clustering_coefficient, 0.0);
        assert_eq!(exact_expected_triangles(&g), 0.0);
    }

    #[test]
    fn larger_graph_exact_matches_enumeration() {
        // Two triangles sharing edge 1-2 with heterogeneous probabilities.
        let mut g = UncertainGraph::with_nodes(4);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(1, 2, 0.8).unwrap();
        g.add_edge(0, 2, 0.25).unwrap();
        g.add_edge(1, 3, 0.4).unwrap();
        g.add_edge(2, 3, 0.9).unwrap();
        // triangles: (0,1,2): .5*.8*.25 = .1 ; (1,2,3): .8*.4*.9 = .288
        assert!((exact_expected_triangles(&g) - 0.388).abs() < 1e-12);
    }

    #[test]
    fn empty_ensemble_is_degenerate() {
        let g = triangle(0.5);
        let ens = WorldEnsemble::from_worlds(&g, vec![]);
        let c = expected_clustering(&g, &ens);
        assert_eq!(c.clustering_coefficient, 0.0);
        assert_eq!(c.worlds, 0);
    }
}
