//! HyperANF: the HyperLogLog-counter variant of the Approximate
//! Neighbourhood Function (Boldi, Rosa, Vigna — the paper's ref [8]).
//!
//! Each node carries one HyperLogLog counter; a hop of neighbourhood
//! growth is a register-wise `max` over neighbors. Compared to the
//! Flajolet–Martin bitstrings of [`crate::metrics::anf`], HLL counters
//! give the same per-hop semantics with ~1.04/√m relative error at m
//! registers and much smaller memory (6 bits/register conceptually; we
//! store u8 for simplicity).

use chameleon_ugraph::WorldView;
use rand::Rng;

/// A HyperLogLog counter with `2^b` registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HllCounter {
    registers: Vec<u8>,
}

impl HllCounter {
    /// Creates an empty counter with `2^b` registers (4 ≤ b ≤ 12).
    ///
    /// # Panics
    /// Panics if `b` is outside `[4, 12]`.
    pub fn new(b: u32) -> Self {
        assert!((4..=12).contains(&b), "register exponent out of range: {b}");
        Self {
            registers: vec![0; 1 << b],
        }
    }

    /// Inserts a 64-bit hashed item.
    pub fn insert_hash(&mut self, hash: u64) {
        let b = self.registers.len().trailing_zeros();
        let idx = (hash >> (64 - b)) as usize;
        let rest = hash << b;
        // Rank: position of the leftmost 1 in the remaining bits (1-based),
        // capped by the available width.
        let rank = (rest.leading_zeros() + 1).min(64 - b) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Register-wise max with another counter (set union).
    pub fn merge_max(&mut self, other: &HllCounter) {
        debug_assert_eq!(self.registers.len(), other.registers.len());
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// HyperLogLog cardinality estimate with the standard small-range
    /// (linear counting) correction.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }
}

/// Runs HyperANF on one world: returns the per-hop neighbourhood function
/// (same semantics as [`crate::metrics::anf::anf`]). `b` sets the
/// register count (2^b per node).
pub fn hyperanf<R: Rng + ?Sized>(
    view: &WorldView<'_>,
    b: u32,
    max_hops: usize,
    rng: &mut R,
) -> crate::metrics::anf::NeighbourhoodFunction {
    let n = view.num_nodes();
    let mut cur: Vec<HllCounter> = (0..n)
        .map(|_| {
            let mut c = HllCounter::new(b);
            c.insert_hash(rng.gen::<u64>());
            c
        })
        .collect();
    let total = |cs: &[HllCounter]| -> f64 { cs.iter().map(|c| c.estimate()).sum() };
    let mut nf = Vec::with_capacity(max_hops + 1);
    nf.push(total(&cur));
    let mut next = cur.clone();
    for _ in 0..max_hops {
        let mut changed = false;
        for (v, slot) in next.iter_mut().enumerate() {
            slot.clone_from(&cur[v]);
            for u in view.neighbors(v as u32) {
                slot.merge_max(&cur[u as usize]);
            }
            if !changed && *slot != cur[v] {
                changed = true;
            }
        }
        std::mem::swap(&mut cur, &mut next);
        nf.push(total(&cur));
        if !changed {
            break;
        }
    }
    crate::metrics::anf::NeighbourhoodFunction { nf }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_ugraph::{UncertainGraph, World, WorldView};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn hll_counts_distinct_hashes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = HllCounter::new(10);
        let n = 5000;
        for _ in 0..n {
            c.insert_hash(rng.gen());
        }
        let est = c.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.1, "est={est}, rel={rel}");
    }

    #[test]
    fn hll_small_range_exactish() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = HllCounter::new(10);
        for _ in 0..10 {
            c.insert_hash(rng.gen());
        }
        let est = c.estimate();
        assert!((est - 10.0).abs() < 3.0, "est={est}");
    }

    #[test]
    fn hll_merge_is_union() {
        let mut rng = StdRng::seed_from_u64(2);
        let hashes: Vec<u64> = (0..2000).map(|_| rng.gen()).collect();
        let mut a = HllCounter::new(9);
        let mut b = HllCounter::new(9);
        for &h in &hashes[..1000] {
            a.insert_hash(h);
        }
        for &h in &hashes[500..] {
            b.insert_hash(h);
        }
        a.merge_max(&b);
        let est = a.estimate();
        let rel = (est - 2000.0).abs() / 2000.0;
        assert!(rel < 0.12, "est={est}");
    }

    #[test]
    fn hll_idempotent_inserts() {
        let mut c = HllCounter::new(8);
        for _ in 0..1000 {
            c.insert_hash(0xDEADBEEF);
        }
        assert!(c.estimate() < 5.0);
    }

    #[test]
    fn hyperanf_matches_fm_anf_on_path() {
        let n = 64usize;
        let mut g = UncertainGraph::with_nodes(n);
        for v in 0..(n - 1) as u32 {
            g.add_edge(v, v + 1, 1.0).unwrap();
        }
        let mut w = World::empty(g.num_edges());
        for e in 0..g.num_edges() as u32 {
            w.set(e, true);
        }
        let view = WorldView::new(&g, &w);
        let mut rng = StdRng::seed_from_u64(3);
        let hll = hyperanf(&view, 8, n, &mut rng);
        let fm = crate::metrics::anf::anf(&view, 64, n, &mut rng);
        let (mh, mf) = (hll.mean_distance(), fm.mean_distance());
        assert!((mh - mf).abs() / mf < 0.35, "hyperanf {mh} vs fm-anf {mf}");
        // Terminal neighbourhood ≈ n² ordered pairs.
        let last = *hll.nf.last().unwrap();
        let expect = (n * n) as f64;
        assert!((last - expect).abs() / expect < 0.25, "last={last}");
    }

    #[test]
    fn hyperanf_monotone() {
        let mut g = UncertainGraph::with_nodes(30);
        for v in 0..29u32 {
            g.add_edge(v, v + 1, 1.0).unwrap();
        }
        let mut w = World::empty(g.num_edges());
        for e in 0..g.num_edges() as u32 {
            w.set(e, true);
        }
        let view = WorldView::new(&g, &w);
        let mut rng = StdRng::seed_from_u64(4);
        let f = hyperanf(&view, 6, 40, &mut rng);
        for win in f.nf.windows(2) {
            assert!(win[1] >= win[0] - 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_bad_register_exponent() {
        let _ = HllCounter::new(2);
    }
}
