//! Degree-based metrics (paper Fig. 9 and the first metric group of §VI-A):
//! average node degree, maximal degree, and degree distributions.

use crate::ensemble::WorldEnsemble;
use chameleon_stats::histogram::IntHistogram;
use chameleon_stats::Summary;
use chameleon_ugraph::{UncertainGraph, WorldView};

/// Expected average degree — closed form `2·Σp(e)/|V|` (the paper notes
/// this is the only metric with a closed formula).
pub fn expected_average_degree(graph: &UncertainGraph) -> f64 {
    graph.expected_average_degree()
}

/// Monte-Carlo estimate of the expected *maximum* degree over worlds.
pub fn expected_max_degree(graph: &UncertainGraph, ensemble: &WorldEnsemble) -> f64 {
    let mut s = Summary::new();
    for w in 0..ensemble.len() {
        let view = WorldView::new(graph, ensemble.world(w));
        let max = (0..graph.num_nodes() as u32)
            .map(|v| view.degree(v))
            .max()
            .unwrap_or(0);
        s.push(max as f64);
    }
    s.mean()
}

/// Monte-Carlo estimate of the full expected degree distribution: the mean
/// count of nodes with each integer degree, as an [`IntHistogram`] of
/// degrees pooled across worlds (divide counts by `ensemble.len()` for
/// per-world averages).
pub fn pooled_degree_histogram(graph: &UncertainGraph, ensemble: &WorldEnsemble) -> IntHistogram {
    let mut h = IntHistogram::new();
    for w in 0..ensemble.len() {
        let view = WorldView::new(graph, ensemble.world(w));
        for v in 0..graph.num_nodes() as u32 {
            h.push(view.degree(v) as u64);
        }
    }
    h
}

/// Average sampled degree (should converge to
/// [`expected_average_degree`]; useful as an estimator sanity check and for
/// graphs given only as ensembles).
pub fn sampled_average_degree(graph: &UncertainGraph, ensemble: &WorldEnsemble) -> f64 {
    if graph.num_nodes() == 0 {
        return 0.0;
    }
    let mut s = Summary::new();
    for w in 0..ensemble.len() {
        s.push(2.0 * ensemble.world(w).num_present() as f64 / graph.num_nodes() as f64);
    }
    s.mean()
}

/// L1 distance between the *expected-degree* histograms of two graphs with
/// common node count, normalized by node count. A coarse "degree
/// distribution error" companion to the paper's average-degree plot.
pub fn expected_degree_l1(a: &UncertainGraph, b: &UncertainGraph) -> f64 {
    assert_eq!(a.num_nodes(), b.num_nodes(), "node sets must match");
    if a.num_nodes() == 0 {
        return 0.0;
    }
    let mut ha = IntHistogram::new();
    let mut hb = IntHistogram::new();
    for v in 0..a.num_nodes() as u32 {
        ha.push(a.expected_degree(v).round() as u64);
        hb.push(b.expected_degree(v).round() as u64);
    }
    let max = ha.max_value().unwrap_or(0).max(hb.max_value().unwrap_or(0));
    let mut l1 = 0.0;
    for d in 0..=max {
        l1 += (ha.count(d) as f64 - hb.count(d) as f64).abs();
    }
    l1 / a.num_nodes() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(p: f64) -> UncertainGraph {
        // Center 0 with 4 leaves.
        let mut g = UncertainGraph::with_nodes(5);
        for v in 1..5u32 {
            g.add_edge(0, v, p).unwrap();
        }
        g
    }

    #[test]
    fn closed_form_average_degree() {
        let g = star(0.5);
        // 2 * 2.0 / 5
        assert!((expected_average_degree(&g) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn sampled_average_degree_converges() {
        let g = star(0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let ens = WorldEnsemble::sample(&g, 4000, &mut rng);
        let sampled = sampled_average_degree(&g, &ens);
        assert!(
            (sampled - expected_average_degree(&g)).abs() < 0.05,
            "sampled={sampled}"
        );
    }

    #[test]
    fn max_degree_deterministic() {
        let g = star(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let ens = WorldEnsemble::sample(&g, 20, &mut rng);
        assert_eq!(expected_max_degree(&g, &ens), 4.0);
    }

    #[test]
    fn max_degree_binomial_center() {
        let g = star(0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let ens = WorldEnsemble::sample(&g, 3000, &mut rng);
        // Max degree is the center's Binomial(4, .5) unless it's 0 and some
        // leaf pairing exists — leaves only touch the center, so max degree
        // = center degree except all-absent world (max 0). E[max] =
        // E[Bin(4,.5)] = 2 exactly (all-absent world has degree 0 which IS
        // the binomial value 0).
        let m = expected_max_degree(&g, &ens);
        assert!((m - 2.0).abs() < 0.1, "m={m}");
    }

    #[test]
    fn pooled_histogram_counts() {
        let g = star(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let ens = WorldEnsemble::sample(&g, 10, &mut rng);
        let h = pooled_degree_histogram(&g, &ens);
        // 10 worlds × (1 node of degree 4 + 4 nodes of degree 1)
        assert_eq!(h.count(4), 10);
        assert_eq!(h.count(1), 40);
        assert_eq!(h.total(), 50);
    }

    #[test]
    fn degree_l1_zero_for_identical() {
        let g = star(0.5);
        assert_eq!(expected_degree_l1(&g, &g.clone()), 0.0);
    }

    #[test]
    fn degree_l1_detects_shift() {
        let a = star(0.0);
        let b = star(1.0);
        // expected degrees a: all 0; b: center 4, leaves 1.
        // histograms: a = {0:5}, b = {4:1, 1:4} → L1 = 5 + 4 + 1 = 10 → /5 = 2.
        assert!((expected_degree_l1(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn degree_l1_requires_same_nodes() {
        let a = star(0.5);
        let b = UncertainGraph::with_nodes(3);
        let _ = expected_degree_l1(&a, &b);
    }

    #[test]
    fn empty_graph_degenerates() {
        let g = UncertainGraph::with_nodes(0);
        let ens = WorldEnsemble::from_worlds(&g, vec![]);
        assert_eq!(sampled_average_degree(&g, &ens), 0.0);
        assert_eq!(expected_degree_l1(&g, &UncertainGraph::with_nodes(0)), 0.0);
    }
}
