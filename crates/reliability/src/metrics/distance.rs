//! Node-separation metrics (paper Fig. 10 and the second metric group of
//! §VI-A): average distance and graph diameter, as expectations over
//! possible worlds of per-world BFS statistics.

use crate::ensemble::WorldEnsemble;
use chameleon_stats::Summary;
use chameleon_ugraph::traversal::distance_stats;
use chameleon_ugraph::{NodeId, UncertainGraph, WorldView};
use rand::seq::SliceRandom;
use rand::Rng;

/// Expected distance statistics over an ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpectedDistances {
    /// Mean over worlds of the per-world average finite distance.
    pub avg_distance: f64,
    /// Mean over worlds of the per-world maximum observed distance (a
    /// BFS-source-limited diameter estimate; exact per world when all nodes
    /// are sources).
    pub diameter: f64,
    /// Mean number of reachable (ordered) pairs per world observed from the
    /// BFS sources.
    pub avg_reachable_pairs: f64,
    /// Number of worlds evaluated.
    pub worlds: usize,
    /// Number of BFS sources per world.
    pub sources: usize,
}

/// Estimates expected average distance / diameter via BFS from
/// `num_sources` nodes (sampled once, shared across worlds) in each of the
/// ensemble's worlds. With `num_sources >= |V|`, per-world statistics are
/// exact.
pub fn expected_distances<R: Rng + ?Sized>(
    graph: &UncertainGraph,
    ensemble: &WorldEnsemble,
    num_sources: usize,
    rng: &mut R,
) -> ExpectedDistances {
    let n = graph.num_nodes();
    let mut sources: Vec<NodeId> = (0..n as u32).collect();
    if num_sources < n {
        sources.shuffle(rng);
        sources.truncate(num_sources);
    }
    let mut avg = Summary::new();
    let mut diam = Summary::new();
    let mut reach = Summary::new();
    for w in 0..ensemble.len() {
        let view = WorldView::new(graph, ensemble.world(w));
        let stats = distance_stats(&view, &sources);
        if stats.reachable_pairs > 0 {
            avg.push(stats.mean_distance);
            diam.push(stats.max_distance as f64);
        }
        reach.push(stats.reachable_pairs as f64);
    }
    ExpectedDistances {
        avg_distance: avg.mean(),
        diameter: diam.mean(),
        avg_reachable_pairs: reach.mean(),
        worlds: ensemble.len(),
        sources: sources.len(),
    }
}

/// ANF-sketch variant of [`expected_distances`] for worlds too large for
/// exact BFS (the paper's approach: "we use Approximate Neighborhood
/// Function (ANF) to approximate shortest path-based statistics").
/// `k_sketches` trades accuracy for time (error ∝ 1/√k).
pub fn expected_distances_anf<R: Rng + ?Sized>(
    graph: &UncertainGraph,
    ensemble: &WorldEnsemble,
    k_sketches: usize,
    rng: &mut R,
) -> ExpectedDistances {
    let mut avg = Summary::new();
    let mut diam = Summary::new();
    for w in 0..ensemble.len() {
        let view = WorldView::new(graph, ensemble.world(w));
        let nf = crate::metrics::anf::anf(&view, k_sketches, graph.num_nodes().max(4), rng);
        let mean = nf.mean_distance();
        if mean > 0.0 {
            avg.push(mean);
            diam.push(nf.effective_diameter(0.99) as f64);
        }
    }
    ExpectedDistances {
        avg_distance: avg.mean(),
        diameter: diam.mean(),
        avg_reachable_pairs: 0.0, // not tracked by the sketch variant
        worlds: ensemble.len(),
        sources: graph.num_nodes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn anf_variant_tracks_exact_on_dense_graph() {
        // Dense deterministic-ish graph: ANF estimate within sketch
        // tolerance of the exact all-sources BFS estimate.
        let mut rng = StdRng::seed_from_u64(31);
        let mut g = chameleon_ugraph::generators::barabasi_albert(120, 3, &mut rng);
        for e in 0..g.num_edges() as u32 {
            g.set_prob(e, 0.9).unwrap();
        }
        let ens = WorldEnsemble::sample(&g, 8, &mut rng);
        let exact = expected_distances(&g, &ens, g.num_nodes(), &mut rng);
        let sketch = expected_distances_anf(&g, &ens, 64, &mut rng);
        let rel = (exact.avg_distance - sketch.avg_distance).abs() / exact.avg_distance;
        assert!(
            rel < 0.3,
            "sketch {} vs exact {} (rel {rel})",
            sketch.avg_distance,
            exact.avg_distance
        );
    }

    fn path(n: usize, p: f64) -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(n);
        for v in 0..(n - 1) as u32 {
            g.add_edge(v, v + 1, p).unwrap();
        }
        g
    }

    #[test]
    fn deterministic_path_exact() {
        let g = path(4, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let ens = WorldEnsemble::sample(&g, 5, &mut rng);
        let d = expected_distances(&g, &ens, 10, &mut rng);
        assert!((d.avg_distance - 20.0 / 12.0).abs() < 1e-12);
        assert!((d.diameter - 3.0).abs() < 1e-12);
        assert_eq!(d.sources, 4);
        assert_eq!(d.worlds, 5);
        assert!((d.avg_reachable_pairs - 12.0).abs() < 1e-12);
    }

    #[test]
    fn lower_probability_shrinks_reachability() {
        let g_hi = path(8, 0.9);
        let g_lo = path(8, 0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let e_hi = WorldEnsemble::sample(&g_hi, 300, &mut rng);
        let e_lo = WorldEnsemble::sample(&g_lo, 300, &mut rng);
        let d_hi = expected_distances(&g_hi, &e_hi, 8, &mut rng);
        let d_lo = expected_distances(&g_lo, &e_lo, 8, &mut rng);
        assert!(d_hi.avg_reachable_pairs > d_lo.avg_reachable_pairs);
        assert!(d_hi.diameter > d_lo.diameter);
    }

    #[test]
    fn source_subsampling_runs() {
        let g = path(20, 0.8);
        let mut rng = StdRng::seed_from_u64(2);
        let ens = WorldEnsemble::sample(&g, 50, &mut rng);
        let d = expected_distances(&g, &ens, 5, &mut rng);
        assert_eq!(d.sources, 5);
        assert!(d.avg_distance > 0.0);
    }

    #[test]
    fn empty_worlds_yield_zero() {
        let g = path(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let ens = WorldEnsemble::sample(&g, 10, &mut rng);
        let d = expected_distances(&g, &ens, 4, &mut rng);
        assert_eq!(d.avg_distance, 0.0);
        assert_eq!(d.diameter, 0.0);
        assert_eq!(d.avg_reachable_pairs, 0.0);
    }

    #[test]
    fn distance_estimate_is_reproducible() {
        let g = path(10, 0.6);
        let build = || {
            let mut rng = StdRng::seed_from_u64(4);
            let ens = WorldEnsemble::sample(&g, 100, &mut rng);
            expected_distances(&g, &ens, 6, &mut rng)
        };
        assert_eq!(build(), build());
    }
}
