//! Approximate Neighbourhood Function (ANF) sketches.
//!
//! The paper approximates shortest-path statistics with ANF/HyperANF
//! (citation [8]) because exact all-pairs BFS on every sampled world is
//! prohibitive at DBLP scale. We implement the classic Flajolet–Martin
//! bitstring variant of Palmer–Gibbons–Faloutsos: each node carries `k`
//! FM sketches; one synchronous round of bitwise-OR over the edges
//! corresponds to one hop of neighbourhood growth, and the number of set
//! leading bits estimates the neighbourhood size.

use chameleon_ugraph::WorldView;
use rand::Rng;

/// φ constant of the Flajolet–Martin estimator (`2^R / φ` corrects the
/// expected position of the lowest unset bit).
const FM_PHI: f64 = 0.77351;

/// Per-hop neighbourhood function estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighbourhoodFunction {
    /// `nf[h]` ≈ number of ordered pairs (u, w) with `dist(u, w) ≤ h`
    /// (including u itself, as in the original ANF definition).
    pub nf: Vec<f64>,
}

impl NeighbourhoodFunction {
    /// Estimated mean finite distance: `Σ_h h·(N(h) − N(h−1)) / (N(H) − N(0))`,
    /// i.e. the average hop count over pairs that ever become reachable.
    /// Returns 0 when nothing beyond self-reachability is observed.
    pub fn mean_distance(&self) -> f64 {
        if self.nf.len() < 2 {
            return 0.0;
        }
        let reachable = self.nf[self.nf.len() - 1] - self.nf[0];
        if reachable <= 0.0 {
            return 0.0;
        }
        let mut weighted = 0.0;
        for h in 1..self.nf.len() {
            let added = (self.nf[h] - self.nf[h - 1]).max(0.0);
            weighted += h as f64 * added;
        }
        weighted / reachable
    }

    /// Effective diameter at quantile `q` (e.g. 0.9): the smallest `h` such
    /// that `N(h) ≥ N(0) + q·(N(max) − N(0))`.
    pub fn effective_diameter(&self, q: f64) -> usize {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.nf.len() < 2 {
            return 0;
        }
        let base = self.nf[0];
        let span = self.nf[self.nf.len() - 1] - base;
        if span <= 0.0 {
            return 0;
        }
        let target = base + q * span;
        for (h, &v) in self.nf.iter().enumerate() {
            if v >= target {
                return h;
            }
        }
        self.nf.len() - 1
    }
}

/// Draws an FM sketch bit position: geometric with `P[pos = i] = 2^-(i+1)`,
/// clamped to the sketch width.
fn fm_bit<R: Rng + ?Sized>(rng: &mut R, width: u32) -> u32 {
    let mut pos = 0;
    while pos + 1 < width && rng.gen::<bool>() {
        pos += 1;
    }
    pos
}

/// Estimated cardinality of a single FM sketch set (union of `k` sketches
/// averaged via the lowest-zero-bit statistic).
fn fm_estimate(sketches: &[u64]) -> f64 {
    let mean_lowest_zero: f64 = sketches
        .iter()
        .map(|&s| (!s).trailing_zeros() as f64)
        .sum::<f64>()
        / sketches.len() as f64;
    2f64.powf(mean_lowest_zero) / FM_PHI
}

/// Runs ANF on one world: returns the neighbourhood function up to
/// `max_hops` (stops early when no sketch changes, i.e. all neighbourhoods
/// converged). `k` is the number of independent sketches per node (paper-
/// typical values 32–64 give ~10% relative error; error ∝ 1/√k).
pub fn anf<R: Rng + ?Sized>(
    view: &WorldView<'_>,
    k: usize,
    max_hops: usize,
    rng: &mut R,
) -> NeighbourhoodFunction {
    assert!(k > 0, "need at least one sketch");
    let n = view.num_nodes();
    let width = 64u32;
    // sketches[v][j] — j-th FM bitmask of node v.
    let mut cur: Vec<Vec<u64>> = (0..n)
        .map(|_| {
            (0..k)
                .map(|_| 1u64 << fm_bit(rng, width))
                .collect::<Vec<u64>>()
        })
        .collect();
    let mut nf = Vec::with_capacity(max_hops + 1);
    let total_at = |sk: &Vec<Vec<u64>>| -> f64 { sk.iter().map(|s| fm_estimate(s)).sum() };
    nf.push(total_at(&cur));
    let mut next = cur.clone();
    for _ in 0..max_hops {
        let mut changed = false;
        for (v, slot) in next.iter_mut().enumerate() {
            slot.clone_from(&cur[v]);
            for u in view.neighbors(v as u32) {
                for j in 0..k {
                    slot[j] |= cur[u as usize][j];
                }
            }
            if !changed && *slot != cur[v] {
                changed = true;
            }
        }
        std::mem::swap(&mut cur, &mut next);
        nf.push(total_at(&cur));
        if !changed {
            break;
        }
    }
    NeighbourhoodFunction { nf }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_ugraph::{UncertainGraph, World, WorldView};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn full_world(g: &UncertainGraph) -> World {
        let mut w = World::empty(g.num_edges());
        for e in 0..g.num_edges() as u32 {
            w.set(e, true);
        }
        w
    }

    fn path(n: usize) -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(n);
        for v in 0..(n - 1) as u32 {
            g.add_edge(v, v + 1, 1.0).unwrap();
        }
        g
    }

    #[test]
    fn nf_monotone_nondecreasing() {
        let g = path(20);
        let w = full_world(&g);
        let view = WorldView::new(&g, &w);
        let mut rng = StdRng::seed_from_u64(0);
        let f = anf(&view, 32, 30, &mut rng);
        for win in f.nf.windows(2) {
            assert!(win[1] >= win[0] - 1e-9);
        }
    }

    #[test]
    fn nf_terminal_value_approximates_reachable_pairs() {
        // Connected graph on n nodes: N(∞) ≈ n² ordered pairs (with self).
        let n = 64;
        let g = path(n);
        let w = full_world(&g);
        let view = WorldView::new(&g, &w);
        let mut rng = StdRng::seed_from_u64(1);
        let f = anf(&view, 64, n, &mut rng);
        let last = *f.nf.last().unwrap();
        let expect = (n * n) as f64;
        assert!(
            (last - expect).abs() / expect < 0.35,
            "last={last}, expect={expect}"
        );
    }

    #[test]
    fn mean_distance_tracks_bfs_on_cycle() {
        // Cycle of 16: mean distance over distinct pairs = ~4.27
        // (distances 1..8 with multiplicities 2,2,...,2,1 per node).
        let n = 16usize;
        let mut g = UncertainGraph::with_nodes(n);
        for v in 0..n as u32 {
            g.add_edge(v, (v + 1) % n as u32, 1.0).unwrap();
        }
        let w = full_world(&g);
        let view = WorldView::new(&g, &w);
        // exact mean: for even n, distances from a node: 1..(n/2 -1) twice + n/2 once
        let exact = {
            let half = n / 2;
            let sum: usize = (1..half).map(|d| 2 * d).sum::<usize>() + half;
            sum as f64 / (n - 1) as f64
        };
        let mut rng = StdRng::seed_from_u64(2);
        let f = anf(&view, 64, n, &mut rng);
        let est = f.mean_distance();
        assert!(
            (est - exact).abs() / exact < 0.35,
            "est={est}, exact={exact}"
        );
    }

    #[test]
    fn effective_diameter_of_path() {
        let g = path(32);
        let w = full_world(&g);
        let view = WorldView::new(&g, &w);
        let mut rng = StdRng::seed_from_u64(3);
        let f = anf(&view, 64, 40, &mut rng);
        let d90 = f.effective_diameter(0.9);
        // True 90% effective diameter of a 32-path is ≈ 25; sketch noise is
        // material at this scale, accept a generous band.
        assert!((15..=32).contains(&d90), "d90={d90}");
        assert_eq!(f.effective_diameter(0.0), 0);
    }

    #[test]
    fn isolated_nodes_have_zero_mean_distance() {
        let g = UncertainGraph::with_nodes(10);
        let w = World::empty(0);
        let view = WorldView::new(&g, &w);
        let mut rng = StdRng::seed_from_u64(4);
        let f = anf(&view, 16, 5, &mut rng);
        assert_eq!(f.mean_distance(), 0.0);
        assert_eq!(f.effective_diameter(0.9), 0);
    }

    #[test]
    fn early_termination_on_convergence() {
        let g = path(4);
        let w = full_world(&g);
        let view = WorldView::new(&g, &w);
        let mut rng = StdRng::seed_from_u64(5);
        let f = anf(&view, 8, 100, &mut rng);
        // Diameter 3, so at most 4-5 rounds before sketches stabilize.
        assert!(f.nf.len() <= 6, "rounds={}", f.nf.len());
    }

    #[test]
    #[should_panic]
    fn zero_sketches_rejected() {
        let g = path(3);
        let w = full_world(&g);
        let view = WorldView::new(&g, &w);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = anf(&view, 0, 5, &mut rng);
    }
}
