//! Reliability discrepancy — the paper's utility-loss metric
//! (Definition 2): `Δ(G̃) = Σ_{(u,v)} |R_{u,v}(G) − R_{u,v}(G̃)|`.
//!
//! Estimated over a sampled pair set; the headline number reported by the
//! paper's Fig. 4 and Fig. 8 is the *average* per-pair discrepancy.

use crate::ensemble::WorldEnsemble;
use chameleon_stats::Summary;
use chameleon_ugraph::NodeId;

/// Estimated reliability discrepancy between two graphs over a pair set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscrepancyReport {
    /// Mean per-pair |ΔR| — the quantity plotted in paper Fig. 4 / Fig. 8.
    pub avg: f64,
    /// Sum over the sampled pairs (scale with `n·(n−1)/2 / pairs` for a
    /// whole-graph Δ estimate).
    pub sum: f64,
    /// Largest per-pair discrepancy observed.
    pub max: f64,
    /// Number of pairs evaluated.
    pub pairs: usize,
    /// Standard error of the mean.
    pub std_error: f64,
}

impl DiscrepancyReport {
    /// Extrapolates the sampled mean to the full `Σ_{u<v}` discrepancy of a
    /// graph with `n` nodes (paper Definition 2 is the full sum).
    pub fn extrapolated_total(&self, n: usize) -> f64 {
        self.avg * (n * n.saturating_sub(1) / 2) as f64
    }
}

/// Estimates the reliability discrepancy between two uncertain graphs from
/// pre-built world ensembles.
///
/// The graphs may have entirely different edge sets (the Rep-An baseline
/// produces graphs that share no edge indexing with the original); each
/// ensemble is built on its own graph. When the edge arrays *do* align,
/// build both ensembles from one CRN uniforms matrix
/// ([`crate::ensemble::crn_uniform_matrix`]) for a large variance
/// reduction.
///
/// # Panics
/// Panics if the ensembles disagree on node count or a pair indexes out of
/// range.
pub fn avg_reliability_discrepancy(
    original: &WorldEnsemble,
    anonymized: &WorldEnsemble,
    pairs: &[(NodeId, NodeId)],
) -> DiscrepancyReport {
    assert_eq!(
        original.num_nodes(),
        anonymized.num_nodes(),
        "graphs must share the node set"
    );
    let r_orig = original.reliability_many(pairs);
    let r_anon = anonymized.reliability_many(pairs);
    let mut summary = Summary::new();
    for (a, b) in r_orig.iter().zip(&r_anon) {
        summary.push((a - b).abs());
    }
    DiscrepancyReport {
        avg: summary.mean(),
        sum: summary.sum(),
        max: if summary.count() == 0 {
            0.0
        } else {
            summary.max()
        },
        pairs: pairs.len(),
        std_error: summary.std_error(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::crn_uniform_matrix;
    use chameleon_ugraph::UncertainGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line(p: f64) -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, p).unwrap();
        g.add_edge(1, 2, p).unwrap();
        g
    }

    #[test]
    fn identical_graphs_have_zero_discrepancy_under_crn() {
        let g = line(0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let uniforms = crn_uniform_matrix(300, g.num_edges(), &mut rng);
        let a = WorldEnsemble::from_uniform_matrix(&g, &uniforms);
        let b = WorldEnsemble::from_uniform_matrix(&g, &uniforms);
        let rep = avg_reliability_discrepancy(&a, &b, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(rep.avg, 0.0);
        assert_eq!(rep.sum, 0.0);
        assert_eq!(rep.max, 0.0);
        assert_eq!(rep.pairs, 3);
    }

    #[test]
    fn known_probability_shift() {
        // p: 0.5 → 1.0 on both edges. R(0,1): 0.5 → 1.0 (Δ 0.5);
        // R(0,2): 0.25 → 1.0 (Δ 0.75); R(1,2): Δ 0.5.
        let g1 = line(0.5);
        let g2 = line(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let a = WorldEnsemble::sample(&g1, 8000, &mut rng);
        let b = WorldEnsemble::sample(&g2, 10, &mut rng);
        let rep = avg_reliability_discrepancy(&a, &b, &[(0, 1), (0, 2), (1, 2)]);
        let expect = (0.5 + 0.75 + 0.5) / 3.0;
        assert!((rep.avg - expect).abs() < 0.02, "avg={}", rep.avg);
        assert!(rep.max > 0.7 && rep.max < 0.8);
        assert!(rep.std_error > 0.0);
    }

    #[test]
    fn extrapolation_scales_by_pair_count() {
        let rep = DiscrepancyReport {
            avg: 0.1,
            sum: 0.3,
            max: 0.2,
            pairs: 3,
            std_error: 0.0,
        };
        // n=4 → 6 pairs → total 0.6
        assert!((rep.extrapolated_total(4) - 0.6).abs() < 1e-12);
        assert_eq!(rep.extrapolated_total(0), 0.0);
    }

    #[test]
    fn empty_pair_set() {
        let g = line(0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let a = WorldEnsemble::sample(&g, 10, &mut rng);
        let b = WorldEnsemble::sample(&g, 10, &mut rng);
        let rep = avg_reliability_discrepancy(&a, &b, &[]);
        assert_eq!(rep.avg, 0.0);
        assert_eq!(rep.pairs, 0);
        assert_eq!(rep.max, 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_node_counts_panic() {
        let g1 = line(0.5);
        let mut g2 = UncertainGraph::with_nodes(5);
        g2.add_edge(0, 1, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let a = WorldEnsemble::sample(&g1, 5, &mut rng);
        let b = WorldEnsemble::sample(&g2, 5, &mut rng);
        let _ = avg_reliability_discrepancy(&a, &b, &[(0, 1)]);
    }

    #[test]
    fn crn_reduces_variance_versus_independent() {
        // Measure the discrepancy of a graph against a slightly perturbed
        // copy multiple times; CRN estimates should fluctuate less.
        let g1 = line(0.5);
        let mut g2 = g1.clone();
        g2.set_prob(0, 0.55).unwrap();
        let pairs = [(0u32, 2u32)];
        let reps = 12;
        let worlds = 250;
        let mut crn_vals = Vec::new();
        let mut ind_vals = Vec::new();
        for i in 0..reps {
            let mut rng = StdRng::seed_from_u64(100 + i);
            let uniforms = crn_uniform_matrix(worlds, 2, &mut rng);
            let a = WorldEnsemble::from_uniform_matrix(&g1, &uniforms);
            let b = WorldEnsemble::from_uniform_matrix(&g2, &uniforms);
            crn_vals.push(avg_reliability_discrepancy(&a, &b, &pairs).avg);

            let mut rng_a = StdRng::seed_from_u64(500 + i);
            let mut rng_b = StdRng::seed_from_u64(900 + i);
            let a = WorldEnsemble::sample(&g1, worlds, &mut rng_a);
            let b = WorldEnsemble::sample(&g2, worlds, &mut rng_b);
            ind_vals.push(avg_reliability_discrepancy(&a, &b, &pairs).avg);
        }
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        assert!(
            var(&crn_vals) < var(&ind_vals),
            "crn var {} should beat independent var {}",
            var(&crn_vals),
            var(&ind_vals)
        );
    }
}
