//! Node-pair sampling for reliability-discrepancy estimation.
//!
//! The reliability discrepancy (paper Definition 2) sums over all Θ(|V|²)
//! node pairs; at experiment scale we estimate the *average* per-pair
//! discrepancy from a sampled pair set, exactly as the paper reports
//! "average reliability discrepancy" in Fig. 4/8.

use chameleon_ugraph::NodeId;
use rand::Rng;
use std::collections::HashSet;

/// Samples `count` distinct unordered node pairs `u < v` uniformly from a
/// graph with `n` nodes. If `count` exceeds the number of possible pairs,
/// all pairs are returned (deterministically, in lexicographic order).
///
/// # Panics
/// Panics if `n < 2` and `count > 0`.
pub fn sample_distinct_pairs<R: Rng + ?Sized>(
    n: usize,
    count: usize,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    if count == 0 {
        return Vec::new();
    }
    assert!(n >= 2, "need at least two nodes to form a pair");
    let max_pairs = n * (n - 1) / 2;
    if count >= max_pairs {
        let mut all = Vec::with_capacity(max_pairs);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                all.push((u, v));
            }
        }
        return all;
    }
    let mut seen = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

/// Samples pairs stratified by a component labeling of the *original*
/// graph's "backbone" (e.g. labels from a high-probability world): a
/// `within_frac` fraction of pairs share a label (their reliability is
/// typically high and sensitive to perturbation), the rest straddle labels.
/// Falls back to uniform sampling when the labeling has a single class or
/// classes too small to stratify.
pub fn sample_stratified_pairs<R: Rng + ?Sized>(
    labels: &[u32],
    count: usize,
    within_frac: f64,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    let n = labels.len();
    if count == 0 {
        return Vec::new();
    }
    assert!(n >= 2, "need at least two nodes");
    assert!((0.0..=1.0).contains(&within_frac), "invalid fraction");
    // Group members per label.
    let num_labels = labels
        .iter()
        .copied()
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(0);
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); num_labels];
    for (v, &l) in labels.iter().enumerate() {
        groups[l as usize].push(v as u32);
    }
    let has_within = groups.iter().any(|g| g.len() >= 2);
    let has_cross = num_labels >= 2;
    if !has_within || !has_cross {
        return sample_distinct_pairs(n, count, rng);
    }
    let within_groups: Vec<usize> = (0..num_labels).filter(|&i| groups[i].len() >= 2).collect();
    let mut seen = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    let max_pairs = n * (n - 1) / 2;
    let target = count.min(max_pairs);
    let mut misses = 0usize;
    while out.len() < target && misses < 100 * target + 1000 {
        let want_within = rng.gen::<f64>() < within_frac;
        let (u, v) = if want_within {
            let g = &groups[within_groups[rng.gen_range(0..within_groups.len())]];
            (g[rng.gen_range(0..g.len())], g[rng.gen_range(0..g.len())])
        } else {
            (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32))
        };
        if u == v {
            misses += 1;
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            out.push(key);
        } else {
            misses += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_pairs_are_distinct_and_ordered() {
        let mut rng = StdRng::seed_from_u64(0);
        let pairs = sample_distinct_pairs(50, 100, &mut rng);
        assert_eq!(pairs.len(), 100);
        let set: HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), 100);
        assert!(pairs.iter().all(|&(u, v)| u < v && v < 50));
    }

    #[test]
    fn requesting_all_pairs_returns_them() {
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = sample_distinct_pairs(5, 100, &mut rng);
        assert_eq!(pairs.len(), 10);
        assert_eq!(pairs[0], (0, 1));
        assert_eq!(pairs[9], (3, 4));
    }

    #[test]
    fn zero_count_is_empty() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(sample_distinct_pairs(10, 0, &mut rng).is_empty());
        assert!(sample_distinct_pairs(0, 0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic]
    fn one_node_cannot_pair() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sample_distinct_pairs(1, 1, &mut rng);
    }

    #[test]
    fn stratified_prefers_within_pairs() {
        // Two blocks of 25 nodes.
        let labels: Vec<u32> = (0..50).map(|v| if v < 25 { 0 } else { 1 }).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let pairs = sample_stratified_pairs(&labels, 300, 0.8, &mut rng);
        assert_eq!(pairs.len(), 300);
        let within = pairs
            .iter()
            .filter(|&&(u, v)| labels[u as usize] == labels[v as usize])
            .count();
        // ~80% within (cross draws can also land within by chance).
        assert!(within > 200, "within={within}");
    }

    #[test]
    fn stratified_falls_back_on_degenerate_labels() {
        // Single class → fallback to uniform.
        let labels = vec![0u32; 20];
        let mut rng = StdRng::seed_from_u64(5);
        let pairs = sample_stratified_pairs(&labels, 30, 0.5, &mut rng);
        assert_eq!(pairs.len(), 30);
        // All singleton classes → no within pairs possible → fallback.
        let labels: Vec<u32> = (0..20).collect();
        let pairs = sample_stratified_pairs(&labels, 30, 0.9, &mut rng);
        assert_eq!(pairs.len(), 30);
    }

    #[test]
    fn stratified_pairs_distinct() {
        let labels: Vec<u32> = (0..40).map(|v| v % 4).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let pairs = sample_stratified_pairs(&labels, 120, 0.5, &mut rng);
        let set: HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), pairs.len());
    }

    #[test]
    fn reproducible_with_seed() {
        let a = sample_distinct_pairs(30, 40, &mut StdRng::seed_from_u64(9));
        let b = sample_distinct_pairs(30, 40, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
