//! World ensembles: a fixed set of sampled possible worlds with cached
//! connectivity structure.
//!
//! Storage is arena-style (DESIGN.md §6c): the worlds live in one
//! contiguous [`WorldMatrix`], component labels in one world-major flat
//! `u32` matrix (stride = `num_nodes`), and per-world component sizes in
//! one offset-indexed arena. Building an N-world ensemble therefore costs
//! O(chunks) allocations, not O(N), and every query is a strided scan over
//! contiguous memory. Results are bit-identical to the historical
//! one-allocation-per-world layout: the sampling plan preserves the RNG
//! draw order and the analysis replays union–find operations in the same
//! ascending edge order.

use chameleon_stats::alloc_guard::Tracked;
use chameleon_stats::parallel;
use chameleon_stats::SeedSequence;
use chameleon_ugraph::{
    NodeId, SamplePlan, UncertainGraph, UnionFind, World, WorldMatrix, WorldRef,
};
use rand::Rng;

/// Fixed number of worlds per sampling/analysis chunk. Chunk boundaries
/// (and the per-chunk RNG streams of [`WorldEnsemble::sample_seeded`])
/// depend only on this constant and the world count, never on the thread
/// count — that is what makes parallel ensembles bit-identical to serial
/// ones. Changing it changes which worlds a given seed produces.
pub const WORLD_CHUNK: usize = 32;

/// Pairs per block in [`WorldEnsemble::reliability_many`]: a block of pair
/// hit-counters is kept hot in cache while the label matrix streams past
/// once per block.
pub(crate) const PAIR_BLOCK: usize = 1024;

/// A Monte-Carlo ensemble of possible worlds of one uncertain graph, with
/// per-world component labels and connected-pair counts cached.
///
/// Building the ensemble costs O(N·(|E| + |V|·α(|V|))); afterwards every
/// two-terminal reliability query is O(N) label comparisons and the
/// expected-connected-pairs statistic is O(1). The paper's ERR estimator
/// (Algorithm 2) iterates over exactly this cache.
#[derive(Debug, Clone)]
pub struct WorldEnsemble {
    pub(crate) worlds: WorldMatrix,
    /// World-major flat label matrix: world `w`'s labels are
    /// `labels[w*num_nodes .. (w+1)*num_nodes]`.
    pub(crate) labels: Vec<u32>,
    /// Arena of per-world component sizes, indexed by dense label within
    /// the slice delimited by `size_offsets`.
    pub(crate) component_sizes: Vec<u32>,
    /// `size_offsets[w]..size_offsets[w+1]` is world `w`'s slice of
    /// `component_sizes`; length `num_worlds + 1`.
    pub(crate) size_offsets: Vec<usize>,
    pub(crate) connected_pairs: Vec<u64>,
    pub(crate) num_nodes: usize,
    /// Registration of this ensemble's arena bytes against the
    /// process-global gauge (`chameleon_stats::alloc_guard`); released on
    /// drop, re-registered on clone.
    pub(crate) tracked: Tracked,
}

impl WorldEnsemble {
    /// Samples `n` worlds of `graph`.
    pub fn sample<R: Rng + ?Sized>(graph: &UncertainGraph, n: usize, rng: &mut R) -> Self {
        let plan = SamplePlan::new(graph);
        Self::from_matrix_threads(graph, plan.sample_matrix(n, rng), 1)
    }

    /// Samples `n` worlds from a seed, using up to `threads` worker
    /// threads (`0` = all hardware threads).
    ///
    /// Worlds are produced in fixed blocks of [`WORLD_CHUNK`]; block `c`
    /// draws from its own RNG stream `(seed, "world-chunk", c)`. Because
    /// neither the block boundaries nor the streams depend on the thread
    /// count, the ensemble is **bit-identical** for every `threads` value
    /// — parallelism changes wall-clock time only. (The stream layout
    /// differs from feeding one sequential RNG through
    /// [`WorldEnsemble::sample`]; both are deterministic per seed.)
    pub fn sample_seeded(graph: &UncertainGraph, n: usize, seed: u64, threads: usize) -> Self {
        let _span = chameleon_obs::span!("ensemble.sample_seeded");
        chameleon_obs::counter!("ensemble.worlds_sampled").add(n as u64);
        let seq = SeedSequence::new(seed);
        let plan = SamplePlan::new(graph);
        let wpw = plan.words_per_world();
        let row_chunks = parallel::map_chunks(n, WORLD_CHUNK, threads, |c, range| {
            let mut rng = seq.rng_indexed("world-chunk", c as u64);
            let mut rows = vec![0u64; range.len() * wpw];
            if wpw > 0 {
                for row in rows.chunks_exact_mut(wpw) {
                    plan.sample_into(row, &mut rng);
                }
            }
            // wpw == 0 ⇒ edgeless graph ⇒ no uncertain edges ⇒ a draw-free
            // world; skipping sample_into consumes the same (zero) RNG
            // output per world.
            rows
        });
        let mut worlds = WorldMatrix::new(graph.num_edges());
        worlds.reserve(n);
        for (c, rows) in row_chunks.iter().enumerate() {
            if wpw > 0 {
                worlds.extend_from_words(rows);
            } else {
                worlds.grow(parallel::chunk_range(c, WORLD_CHUNK, n).len());
            }
        }
        Self::from_matrix_threads(graph, worlds, threads)
    }

    /// Wraps pre-sampled worlds.
    ///
    /// # Panics
    /// Panics if any world's edge-slot count disagrees with the graph's.
    pub fn from_worlds(graph: &UncertainGraph, worlds: Vec<World>) -> Self {
        Self::from_worlds_threads(graph, worlds, 1)
    }

    /// Wraps pre-sampled worlds, running the connectivity analysis on up
    /// to `threads` worker threads. See
    /// [`WorldEnsemble::from_matrix_threads`].
    pub fn from_worlds_threads(graph: &UncertainGraph, worlds: Vec<World>, threads: usize) -> Self {
        let mut matrix = WorldMatrix::new(graph.num_edges());
        matrix.reserve(worlds.len());
        for w in &worlds {
            assert_eq!(
                w.num_edge_slots(),
                graph.num_edges(),
                "world/graph edge-count mismatch"
            );
            if matrix.words_per_world() > 0 {
                matrix.extend_from_words(w.as_world_ref().words());
            } else {
                matrix.grow(1);
            }
        }
        Self::from_matrix_threads(graph, matrix, threads)
    }

    /// Builds the ensemble caches for an already-sampled world matrix,
    /// running the per-world connectivity analysis (union–find labels,
    /// component sizes, connected-pair counts) on up to `threads` worker
    /// threads (`0` = all hardware threads). Each world's analysis is a
    /// pure function of that world, so the result is identical for every
    /// thread count. Each worker reuses one union-find and one label
    /// scratch across all its chunks.
    ///
    /// # Panics
    /// Panics if the matrix's edge-slot count disagrees with the graph's.
    pub fn from_matrix_threads(
        graph: &UncertainGraph,
        worlds: WorldMatrix,
        threads: usize,
    ) -> Self {
        let _span = chameleon_obs::span!("ensemble.analyze_worlds");
        assert_eq!(
            worlds.num_edges(),
            graph.num_edges(),
            "world/graph edge-count mismatch"
        );
        let n = worlds.num_worlds();
        let nn = graph.num_nodes();
        let (us, vs) = graph.endpoint_soa();
        let analyzed = parallel::map_chunks_scratch(
            n,
            WORLD_CHUNK,
            threads,
            || (UnionFind::new(nn), Vec::<u32>::new()),
            |(uf, label_scratch), _, range| {
                let k = range.len();
                let mut labels = Vec::with_capacity(k * nn);
                let mut sizes = Vec::with_capacity(k * nn.min(64));
                let mut ncomps = Vec::with_capacity(k);
                let mut pairs = Vec::with_capacity(k);
                // Union–find work per world: one makeset per node plus one
                // union per present edge; counted once per chunk to keep
                // the recording cost off the per-world path.
                let mut uf_ops = 0u64;
                for w in range {
                    uf.reset();
                    let present = worlds.world(w).union_into(&us, &vs, uf);
                    uf_ops += nn as u64 + present as u64;
                    let (ncomp, cc) =
                        uf.append_labels_and_sizes(&mut labels, &mut sizes, label_scratch);
                    ncomps.push(ncomp);
                    pairs.push(cc);
                }
                chameleon_obs::counter!("ensemble.union_find_ops").add(uf_ops);
                // Worlds after the first in a chunk recycle the worker's
                // union-find and label scratch instead of allocating —
                // defined per chunk, so the count is thread-invariant.
                chameleon_obs::counter!("ensemble.scratch_reuses").add(k.saturating_sub(1) as u64);
                (labels, sizes, ncomps, pairs)
            },
        );
        let mut labels = Vec::with_capacity(n * nn);
        let mut component_sizes = Vec::new();
        let mut size_offsets = Vec::with_capacity(n + 1);
        size_offsets.push(0usize);
        let mut connected_pairs = Vec::with_capacity(n);
        for (l, sizes, ncomps, pairs) in analyzed {
            labels.extend_from_slice(&l);
            component_sizes.extend_from_slice(&sizes);
            for ncomp in ncomps {
                let last = *size_offsets.last().expect("seeded with 0");
                size_offsets.push(last + ncomp);
            }
            connected_pairs.extend_from_slice(&pairs);
        }
        let arena_bytes = worlds.arena_bytes()
            + labels.len() * std::mem::size_of::<u32>()
            + component_sizes.len() * std::mem::size_of::<u32>();
        chameleon_obs::counter!("ensemble.arena_bytes").add(arena_bytes as u64);
        // Infallible gauge registration: construction paths that cannot
        // return errors still report accurate peak tracked bytes. Fallible
        // ceiling enforcement happens at the entry points (pipeline
        // precheck, `EnsembleStream`).
        let tracked = Tracked::register(arena_bytes);
        Self {
            worlds,
            labels,
            component_sizes,
            size_offsets,
            connected_pairs,
            num_nodes: nn,
            tracked,
        }
    }

    /// Bytes estimated for the arenas of an `n`-world ensemble of `graph`
    /// before building it: the world matrix plus the flat label matrix
    /// plus a component-sizes lower bound. Used for fail-fast ceiling
    /// prechecks ahead of the actual allocation.
    pub fn estimate_arena_bytes(graph: &UncertainGraph, n: usize) -> usize {
        let wpw = graph.num_edges().div_ceil(64);
        n * (wpw * std::mem::size_of::<u64>() + graph.num_nodes() * std::mem::size_of::<u32>())
    }

    /// Samples the worlds `[world_offset, world_offset + len)` of the
    /// ensemble that [`WorldEnsemble::sample_seeded`] with the same
    /// `(graph, seed)` would produce — bit-identical rows, because chunk
    /// `c` of the strip draws from the global RNG stream
    /// `(seed, "world-chunk", world_offset / WORLD_CHUNK + c)`.
    ///
    /// # Panics
    /// Panics unless `world_offset` is a multiple of [`WORLD_CHUNK`]
    /// (strip boundaries must coincide with global chunk boundaries, or
    /// the per-chunk streams would desynchronize).
    pub fn sample_strip_matrix(
        plan: &SamplePlan,
        seed: u64,
        world_offset: usize,
        len: usize,
        threads: usize,
    ) -> WorldMatrix {
        assert!(
            world_offset.is_multiple_of(WORLD_CHUNK),
            "strip offset {world_offset} not aligned to WORLD_CHUNK ({WORLD_CHUNK})"
        );
        let seq = SeedSequence::new(seed);
        let chunk_base = world_offset / WORLD_CHUNK;
        let wpw = plan.words_per_world();
        let row_chunks = parallel::map_chunks(len, WORLD_CHUNK, threads, |c, range| {
            let mut rng = seq.rng_indexed("world-chunk", (chunk_base + c) as u64);
            let mut rows = vec![0u64; range.len() * wpw];
            if wpw > 0 {
                for row in rows.chunks_exact_mut(wpw) {
                    plan.sample_into(row, &mut rng);
                }
            }
            rows
        });
        let mut worlds = WorldMatrix::new(plan.num_edges());
        worlds.reserve(len);
        for (c, rows) in row_chunks.iter().enumerate() {
            if wpw > 0 {
                worlds.extend_from_words(rows);
            } else {
                worlds.grow(parallel::chunk_range(c, WORLD_CHUNK, len).len());
            }
        }
        worlds
    }

    /// Builds an ensemble from worlds sampled with *common random numbers*:
    /// row `w` of `uniforms` drives world `w` — edge `i` is present iff
    /// `uniforms.row(w)[i] < p(e_i)`. Two graphs whose edge arrays agree on
    /// shared edges can be compared with the same matrix, eliminating
    /// independent-sampling noise from discrepancy estimates.
    ///
    /// # Panics
    /// Panics if the matrix stride is smaller than the graph's edge count.
    pub fn from_uniform_matrix(graph: &UncertainGraph, uniforms: &UniformMatrix) -> Self {
        Self::from_uniform_matrix_threads(graph, uniforms, 1)
    }

    /// [`WorldEnsemble::from_uniform_matrix`] with the connectivity
    /// analysis on up to `threads` worker threads (`0` = all hardware
    /// threads). The world bits are a pure per-edge function of the
    /// uniforms, so the result is identical for every thread count.
    ///
    /// # Panics
    /// Panics if the matrix stride is smaller than the graph's edge count.
    pub fn from_uniform_matrix_threads(
        graph: &UncertainGraph,
        uniforms: &UniformMatrix,
        threads: usize,
    ) -> Self {
        let m = graph.num_edges();
        assert!(
            uniforms.stride() >= m,
            "need {m} uniforms per world, stride is {}",
            uniforms.stride()
        );
        let n = uniforms.num_worlds();
        let mut matrix = WorldMatrix::zeroed(n, m);
        let probs: Vec<f64> = graph.edges().iter().map(|e| e.p).collect();
        for w in 0..n {
            let u = uniforms.row(w);
            let row = matrix.row_mut(w);
            for (i, &p) in probs.iter().enumerate() {
                if u[i] < p {
                    row[i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        Self::from_matrix_threads(graph, matrix, threads)
    }

    /// Builds an ensemble from a row-per-world CRN uniforms matrix.
    ///
    /// # Panics
    /// Panics if any uniform row is shorter than the graph's edge count.
    #[deprecated(note = "use `from_uniform_matrix` with a flat `UniformMatrix`")]
    pub fn from_uniforms(graph: &UncertainGraph, uniforms: &[Vec<f64>]) -> Self {
        let m = graph.num_edges();
        for row in uniforms {
            assert!(row.len() >= m, "need {m} uniforms, got {}", row.len());
        }
        let stride = uniforms.iter().map(|r| r.len()).max().unwrap_or(m);
        let mut flat = UniformMatrix::zeroed(uniforms.len(), stride);
        for (w, row) in uniforms.iter().enumerate() {
            flat.row_mut(w)[..row.len()].copy_from_slice(row);
        }
        Self::from_uniform_matrix(graph, &flat)
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.worlds.num_worlds()
    }

    /// True when the ensemble holds no worlds.
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Number of nodes of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The arena holding every sampled world.
    pub fn matrix(&self) -> &WorldMatrix {
        &self.worlds
    }

    /// World `w` as a borrowed bitset.
    pub fn world(&self, w: usize) -> WorldRef<'_> {
        self.worlds.world(w)
    }

    /// Component labels of world `w`.
    pub fn labels(&self, w: usize) -> &[u32] {
        &self.labels[w * self.num_nodes..(w + 1) * self.num_nodes]
    }

    /// Component sizes of world `w`, indexed by the dense labels of
    /// [`WorldEnsemble::labels`].
    pub fn component_sizes(&self, w: usize) -> &[u32] {
        &self.component_sizes[self.size_offsets[w]..self.size_offsets[w + 1]]
    }

    /// Connected-pair count `cc(G_w)` of world `w`.
    pub fn connected_pairs(&self, w: usize) -> u64 {
        self.connected_pairs[w]
    }

    /// All per-world connected-pair counts.
    pub fn connected_pairs_all(&self) -> &[u64] {
        &self.connected_pairs
    }

    /// Bytes this ensemble's arenas have registered against the
    /// process-global ensemble gauge (`chameleon_stats::alloc_guard`).
    pub fn tracked_bytes(&self) -> usize {
        self.tracked.bytes()
    }

    /// Estimated two-terminal reliability `R_{u,v}` (paper Definition 1):
    /// the fraction of worlds in which `u` and `v` share a component.
    pub fn two_terminal_reliability(&self, u: NodeId, v: NodeId) -> f64 {
        let n = self.len();
        if n == 0 {
            return 0.0;
        }
        let (u, v) = (u as usize, v as usize);
        let hits = self
            .labels
            .chunks_exact(self.num_nodes)
            .filter(|l| l[u] == l[v])
            .count();
        hits as f64 / n as f64
    }

    /// Reliability for many pairs in one pass over the label cache,
    /// blocked so a [`PAIR_BLOCK`]-wide window of hit counters stays hot
    /// while the flat label matrix streams through.
    pub fn reliability_many(&self, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        let n = self.len();
        if n == 0 {
            return vec![0.0; pairs.len()];
        }
        let mut hits = vec![0u32; pairs.len()];
        self.accumulate_pair_hits(pairs, &mut hits);
        hits.into_iter().map(|h| h as f64 / n as f64).collect()
    }

    /// The kernel of [`WorldEnsemble::reliability_many`]: adds this
    /// ensemble's per-pair hit counts into `hits`. Shared with the
    /// strip-streamed accumulator (`stream::PairReliabilityAccum`), so
    /// both paths count hits with literally the same loop — and since hit
    /// counts are integers, any fold order gives identical totals.
    pub(crate) fn accumulate_pair_hits(&self, pairs: &[(NodeId, NodeId)], hits: &mut [u32]) {
        assert_eq!(pairs.len(), hits.len(), "pair/counter length mismatch");
        for (block_idx, block) in pairs.chunks(PAIR_BLOCK).enumerate() {
            let counters = &mut hits[block_idx * PAIR_BLOCK..];
            for l in self.labels.chunks_exact(self.num_nodes) {
                for (c, &(u, v)) in counters.iter_mut().zip(block) {
                    if l[u as usize] == l[v as usize] {
                        *c += 1;
                    }
                }
            }
        }
    }

    /// Estimated set-to-set reliability (the "sets of nodes" generalization
    /// in paper Definition 1): the probability that *some* vertex of
    /// `sources` shares a connected component with *some* vertex of
    /// `targets`.
    ///
    /// # Panics
    /// Panics if either set is empty or indexes out of range.
    pub fn set_reliability(&self, sources: &[NodeId], targets: &[NodeId]) -> f64 {
        assert!(
            !sources.is_empty() && !targets.is_empty(),
            "set reliability needs non-empty node sets"
        );
        let n = self.len();
        if n == 0 {
            return 0.0;
        }
        let mut source_labels: Vec<u32> = Vec::with_capacity(sources.len());
        let hits = self.count_set_hits(sources, targets, &mut source_labels);
        hits as f64 / n as f64
    }

    /// The kernel of [`WorldEnsemble::set_reliability`]: the number of
    /// worlds where some source shares a component with some target.
    /// `source_labels` is a sorted scratch reused across worlds (after the
    /// first world no allocation happens; capacity is |sources|). Shared
    /// with the strip-streamed accumulator.
    pub(crate) fn count_set_hits(
        &self,
        sources: &[NodeId],
        targets: &[NodeId],
        source_labels: &mut Vec<u32>,
    ) -> usize {
        let mut hits = 0usize;
        for l in self.labels.chunks_exact(self.num_nodes) {
            source_labels.clear();
            source_labels.extend(sources.iter().map(|&s| l[s as usize]));
            source_labels.sort_unstable();
            if targets
                .iter()
                .any(|&t| source_labels.binary_search(&l[t as usize]).is_ok())
            {
                hits += 1;
            }
        }
        hits
    }

    /// Estimated expected number of connected pairs
    /// `E[cc(G)] = Σ_{u<v} R_{u,v}` — the aggregate the ERR estimator
    /// differentiates (paper §V-D).
    pub fn expected_connected_pairs(&self) -> f64 {
        if self.connected_pairs.is_empty() {
            return 0.0;
        }
        self.connected_pairs.iter().map(|&c| c as f64).sum::<f64>()
            / self.connected_pairs.len() as f64
    }
}

/// A flat row-stride matrix of CRN uniforms: `num_worlds` rows of `stride`
/// variates in one contiguous allocation. Row `w` is the "randomness" of
/// world `w`, reusable across graph variants whose edge arrays align (the
/// stride must cover the larger edge count).
#[derive(Debug, Clone, PartialEq)]
pub struct UniformMatrix {
    values: Vec<f64>,
    stride: usize,
    num_worlds: usize,
}

impl UniformMatrix {
    /// An all-zero matrix (every edge present under `u < p` for `p > 0`).
    pub fn zeroed(num_worlds: usize, stride: usize) -> Self {
        Self {
            values: vec![0.0; num_worlds * stride],
            stride,
            num_worlds,
        }
    }

    /// Number of worlds (rows).
    pub fn num_worlds(&self) -> usize {
        self.num_worlds
    }

    /// Uniforms per row.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Row `w`.
    ///
    /// # Panics
    /// Panics if `w >= num_worlds`.
    pub fn row(&self, w: usize) -> &[f64] {
        assert!(w < self.num_worlds, "world {w} out of {}", self.num_worlds);
        &self.values[w * self.stride..(w + 1) * self.stride]
    }

    /// Mutable row `w`.
    ///
    /// # Panics
    /// Panics if `w >= num_worlds`.
    pub fn row_mut(&mut self, w: usize) -> &mut [f64] {
        assert!(w < self.num_worlds, "world {w} out of {}", self.num_worlds);
        &mut self.values[w * self.stride..(w + 1) * self.stride]
    }
}

/// Generates a flat CRN uniforms matrix: `n_worlds` rows of `n_edges`
/// variates, drawn row-major (the same RNG sequence as the historical
/// nested `crn_uniforms`).
pub fn crn_uniform_matrix<R: Rng + ?Sized>(
    n_worlds: usize,
    n_edges: usize,
    rng: &mut R,
) -> UniformMatrix {
    let mut m = UniformMatrix::zeroed(n_worlds, n_edges);
    for x in &mut m.values {
        *x = rng.gen::<f64>();
    }
    m
}

/// Generates a CRN uniforms matrix as nested vectors.
#[deprecated(note = "use `crn_uniform_matrix` for a flat row-stride matrix")]
pub fn crn_uniforms<R: Rng + ?Sized>(
    n_worlds: usize,
    n_edges: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    (0..n_worlds)
        .map(|_| (0..n_edges).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bridge_graph() -> UncertainGraph {
        // Two triangles joined by a bridge of probability 0.5:
        //   0-1-2 (p=0.9 each, triangle)   3-4-5 (p=0.9 each, triangle)
        //   bridge 2-3 (p=0.5)
        let mut g = UncertainGraph::with_nodes(6);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 0.9).unwrap();
        }
        g.add_edge(2, 3, 0.5).unwrap();
        g
    }

    #[test]
    fn deterministic_graph_reliability_is_binary() {
        let mut g = UncertainGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let ens = WorldEnsemble::sample(&g, 50, &mut rng);
        assert_eq!(ens.two_terminal_reliability(0, 1), 1.0);
        assert_eq!(ens.two_terminal_reliability(0, 2), 0.0);
        assert_eq!(ens.two_terminal_reliability(2, 3), 1.0);
    }

    #[test]
    fn single_edge_reliability_matches_probability() {
        let mut g = UncertainGraph::with_nodes(2);
        g.add_edge(0, 1, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let ens = WorldEnsemble::sample(&g, 5000, &mut rng);
        let r = ens.two_terminal_reliability(0, 1);
        assert!((r - 0.3).abs() < 0.03, "r={r}");
    }

    #[test]
    fn series_edges_multiply() {
        // 0 -0.6- 1 -0.5- 2: R(0,2) = 0.3 (independent series).
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, 0.6).unwrap();
        g.add_edge(1, 2, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let ens = WorldEnsemble::sample(&g, 8000, &mut rng);
        let r = ens.two_terminal_reliability(0, 2);
        assert!((r - 0.3).abs() < 0.025, "r={r}");
    }

    #[test]
    fn parallel_edges_via_triangle() {
        // R(0,1) in a two-path structure 0-1 (0.5) plus 0-2-1 (1.0, 1.0):
        // 1 - (1-0.5)(1-1.0) = 1.0.
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        g.add_edge(2, 1, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let ens = WorldEnsemble::sample(&g, 100, &mut rng);
        assert_eq!(ens.two_terminal_reliability(0, 1), 1.0);
    }

    #[test]
    fn reliability_many_matches_single() {
        let g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(4);
        let ens = WorldEnsemble::sample(&g, 500, &mut rng);
        let pairs = vec![(0u32, 1u32), (0, 5), (2, 3)];
        let many = ens.reliability_many(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert!((many[i] - ens.two_terminal_reliability(u, v)).abs() < 1e-12);
        }
    }

    #[test]
    fn reliability_many_blocked_matches_single_past_block_boundary() {
        let g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(14);
        let ens = WorldEnsemble::sample(&g, 60, &mut rng);
        // More pairs than one PAIR_BLOCK so at least two blocks run.
        let pairs: Vec<(u32, u32)> = (0..(super::PAIR_BLOCK + 37))
            .map(|i| ((i % 6) as u32, ((i + 1 + i / 6) % 6) as u32))
            .map(|(u, v)| if u == v { (u, (v + 1) % 6) } else { (u, v) })
            .collect();
        let many = ens.reliability_many(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(many[i], ens.two_terminal_reliability(u, v), "pair {i}");
        }
    }

    #[test]
    fn expected_connected_pairs_sums_reliabilities() {
        let g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(5);
        let ens = WorldEnsemble::sample(&g, 400, &mut rng);
        let mut total = 0.0;
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                total += ens.two_terminal_reliability(u, v);
            }
        }
        assert!(
            (ens.expected_connected_pairs() - total).abs() < 1e-9,
            "{} vs {total}",
            ens.expected_connected_pairs()
        );
    }

    #[test]
    fn empty_ensemble_degenerates() {
        let g = bridge_graph();
        let ens = WorldEnsemble::from_worlds(&g, vec![]);
        assert!(ens.is_empty());
        assert_eq!(ens.two_terminal_reliability(0, 1), 0.0);
        assert_eq!(ens.expected_connected_pairs(), 0.0);
        assert_eq!(ens.reliability_many(&[(0, 1)]), vec![0.0]);
    }

    #[test]
    fn sample_seeded_is_thread_count_invariant() {
        let g = bridge_graph();
        // A world count that is not a multiple of WORLD_CHUNK, so the last
        // chunk is ragged.
        let n = 3 * WORLD_CHUNK + 7;
        let serial = WorldEnsemble::sample_seeded(&g, n, 42, 1);
        for threads in [2, 4, 8] {
            let par = WorldEnsemble::sample_seeded(&g, n, 42, threads);
            assert_eq!(serial.matrix(), par.matrix());
            assert_eq!(serial.connected_pairs_all(), par.connected_pairs_all());
            for w in 0..n {
                assert_eq!(serial.labels(w), par.labels(w));
                assert_eq!(serial.component_sizes(w), par.component_sizes(w));
            }
        }
        // Different seeds still give different ensembles.
        let other = WorldEnsemble::sample_seeded(&g, n, 43, 2);
        assert_ne!(serial.matrix(), other.matrix());
    }

    #[test]
    fn from_worlds_threads_matches_serial_analysis() {
        let g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(9);
        let worlds = (0..50)
            .map(|_| chameleon_ugraph::WorldSampler::sample(&g, &mut rng))
            .collect::<Vec<_>>();
        let serial = WorldEnsemble::from_worlds(&g, worlds.clone());
        let par = WorldEnsemble::from_worlds_threads(&g, worlds, 4);
        assert_eq!(serial.connected_pairs_all(), par.connected_pairs_all());
        for w in 0..50 {
            assert_eq!(serial.labels(w), par.labels(w));
        }
    }

    #[test]
    fn from_worlds_preserves_world_bits() {
        let g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(11);
        let worlds = chameleon_ugraph::WorldSampler::sample_many(&g, 40, &mut rng);
        let ens = WorldEnsemble::from_worlds(&g, worlds.clone());
        assert_eq!(ens.len(), 40);
        for (w, world) in worlds.iter().enumerate() {
            assert_eq!(ens.world(w), world.as_world_ref());
        }
    }

    #[test]
    fn crn_identical_graphs_give_identical_ensembles() {
        let g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(6);
        let uniforms = crn_uniform_matrix(100, g.num_edges(), &mut rng);
        let a = WorldEnsemble::from_uniform_matrix(&g, &uniforms);
        let b = WorldEnsemble::from_uniform_matrix(&g, &uniforms);
        assert_eq!(a.matrix(), b.matrix());
        assert_eq!(
            a.two_terminal_reliability(0, 5),
            b.two_terminal_reliability(0, 5)
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_nested_shims_match_flat_matrix() {
        let g = bridge_graph();
        // Same seed → the flat generator draws the identical RNG sequence.
        let nested = crn_uniforms(50, g.num_edges(), &mut StdRng::seed_from_u64(21));
        let flat = crn_uniform_matrix(50, g.num_edges(), &mut StdRng::seed_from_u64(21));
        for (w, row) in nested.iter().enumerate() {
            assert_eq!(row.as_slice(), flat.row(w));
        }
        let a = WorldEnsemble::from_uniforms(&g, &nested);
        let b = WorldEnsemble::from_uniform_matrix(&g, &flat);
        assert_eq!(a.matrix(), b.matrix());
        assert_eq!(a.connected_pairs_all(), b.connected_pairs_all());
    }

    #[test]
    fn uniform_matrix_sampling_matches_per_world_sampler() {
        let g = bridge_graph();
        let uniforms = crn_uniform_matrix(30, g.num_edges(), &mut StdRng::seed_from_u64(13));
        let ens = WorldEnsemble::from_uniform_matrix(&g, &uniforms);
        for w in 0..30 {
            let world = chameleon_ugraph::WorldSampler::sample_with_uniforms(&g, uniforms.row(w));
            assert_eq!(ens.world(w), world.as_world_ref());
        }
    }

    #[test]
    fn set_reliability_generalizes_two_terminal() {
        let g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(10);
        let ens = WorldEnsemble::sample(&g, 800, &mut rng);
        // Singleton sets reduce to two-terminal reliability.
        assert_eq!(
            ens.set_reliability(&[0], &[5]),
            ens.two_terminal_reliability(0, 5)
        );
        // Supersets can only help: R({0,1,2} → {5}) ≥ R({0} → {5}).
        assert!(ens.set_reliability(&[0, 1, 2], &[5]) >= ens.set_reliability(&[0], &[5]));
        // Overlapping sets are trivially connected.
        assert_eq!(ens.set_reliability(&[0, 3], &[3]), 1.0);
    }

    #[test]
    #[should_panic]
    fn set_reliability_rejects_empty_sets() {
        let g = bridge_graph();
        let ens = WorldEnsemble::from_worlds(&g, vec![]);
        let _ = ens.set_reliability(&[], &[1]);
    }

    #[test]
    fn crn_uniform_matrix_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let u = crn_uniform_matrix(3, 5, &mut rng);
        assert_eq!(u.num_worlds(), 3);
        assert_eq!(u.stride(), 5);
        for w in 0..3 {
            assert_eq!(u.row(w).len(), 5);
            assert!(u.row(w).iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn higher_bridge_probability_increases_cross_reliability() {
        let mut g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(8);
        let uniforms = crn_uniform_matrix(2000, g.num_edges(), &mut rng);
        let low = WorldEnsemble::from_uniform_matrix(&g, &uniforms);
        let bridge = g.find_edge(2, 3).unwrap();
        g.set_prob(bridge, 0.95).unwrap();
        let high = WorldEnsemble::from_uniform_matrix(&g, &uniforms);
        assert!(high.two_terminal_reliability(0, 5) > low.two_terminal_reliability(0, 5));
    }

    #[test]
    fn edgeless_graph_ensemble() {
        let g = UncertainGraph::with_nodes(3);
        let ens = WorldEnsemble::sample_seeded(&g, WORLD_CHUNK + 5, 1, 2);
        assert_eq!(ens.len(), WORLD_CHUNK + 5);
        assert_eq!(ens.two_terminal_reliability(0, 2), 0.0);
        assert_eq!(ens.labels(0), &[0, 1, 2]);
        assert_eq!(ens.component_sizes(0), &[1, 1, 1]);
    }
}
