//! World ensembles: a fixed set of sampled possible worlds with cached
//! connectivity structure.

use chameleon_stats::parallel;
use chameleon_stats::SeedSequence;
use chameleon_ugraph::{NodeId, UncertainGraph, World, WorldSampler};
use rand::Rng;

/// Fixed number of worlds per sampling/analysis chunk. Chunk boundaries
/// (and the per-chunk RNG streams of [`WorldEnsemble::sample_seeded`])
/// depend only on this constant and the world count, never on the thread
/// count — that is what makes parallel ensembles bit-identical to serial
/// ones. Changing it changes which worlds a given seed produces.
pub const WORLD_CHUNK: usize = 32;

/// A Monte-Carlo ensemble of possible worlds of one uncertain graph, with
/// per-world component labels and connected-pair counts cached.
///
/// Building the ensemble costs O(N·(|E| + |V|·α(|V|))); afterwards every
/// two-terminal reliability query is O(N) label comparisons and the
/// expected-connected-pairs statistic is O(1). The paper's ERR estimator
/// (Algorithm 2) iterates over exactly this cache.
#[derive(Debug, Clone)]
pub struct WorldEnsemble {
    worlds: Vec<World>,
    labels: Vec<Vec<u32>>,
    /// Per world: size of each component, indexed by dense label.
    component_sizes: Vec<Vec<u32>>,
    connected_pairs: Vec<u64>,
    num_nodes: usize,
}

impl WorldEnsemble {
    /// Samples `n` worlds of `graph`.
    pub fn sample<R: Rng + ?Sized>(graph: &UncertainGraph, n: usize, rng: &mut R) -> Self {
        let worlds = WorldSampler::sample_many(graph, n, rng);
        Self::from_worlds(graph, worlds)
    }

    /// Samples `n` worlds from a seed, using up to `threads` worker
    /// threads (`0` = all hardware threads).
    ///
    /// Worlds are produced in fixed blocks of [`WORLD_CHUNK`]; block `c`
    /// draws from its own RNG stream `(seed, "world-chunk", c)`. Because
    /// neither the block boundaries nor the streams depend on the thread
    /// count, the ensemble is **bit-identical** for every `threads` value
    /// — parallelism changes wall-clock time only. (The stream layout
    /// differs from feeding one sequential RNG through
    /// [`WorldEnsemble::sample`]; both are deterministic per seed.)
    pub fn sample_seeded(graph: &UncertainGraph, n: usize, seed: u64, threads: usize) -> Self {
        let _span = chameleon_obs::span!("ensemble.sample_seeded");
        chameleon_obs::counter!("ensemble.worlds_sampled").add(n as u64);
        let seq = SeedSequence::new(seed);
        let world_chunks = parallel::map_chunks(n, WORLD_CHUNK, threads, |c, range| {
            let mut rng = seq.rng_indexed("world-chunk", c as u64);
            range
                .map(|_| WorldSampler::sample(graph, &mut rng))
                .collect::<Vec<World>>()
        });
        let worlds = world_chunks.into_iter().flatten().collect();
        Self::from_worlds_threads(graph, worlds, threads)
    }

    /// Builds an ensemble from worlds sampled with *common random numbers*:
    /// `uniforms[w][i]` drives edge `i` in world `w`. Two graphs whose edge
    /// arrays agree on shared edges can be compared with the same `uniforms`
    /// matrix, eliminating independent-sampling noise from discrepancy
    /// estimates.
    ///
    /// # Panics
    /// Panics if any uniform row is shorter than the graph's edge count.
    pub fn from_uniforms(graph: &UncertainGraph, uniforms: &[Vec<f64>]) -> Self {
        let worlds = uniforms
            .iter()
            .map(|u| WorldSampler::sample_with_uniforms(graph, u))
            .collect();
        Self::from_worlds(graph, worlds)
    }

    /// Wraps pre-sampled worlds.
    pub fn from_worlds(graph: &UncertainGraph, worlds: Vec<World>) -> Self {
        Self::from_worlds_threads(graph, worlds, 1)
    }

    /// Wraps pre-sampled worlds, running the per-world connectivity
    /// analysis (union–find labels, component sizes, connected-pair
    /// counts) on up to `threads` worker threads (`0` = all hardware
    /// threads). Each world's analysis is a pure function of that world,
    /// so the result is identical for every thread count.
    pub fn from_worlds_threads(graph: &UncertainGraph, worlds: Vec<World>, threads: usize) -> Self {
        let _span = chameleon_obs::span!("ensemble.analyze_worlds");
        let analyzed = parallel::map_chunks(worlds.len(), WORLD_CHUNK, threads, |_, range| {
            // Union–find work per world: one makeset per node plus one
            // union per present edge; counted once per chunk to keep the
            // recording cost off the per-world path.
            let mut uf_ops = 0u64;
            let out = range
                .map(|i| {
                    uf_ops += graph.num_nodes() as u64 + worlds[i].num_present() as u64;
                    let mut uf = worlds[i].components(graph);
                    let cc = uf.connected_pairs();
                    let l = uf.component_labels();
                    let mut sizes = vec![0u32; uf.num_components()];
                    for &lab in &l {
                        sizes[lab as usize] += 1;
                    }
                    (l, sizes, cc)
                })
                .collect::<Vec<_>>();
            chameleon_obs::counter!("ensemble.union_find_ops").add(uf_ops);
            out
        });
        let mut labels = Vec::with_capacity(worlds.len());
        let mut component_sizes = Vec::with_capacity(worlds.len());
        let mut connected_pairs = Vec::with_capacity(worlds.len());
        for (l, sizes, cc) in analyzed.into_iter().flatten() {
            labels.push(l);
            component_sizes.push(sizes);
            connected_pairs.push(cc);
        }
        Self {
            worlds,
            labels,
            component_sizes,
            connected_pairs,
            num_nodes: graph.num_nodes(),
        }
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// True when the ensemble holds no worlds.
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Number of nodes of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The sampled worlds.
    pub fn worlds(&self) -> &[World] {
        &self.worlds
    }

    /// Component labels of world `w`.
    pub fn labels(&self, w: usize) -> &[u32] {
        &self.labels[w]
    }

    /// Component sizes of world `w`, indexed by the dense labels of
    /// [`WorldEnsemble::labels`].
    pub fn component_sizes(&self, w: usize) -> &[u32] {
        &self.component_sizes[w]
    }

    /// Connected-pair count `cc(G_w)` of world `w`.
    pub fn connected_pairs(&self, w: usize) -> u64 {
        self.connected_pairs[w]
    }

    /// All per-world connected-pair counts.
    pub fn connected_pairs_all(&self) -> &[u64] {
        &self.connected_pairs
    }

    /// Estimated two-terminal reliability `R_{u,v}` (paper Definition 1):
    /// the fraction of worlds in which `u` and `v` share a component.
    pub fn two_terminal_reliability(&self, u: NodeId, v: NodeId) -> f64 {
        if self.worlds.is_empty() {
            return 0.0;
        }
        let hits = self
            .labels
            .iter()
            .filter(|l| l[u as usize] == l[v as usize])
            .count();
        hits as f64 / self.worlds.len() as f64
    }

    /// Reliability for many pairs in one pass over the label cache.
    pub fn reliability_many(&self, pairs: &[(NodeId, NodeId)]) -> Vec<f64> {
        let n = self.worlds.len();
        if n == 0 {
            return vec![0.0; pairs.len()];
        }
        let mut hits = vec![0u32; pairs.len()];
        for l in &self.labels {
            for (i, &(u, v)) in pairs.iter().enumerate() {
                if l[u as usize] == l[v as usize] {
                    hits[i] += 1;
                }
            }
        }
        hits.into_iter().map(|h| h as f64 / n as f64).collect()
    }

    /// Estimated set-to-set reliability (the "sets of nodes" generalization
    /// in paper Definition 1): the probability that *some* vertex of
    /// `sources` shares a connected component with *some* vertex of
    /// `targets`.
    ///
    /// # Panics
    /// Panics if either set is empty or indexes out of range.
    pub fn set_reliability(&self, sources: &[NodeId], targets: &[NodeId]) -> f64 {
        assert!(
            !sources.is_empty() && !targets.is_empty(),
            "set reliability needs non-empty node sets"
        );
        if self.worlds.is_empty() {
            return 0.0;
        }
        let mut hits = 0usize;
        let mut source_labels = std::collections::HashSet::new();
        for l in &self.labels {
            source_labels.clear();
            for &s in sources {
                source_labels.insert(l[s as usize]);
            }
            if targets
                .iter()
                .any(|&t| source_labels.contains(&l[t as usize]))
            {
                hits += 1;
            }
        }
        hits as f64 / self.worlds.len() as f64
    }

    /// Estimated expected number of connected pairs
    /// `E[cc(G)] = Σ_{u<v} R_{u,v}` — the aggregate the ERR estimator
    /// differentiates (paper §V-D).
    pub fn expected_connected_pairs(&self) -> f64 {
        if self.connected_pairs.is_empty() {
            return 0.0;
        }
        self.connected_pairs.iter().map(|&c| c as f64).sum::<f64>()
            / self.connected_pairs.len() as f64
    }
}

/// Generates a CRN uniforms matrix: `n_worlds` rows of `n_edges` uniforms.
/// Rows are the "randomness" of each world, reusable across graph variants
/// whose edge arrays align.
pub fn crn_uniforms<R: Rng + ?Sized>(
    n_worlds: usize,
    n_edges: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    (0..n_worlds)
        .map(|_| (0..n_edges).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bridge_graph() -> UncertainGraph {
        // Two triangles joined by a bridge of probability 0.5:
        //   0-1-2 (p=0.9 each, triangle)   3-4-5 (p=0.9 each, triangle)
        //   bridge 2-3 (p=0.5)
        let mut g = UncertainGraph::with_nodes(6);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 0.9).unwrap();
        }
        g.add_edge(2, 3, 0.5).unwrap();
        g
    }

    #[test]
    fn deterministic_graph_reliability_is_binary() {
        let mut g = UncertainGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let ens = WorldEnsemble::sample(&g, 50, &mut rng);
        assert_eq!(ens.two_terminal_reliability(0, 1), 1.0);
        assert_eq!(ens.two_terminal_reliability(0, 2), 0.0);
        assert_eq!(ens.two_terminal_reliability(2, 3), 1.0);
    }

    #[test]
    fn single_edge_reliability_matches_probability() {
        let mut g = UncertainGraph::with_nodes(2);
        g.add_edge(0, 1, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let ens = WorldEnsemble::sample(&g, 5000, &mut rng);
        let r = ens.two_terminal_reliability(0, 1);
        assert!((r - 0.3).abs() < 0.03, "r={r}");
    }

    #[test]
    fn series_edges_multiply() {
        // 0 -0.6- 1 -0.5- 2: R(0,2) = 0.3 (independent series).
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, 0.6).unwrap();
        g.add_edge(1, 2, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let ens = WorldEnsemble::sample(&g, 8000, &mut rng);
        let r = ens.two_terminal_reliability(0, 2);
        assert!((r - 0.3).abs() < 0.025, "r={r}");
    }

    #[test]
    fn parallel_edges_via_triangle() {
        // R(0,1) in a two-path structure 0-1 (0.5) plus 0-2-1 (1.0, 1.0):
        // 1 - (1-0.5)(1-1.0) = 1.0.
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        g.add_edge(2, 1, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let ens = WorldEnsemble::sample(&g, 100, &mut rng);
        assert_eq!(ens.two_terminal_reliability(0, 1), 1.0);
    }

    #[test]
    fn reliability_many_matches_single() {
        let g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(4);
        let ens = WorldEnsemble::sample(&g, 500, &mut rng);
        let pairs = vec![(0u32, 1u32), (0, 5), (2, 3)];
        let many = ens.reliability_many(&pairs);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert!((many[i] - ens.two_terminal_reliability(u, v)).abs() < 1e-12);
        }
    }

    #[test]
    fn expected_connected_pairs_sums_reliabilities() {
        let g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(5);
        let ens = WorldEnsemble::sample(&g, 400, &mut rng);
        let mut total = 0.0;
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                total += ens.two_terminal_reliability(u, v);
            }
        }
        assert!(
            (ens.expected_connected_pairs() - total).abs() < 1e-9,
            "{} vs {total}",
            ens.expected_connected_pairs()
        );
    }

    #[test]
    fn empty_ensemble_degenerates() {
        let g = bridge_graph();
        let ens = WorldEnsemble::from_worlds(&g, vec![]);
        assert!(ens.is_empty());
        assert_eq!(ens.two_terminal_reliability(0, 1), 0.0);
        assert_eq!(ens.expected_connected_pairs(), 0.0);
        assert_eq!(ens.reliability_many(&[(0, 1)]), vec![0.0]);
    }

    #[test]
    fn sample_seeded_is_thread_count_invariant() {
        let g = bridge_graph();
        // A world count that is not a multiple of WORLD_CHUNK, so the last
        // chunk is ragged.
        let n = 3 * WORLD_CHUNK + 7;
        let serial = WorldEnsemble::sample_seeded(&g, n, 42, 1);
        for threads in [2, 4, 8] {
            let par = WorldEnsemble::sample_seeded(&g, n, 42, threads);
            assert_eq!(serial.worlds(), par.worlds());
            assert_eq!(serial.connected_pairs_all(), par.connected_pairs_all());
            for w in 0..n {
                assert_eq!(serial.labels(w), par.labels(w));
                assert_eq!(serial.component_sizes(w), par.component_sizes(w));
            }
        }
        // Different seeds still give different ensembles.
        let other = WorldEnsemble::sample_seeded(&g, n, 43, 2);
        assert_ne!(serial.worlds(), other.worlds());
    }

    #[test]
    fn from_worlds_threads_matches_serial_analysis() {
        let g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(9);
        let worlds = (0..50)
            .map(|_| chameleon_ugraph::WorldSampler::sample(&g, &mut rng))
            .collect::<Vec<_>>();
        let serial = WorldEnsemble::from_worlds(&g, worlds.clone());
        let par = WorldEnsemble::from_worlds_threads(&g, worlds, 4);
        assert_eq!(serial.connected_pairs_all(), par.connected_pairs_all());
        for w in 0..50 {
            assert_eq!(serial.labels(w), par.labels(w));
        }
    }

    #[test]
    fn crn_identical_graphs_give_identical_ensembles() {
        let g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(6);
        let uniforms = crn_uniforms(100, g.num_edges(), &mut rng);
        let a = WorldEnsemble::from_uniforms(&g, &uniforms);
        let b = WorldEnsemble::from_uniforms(&g, &uniforms);
        for (wa, wb) in a.worlds().iter().zip(b.worlds()) {
            assert_eq!(wa, wb);
        }
        assert_eq!(
            a.two_terminal_reliability(0, 5),
            b.two_terminal_reliability(0, 5)
        );
    }

    #[test]
    fn set_reliability_generalizes_two_terminal() {
        let g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(10);
        let ens = WorldEnsemble::sample(&g, 800, &mut rng);
        // Singleton sets reduce to two-terminal reliability.
        assert_eq!(
            ens.set_reliability(&[0], &[5]),
            ens.two_terminal_reliability(0, 5)
        );
        // Supersets can only help: R({0,1,2} → {5}) ≥ R({0} → {5}).
        assert!(ens.set_reliability(&[0, 1, 2], &[5]) >= ens.set_reliability(&[0], &[5]));
        // Overlapping sets are trivially connected.
        assert_eq!(ens.set_reliability(&[0, 3], &[3]), 1.0);
    }

    #[test]
    #[should_panic]
    fn set_reliability_rejects_empty_sets() {
        let g = bridge_graph();
        let ens = WorldEnsemble::from_worlds(&g, vec![]);
        let _ = ens.set_reliability(&[], &[1]);
    }

    #[test]
    fn crn_uniform_matrix_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let u = crn_uniforms(3, 5, &mut rng);
        assert_eq!(u.len(), 3);
        assert!(u.iter().all(|row| row.len() == 5));
        assert!(u.iter().flatten().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn higher_bridge_probability_increases_cross_reliability() {
        let mut g = bridge_graph();
        let mut rng = StdRng::seed_from_u64(8);
        let uniforms = crn_uniforms(2000, g.num_edges(), &mut rng);
        let low = WorldEnsemble::from_uniforms(&g, &uniforms);
        let bridge = g.find_edge(2, 3).unwrap();
        g.set_prob(bridge, 0.95).unwrap();
        let high = WorldEnsemble::from_uniforms(&g, &uniforms);
        assert!(high.two_terminal_reliability(0, 5) > low.two_terminal_reliability(0, 5));
    }
}
