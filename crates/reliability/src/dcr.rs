//! Distance-constrained reachability (Jin, Liu, Ding, Wang — VLDB 2011,
//! the paper's ref [19], which also supplies its DBLP dataset model):
//! the probability that `t` is within `d` hops of `s` over the possible
//! worlds of an uncertain graph.
//!
//! DCR refines two-terminal reliability (`d = ∞`) and underlies
//! distance-aware variants of reliable kNN. Estimated by Monte-Carlo with
//! early-terminating BFS per sampled world.

use chameleon_stats::Summary;
use chameleon_ugraph::traversal::bfs_distances;
use chameleon_ugraph::{NodeId, UncertainGraph, WorldSampler, WorldView};
use rand::Rng;

/// Estimate of `Pr[dist(s, t) <= d]` with its Monte-Carlo standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcrEstimate {
    /// The estimated probability.
    pub probability: f64,
    /// Standard error of the estimate.
    pub std_error: f64,
    /// Number of worlds sampled.
    pub worlds: usize,
}

/// Estimates distance-constrained reachability for one `(s, t, d)` query.
///
/// # Panics
/// Panics if `s` or `t` is out of range or `num_worlds == 0`.
pub fn distance_constrained_reliability<R: Rng + ?Sized>(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    max_hops: u32,
    num_worlds: usize,
    rng: &mut R,
) -> DcrEstimate {
    let n = graph.num_nodes() as u32;
    assert!(s < n && t < n, "query nodes out of range");
    assert!(num_worlds > 0, "need at least one world");
    let mut summary = Summary::new();
    for _ in 0..num_worlds {
        let world = WorldSampler::sample(graph, rng);
        let view = WorldView::new(graph, &world);
        let hit = bounded_bfs_reaches(&view, s, t, max_hops);
        summary.push(if hit { 1.0 } else { 0.0 });
    }
    DcrEstimate {
        probability: summary.mean(),
        std_error: summary.std_error(),
        worlds: num_worlds,
    }
}

/// Batch variant: evaluates `Pr[dist(s, t) <= d]` for every `d` in
/// `hop_budgets` from one set of sampled worlds (the reuse trick again —
/// one BFS per world serves all budgets).
pub fn dcr_profile<R: Rng + ?Sized>(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    hop_budgets: &[u32],
    num_worlds: usize,
    rng: &mut R,
) -> Vec<DcrEstimate> {
    let n = graph.num_nodes() as u32;
    assert!(s < n && t < n, "query nodes out of range");
    assert!(num_worlds > 0, "need at least one world");
    let mut summaries: Vec<Summary> = vec![Summary::new(); hop_budgets.len()];
    for _ in 0..num_worlds {
        let world = WorldSampler::sample(graph, rng);
        let view = WorldView::new(graph, &world);
        let dist = bfs_distances(&view, s);
        let dt = dist[t as usize];
        for (i, &budget) in hop_budgets.iter().enumerate() {
            summaries[i].push(if dt <= budget { 1.0 } else { 0.0 });
        }
    }
    summaries
        .into_iter()
        .map(|summary| DcrEstimate {
            probability: summary.mean(),
            std_error: summary.std_error(),
            worlds: num_worlds,
        })
        .collect()
}

/// Early-terminating bounded BFS: does `t` lie within `max_hops` of `s`?
fn bounded_bfs_reaches(view: &WorldView<'_>, s: NodeId, t: NodeId, max_hops: u32) -> bool {
    if s == t {
        return true;
    }
    let n = view.num_nodes();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[s as usize] = 0;
    queue.push_back(s);
    while let Some(x) = queue.pop_front() {
        let dx = dist[x as usize];
        if dx >= max_hops {
            continue; // children would exceed the budget
        }
        for y in view.neighbors(x) {
            if dist[y as usize] == u32::MAX {
                if y == t {
                    return true;
                }
                dist[y as usize] = dx + 1;
                queue.push_back(y);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path(probs: &[f64]) -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(probs.len() + 1);
        for (i, &p) in probs.iter().enumerate() {
            g.add_edge(i as u32, i as u32 + 1, p).unwrap();
        }
        g
    }

    #[test]
    fn deterministic_path_respects_budget() {
        let g = path(&[1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(0);
        // dist(0, 3) = 3.
        let within_2 = distance_constrained_reliability(&g, 0, 3, 2, 50, &mut rng);
        assert_eq!(within_2.probability, 0.0);
        let within_3 = distance_constrained_reliability(&g, 0, 3, 3, 50, &mut rng);
        assert_eq!(within_3.probability, 1.0);
    }

    #[test]
    fn probabilistic_path_matches_product() {
        // Pr[dist(0,2) <= 2] = p1 * p2 = 0.42.
        let g = path(&[0.7, 0.6]);
        let mut rng = StdRng::seed_from_u64(1);
        let est = distance_constrained_reliability(&g, 0, 2, 2, 8000, &mut rng);
        assert!((est.probability - 0.42).abs() < 0.02, "{}", est.probability);
        assert!(est.std_error > 0.0 && est.std_error < 0.01);
    }

    #[test]
    fn budget_constrains_alternate_routes() {
        // Short risky route (1 hop, p=0.3) + long safe route (3 hops, p=1):
        // within 1 hop only the direct edge counts.
        let mut g = UncertainGraph::with_nodes(4);
        g.add_edge(0, 3, 0.3).unwrap();
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let hop1 = distance_constrained_reliability(&g, 0, 3, 1, 6000, &mut rng);
        assert!(
            (hop1.probability - 0.3).abs() < 0.02,
            "{}",
            hop1.probability
        );
        let hop3 = distance_constrained_reliability(&g, 0, 3, 3, 500, &mut rng);
        assert_eq!(hop3.probability, 1.0); // safe route always there
    }

    #[test]
    fn profile_is_monotone_in_budget() {
        let g = path(&[0.5, 0.5, 0.5, 0.5]);
        let mut rng = StdRng::seed_from_u64(3);
        let profile = dcr_profile(&g, 0, 4, &[1, 2, 3, 4, 10], 3000, &mut rng);
        for w in profile.windows(2) {
            assert!(w[0].probability <= w[1].probability + 1e-12);
        }
        // Budget < true distance ⇒ 0; budget ≥ n ⇒ plain reliability.
        assert_eq!(profile[0].probability, 0.0);
        assert!((profile[4].probability - 0.0625).abs() < 0.02);
    }

    #[test]
    fn source_equals_target() {
        let g = path(&[0.1]);
        let mut rng = StdRng::seed_from_u64(4);
        let est = distance_constrained_reliability(&g, 0, 0, 0, 10, &mut rng);
        assert_eq!(est.probability, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        let g = path(&[0.5]);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = distance_constrained_reliability(&g, 0, 9, 1, 10, &mut rng);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_worlds() {
        let g = path(&[0.5]);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = distance_constrained_reliability(&g, 0, 1, 1, 0, &mut rng);
    }
}
