//! Delta-updated world ensembles (DESIGN.md §6d).
//!
//! A [`WorldEnsemble`] built from a CRN [`UniformMatrix`] is a pure
//! function of `(uniforms, edge probabilities)`: edge `e` is present in
//! world `w` iff `uniforms[w][e] < p(e)`. When only a few probabilities
//! move — one GenObf σ-probe to the next perturbs the same candidate set —
//! rebuilding every world from scratch re-derives bits that cannot have
//! changed. [`IncrementalEnsemble`] persists the uniform draws alongside
//! the world matrix and, per update:
//!
//! 1. **Flip scan** (serial, O(|changes|·N)): for every changed edge and
//!    world, flips the presence bit exactly when the stored uniform
//!    crosses the threshold ([`SamplePlan::resample_edges_into`]), and
//!    classifies each world as *clean* (no flips), *insert-only*, or
//!    *rebuild* (at least one deletion).
//! 2. **Label repair** (parallel, [`WORLD_CHUNK`] blocks): clean worlds
//!    copy their cached labels/sizes/pair counts; insert-only worlds merge
//!    old component labels with a union–find over the (few) dense labels
//!    instead of the (many) vertices; deletion-touched worlds rerun the
//!    full union–find.
//!
//! The result is **bit-identical** to
//! [`WorldEnsemble::from_uniform_matrix`] on the updated graph with the
//! same uniforms, for every thread count. Insert-only label repair is
//! exact because dense labels are assigned in vertex-first-appearance
//! order: a merged component first appears at the first vertex of its
//! minimal old label, so renumbering merged roots in ascending old-label
//! order reproduces the from-scratch labelling.
//!
//! **Superset convention**: edges that may be *inserted* later must
//! already exist in the graph with `p = 0` (an impossible edge samples to
//! absent in every world and changes nothing). Insertion is then the
//! probability update `0 → p`. This keeps edge ids — and hence uniform
//! columns — stable across updates.

use crate::ensemble::{crn_uniform_matrix, UniformMatrix, WorldEnsemble, WORLD_CHUNK};
use chameleon_stats::parallel;
use chameleon_stats::SeedSequence;
use chameleon_ugraph::{EdgeId, SamplePlan, UncertainGraph, UnionFind};

/// How one update batch touched one world, decided during the flip scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorldDelta {
    /// No bit flipped: every cached structure is still valid.
    Clean,
    /// Only insertions: labels are repairable by merging old components.
    /// The payload indexes the per-update added-edge arena.
    Insert { start: usize, end: usize },
    /// At least one deletion: components may have split; full relabel.
    Rebuild,
}

/// A [`WorldEnsemble`] that can absorb edge-probability changes without
/// resampling, staying bit-identical to a from-scratch CRN rebuild.
///
/// See the [module docs](self) for the algorithm and the superset
/// convention for insertions.
#[derive(Debug, Clone)]
pub struct IncrementalEnsemble {
    /// Width/word bookkeeping for the flip kernel (built once; only
    /// `words_per_world` is consulted after construction).
    plan: SamplePlan,
    /// Current per-edge probabilities, kept in edge-id order.
    probs: Vec<f64>,
    /// The persisted CRN draws; row `w` drives world `w` forever.
    uniforms: UniformMatrix,
    ensemble: WorldEnsemble,
    /// Endpoint SoA of the (structurally fixed) graph.
    us: Vec<u32>,
    vs: Vec<u32>,
    /// Scratch reused across updates: per-world delta classification and
    /// the arena of per-world inserted edge ids.
    deltas: Vec<WorldDelta>,
    added: Vec<u32>,
}

impl IncrementalEnsemble {
    /// Builds the ensemble from `num_worlds` freshly drawn CRN uniforms on
    /// the stream `(seed, "crn-uniforms")`. Deterministic in `seed` and
    /// bit-identical for every `threads` value.
    pub fn build(graph: &UncertainGraph, num_worlds: usize, seed: u64, threads: usize) -> Self {
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng("crn-uniforms");
        let uniforms = crn_uniform_matrix(num_worlds, graph.num_edges(), &mut rng);
        Self::from_uniform_matrix(graph, uniforms, threads)
    }

    /// Wraps caller-provided uniforms (taking ownership — the draws are
    /// the state that makes delta updates possible).
    ///
    /// # Panics
    /// Panics if the matrix stride is smaller than the graph's edge count.
    pub fn from_uniform_matrix(
        graph: &UncertainGraph,
        uniforms: UniformMatrix,
        threads: usize,
    ) -> Self {
        let ensemble = WorldEnsemble::from_uniform_matrix_threads(graph, &uniforms, threads);
        let (us, vs) = graph.endpoint_soa();
        Self {
            plan: SamplePlan::new(graph),
            probs: graph.edges().iter().map(|e| e.p).collect(),
            uniforms,
            ensemble,
            us,
            vs,
            deltas: Vec::new(),
            added: Vec::new(),
        }
    }

    /// Applies a batch of probability changes `(edge id, new probability)`
    /// and repairs the cached connectivity structure.
    ///
    /// Duplicate edge ids within one batch chain left to right (each entry
    /// sees the probability left by the previous one). After the call the
    /// ensemble is bit-identical — worlds, labels, component sizes and
    /// connected-pair counts — to `WorldEnsemble::from_uniform_matrix` on
    /// a graph carrying the updated probabilities, for every thread count.
    ///
    /// # Panics
    /// Panics on an out-of-range edge id or a probability outside `[0, 1]`.
    pub fn update_edges(&mut self, changes: &[(EdgeId, f64)], threads: usize) {
        if changes.is_empty() {
            return;
        }
        let _span = chameleon_obs::span!("incremental.update_edges");

        // Chain the batch against the live probability vector so repeated
        // edges compose, and remember (old, new) per entry for the
        // threshold-crossing test.
        let mut chained: Vec<(u32, f64, f64)> = Vec::with_capacity(changes.len());
        for &(e, new_p) in changes {
            let slot = self
                .probs
                .get_mut(e as usize)
                .unwrap_or_else(|| panic!("edge id {e} out of range"));
            assert!(
                new_p.is_finite() && (0.0..=1.0).contains(&new_p),
                "probability {new_p} is not in [0, 1]"
            );
            chained.push((e, *slot, new_p));
            *slot = new_p;
        }

        // Phase 1: flip the crossed bits world by world and classify.
        let n = self.ensemble.worlds.num_worlds();
        self.deltas.clear();
        self.deltas.reserve(n);
        self.added.clear();
        let mut flips = 0u64;
        let mut rebuilds = 0u64;
        for w in 0..n {
            let row_uniforms = self.uniforms.row(w);
            let delta = self.plan.resample_edges_into(
                self.ensemble.worlds.row_mut(w),
                row_uniforms,
                &chained,
            );
            flips += delta.flipped as u64;
            self.deltas.push(if delta.flipped == 0 {
                WorldDelta::Clean
            } else if delta.removed > 0 {
                rebuilds += 1;
                WorldDelta::Rebuild
            } else {
                // Every crossing was an insertion; re-derive which edges
                // appeared (crossings alternate direction per edge, so
                // with zero removals each inserted edge is distinct).
                let start = self.added.len();
                for &(e, old_p, new_p) in &chained {
                    let u = row_uniforms[e as usize];
                    if u < new_p && u >= old_p {
                        self.added.push(e);
                    }
                }
                WorldDelta::Insert {
                    start,
                    end: self.added.len(),
                }
            });
        }
        let dirty = self
            .deltas
            .iter()
            .filter(|d| **d != WorldDelta::Clean)
            .count();
        chameleon_obs::counter!("incremental.bit_flips").add(flips);
        chameleon_obs::counter!("incremental.worlds_dirty").add(dirty as u64);
        chameleon_obs::counter!("incremental.worlds_rebuilt").add(rebuilds);
        if dirty == 0 {
            // Labels depend on the world bits only; nothing flipped, so
            // every cached structure is still exact.
            return;
        }

        // Phase 2: repair labels/sizes/pairs per world, in the same fixed
        // WORLD_CHUNK blocks as a from-scratch analysis so the stitched
        // arenas are thread-count invariant.
        let nn = self.ensemble.num_nodes;
        let ensemble = &self.ensemble;
        let deltas = &self.deltas;
        let added = &self.added;
        let (us, vs) = (&self.us, &self.vs);
        let repaired = parallel::map_chunks_scratch(
            n,
            WORLD_CHUNK,
            threads,
            || (UnionFind::new(nn), Vec::<u32>::new(), Vec::<u32>::new()),
            |(uf, label_scratch, root_new), _, range| {
                let k = range.len();
                let mut labels = Vec::with_capacity(k * nn);
                let mut sizes = Vec::new();
                let mut ncomps = Vec::with_capacity(k);
                let mut pairs = Vec::with_capacity(k);
                for w in range {
                    match deltas[w] {
                        WorldDelta::Clean => {
                            labels.extend_from_slice(ensemble.labels(w));
                            let old_sizes = ensemble.component_sizes(w);
                            sizes.extend_from_slice(old_sizes);
                            ncomps.push(old_sizes.len());
                            pairs.push(ensemble.connected_pairs(w));
                        }
                        WorldDelta::Rebuild => {
                            uf.reset();
                            ensemble.worlds.world(w).union_into(us, vs, uf);
                            let (ncomp, cc) =
                                uf.append_labels_and_sizes(&mut labels, &mut sizes, label_scratch);
                            ncomps.push(ncomp);
                            pairs.push(cc);
                        }
                        WorldDelta::Insert { start, end } => {
                            let old_labels = ensemble.labels(w);
                            let old_sizes = ensemble.component_sizes(w);
                            let ncomp_old = old_sizes.len();
                            // Union over *old labels*, not vertices: the
                            // inserted edges can only merge components.
                            uf.reset();
                            for &e in &added[start..end] {
                                uf.union(
                                    old_labels[us[e as usize] as usize],
                                    old_labels[vs[e as usize] as usize],
                                );
                            }
                            // Renumber merged roots in ascending old-label
                            // order; old labels are dense in vertex-first-
                            // appearance order, so this reproduces the
                            // from-scratch label assignment exactly.
                            root_new.clear();
                            root_new.resize(ncomp_old, u32::MAX);
                            let base = sizes.len();
                            let mut next = 0u32;
                            for l in 0..ncomp_old as u32 {
                                let r = uf.find(l) as usize;
                                if root_new[r] == u32::MAX {
                                    root_new[r] = next;
                                    sizes.push(0);
                                    next += 1;
                                }
                                sizes[base + root_new[r] as usize] += old_sizes[l as usize];
                            }
                            let cc: u64 = sizes[base..]
                                .iter()
                                .map(|&s| s as u64 * (s as u64 - 1) / 2)
                                .sum();
                            labels.extend(
                                old_labels.iter().map(|&ol| root_new[uf.find(ol) as usize]),
                            );
                            ncomps.push(next as usize);
                            pairs.push(cc);
                        }
                    }
                }
                (labels, sizes, ncomps, pairs)
            },
        );

        let mut labels = Vec::with_capacity(n * nn);
        let mut component_sizes = Vec::new();
        let mut size_offsets = Vec::with_capacity(n + 1);
        size_offsets.push(0usize);
        let mut connected_pairs = Vec::with_capacity(n);
        for (l, sizes, ncomps, pairs) in repaired {
            labels.extend_from_slice(&l);
            component_sizes.extend_from_slice(&sizes);
            for ncomp in ncomps {
                let last = *size_offsets.last().expect("seeded with 0");
                size_offsets.push(last + ncomp);
            }
            connected_pairs.extend_from_slice(&pairs);
        }
        self.ensemble.labels = labels;
        self.ensemble.component_sizes = component_sizes;
        self.ensemble.size_offsets = size_offsets;
        self.ensemble.connected_pairs = connected_pairs;
    }

    /// Diffs `graph`'s probabilities against the current state and applies
    /// the difference via [`IncrementalEnsemble::update_edges`]. The graph
    /// must be structurally identical (same edges, same ids) — only
    /// probabilities may differ.
    ///
    /// # Panics
    /// Panics if the edge count disagrees.
    pub fn update_to(&mut self, graph: &UncertainGraph, threads: usize) {
        assert_eq!(
            graph.num_edges(),
            self.probs.len(),
            "graph/ensemble edge-count mismatch"
        );
        let changes: Vec<(EdgeId, f64)> = graph
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, e)| e.p != self.probs[*i])
            .map(|(i, e)| (i as EdgeId, e.p))
            .collect();
        self.update_edges(&changes, threads);
    }

    /// The maintained ensemble (always consistent with
    /// [`IncrementalEnsemble::probs`]).
    pub fn ensemble(&self) -> &WorldEnsemble {
        &self.ensemble
    }

    /// Current per-edge probabilities, in edge-id order.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// The persisted CRN uniforms driving every world.
    pub fn uniforms(&self) -> &UniformMatrix {
        &self.uniforms
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.ensemble.len()
    }

    /// True when the ensemble holds no worlds.
    pub fn is_empty(&self) -> bool {
        self.ensemble.is_empty()
    }

    /// Consumes self, yielding the maintained ensemble.
    pub fn into_ensemble(self) -> WorldEnsemble {
        self.ensemble
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Asserts every cached structure of `inc` equals a from-scratch CRN
    /// build over `graph` with the same uniforms.
    fn assert_matches_scratch(inc: &IncrementalEnsemble, graph: &UncertainGraph) {
        let scratch = WorldEnsemble::from_uniform_matrix(graph, inc.uniforms());
        let n = scratch.len();
        assert_eq!(inc.len(), n);
        for w in 0..n {
            assert_eq!(
                inc.ensemble().world(w).words(),
                scratch.world(w).words(),
                "world {w} bits diverged"
            );
            assert_eq!(
                inc.ensemble().labels(w),
                scratch.labels(w),
                "world {w} labels diverged"
            );
            assert_eq!(
                inc.ensemble().component_sizes(w),
                scratch.component_sizes(w),
                "world {w} sizes diverged"
            );
        }
        assert_eq!(
            inc.ensemble().connected_pairs_all(),
            scratch.connected_pairs_all()
        );
    }

    /// A graph with some impossible (p = 0) edges reserved for insertion.
    fn seed_graph() -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(10);
        let mut rng = StdRng::seed_from_u64(7);
        let mut added = 0;
        'outer: for u in 0..10u32 {
            for v in (u + 1)..10 {
                let p = match added % 4 {
                    0 => 0.0, // superset slot: insertable later
                    1 => 1.0,
                    _ => rng.gen::<f64>(),
                };
                g.add_edge(u, v, p).unwrap();
                added += 1;
                if added == 30 {
                    break 'outer;
                }
            }
        }
        g
    }

    #[test]
    fn update_edges_is_bit_identical_to_from_scratch() {
        let mut graph = seed_graph();
        let mut inc = IncrementalEnsemble::build(&graph, 64, 42, 2);
        assert_matches_scratch(&inc, &graph);

        let mut rng = StdRng::seed_from_u64(99);
        for _round in 0..25 {
            let mut changes = Vec::new();
            for _ in 0..rng.gen_range(1..6) {
                let e = rng.gen_range(0..graph.num_edges()) as u32;
                let p = match rng.gen_range(0..5) {
                    0 => 0.0, // deletion
                    1 => 1.0, // certain insertion
                    _ => rng.gen::<f64>(),
                };
                changes.push((e, p));
                graph.set_prob(e, p).unwrap();
            }
            inc.update_edges(&changes, 2);
            assert_matches_scratch(&inc, &graph);
        }
    }

    #[test]
    fn duplicate_edges_in_one_batch_chain() {
        let mut graph = seed_graph();
        let mut inc = IncrementalEnsemble::build(&graph, 32, 5, 1);
        // Same edge three times: only the last value survives, and the
        // intermediate crossings must not corrupt the bits.
        let e = 2u32;
        let changes = [(e, 0.9), (e, 0.05), (e, 0.6)];
        for &(e, p) in &changes {
            graph.set_prob(e, p).unwrap();
        }
        inc.update_edges(&changes, 1);
        assert!((inc.probs()[e as usize] - 0.6).abs() < 1e-15);
        assert_matches_scratch(&inc, &graph);
    }

    #[test]
    fn insert_only_batches_use_label_repair() {
        let mut graph = seed_graph();
        let mut inc = IncrementalEnsemble::build(&graph, 48, 11, 2);
        // Raising a p=0 edge to certainty inserts it in *every* world —
        // the pure insert-repair path, no rebuilds possible.
        let zero_edge = graph
            .edges()
            .iter()
            .position(|e| e.p == 0.0)
            .expect("seed graph reserves p=0 slots") as u32;
        graph.set_prob(zero_edge, 1.0).unwrap();
        inc.update_edges(&[(zero_edge, 1.0)], 2);
        assert_matches_scratch(&inc, &graph);
    }

    #[test]
    fn update_to_diffs_the_graph() {
        let mut graph = seed_graph();
        let mut inc = IncrementalEnsemble::build(&graph, 32, 3, 1);
        graph.set_prob(0, 0.123).unwrap();
        graph.set_prob(7, 0.0).unwrap();
        inc.update_to(&graph, 1);
        assert!((inc.probs()[0] - 0.123).abs() < 1e-15);
        assert_matches_scratch(&inc, &graph);
    }

    #[test]
    fn updates_are_thread_count_invariant() {
        let mut graph = seed_graph();
        let mut a = IncrementalEnsemble::build(&graph, 64, 17, 1);
        let mut b = IncrementalEnsemble::build(&graph, 64, 17, 8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let e = rng.gen_range(0..graph.num_edges()) as u32;
            let p = rng.gen::<f64>();
            graph.set_prob(e, p).unwrap();
            a.update_edges(&[(e, p)], 1);
            b.update_edges(&[(e, p)], 8);
        }
        for w in 0..a.len() {
            assert_eq!(a.ensemble().world(w).words(), b.ensemble().world(w).words());
            assert_eq!(a.ensemble().labels(w), b.ensemble().labels(w));
            assert_eq!(
                a.ensemble().component_sizes(w),
                b.ensemble().component_sizes(w)
            );
        }
        assert_eq!(
            a.ensemble().connected_pairs_all(),
            b.ensemble().connected_pairs_all()
        );
        assert_matches_scratch(&a, &graph);
    }

    #[test]
    fn empty_and_noop_updates_touch_nothing() {
        let graph = seed_graph();
        let mut inc = IncrementalEnsemble::build(&graph, 16, 23, 1);
        let before = inc.ensemble().clone();
        inc.update_edges(&[], 1);
        // Re-assert an unchanged probability: no uniform can cross.
        let p0 = inc.probs()[0];
        inc.update_edges(&[(0, p0)], 1);
        assert_eq!(
            inc.ensemble().connected_pairs_all(),
            before.connected_pairs_all()
        );
        for w in 0..inc.len() {
            assert_eq!(inc.ensemble().labels(w), before.labels(w));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let graph = seed_graph();
        let mut inc = IncrementalEnsemble::build(&graph, 4, 1, 1);
        inc.update_edges(&[(10_000, 0.5)], 1);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn invalid_probability_panics() {
        let graph = seed_graph();
        let mut inc = IncrementalEnsemble::build(&graph, 4, 1, 1);
        inc.update_edges(&[(0, 1.5)], 1);
    }
}
