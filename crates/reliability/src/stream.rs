//! Strip-streamed ensemble analysis (DESIGN.md §12).
//!
//! [`EnsembleStream`] makes ensemble memory O(strip) instead of
//! O(worlds): worlds are sampled chunk-by-chunk into a delta+RLE
//! [`CompressedWorlds`] store (the only per-world state that persists),
//! then decoded and analyzed one fixed-size strip at a time through
//! streaming accumulators. Every statistic the in-RAM [`WorldEnsemble`]
//! exposes is reproduced **bit-identically**:
//!
//! * Sampling reuses the per-chunk CRN streams of
//!   [`WorldEnsemble::sample_seeded`] (`(seed, "world-chunk", c)` with the
//!   *global* chunk index `c`), so the decoded world bits are the same
//!   bits, in the same order.
//! * Strip boundaries are aligned to [`STRIP_ALIGN`] worlds — the least
//!   common multiple of the sampling/analysis chunk
//!   ([`WORLD_CHUNK`](crate::WORLD_CHUNK)) and
//!   the ERR estimators' world chunk (64) — so per-chunk fold sequences
//!   inside a strip coincide with the global fold sequences of the in-RAM
//!   path.
//! * Integer statistics (reliability hit counts) are order-free;
//!   sequential f64 folds (expected connected pairs, ERR partials) replay
//!   identical additions because strips are visited in ascending world
//!   order.
//!
//! The compressed store registers its bytes against the
//! `chameleon_stats::alloc_guard` ensemble gauge fallibly, and each
//! strip's transient arenas are prechecked against the configured
//! ceiling, so `--max-ensemble-bytes` is a hard contract rather than a
//! hint.

use crate::ensemble::WorldEnsemble;
use chameleon_stats::alloc_guard::{self, BudgetExceeded, Tracked};
use chameleon_ugraph::{CompressedWorlds, NodeId, SamplePlan, UncertainGraph, WorldMatrix};

/// Strip sizes are rounded up to a multiple of this many worlds: the
/// least common multiple of [`WORLD_CHUNK`] (sampling/labeling) and the
/// ERR estimators' 64-world chunk. Alignment makes every in-strip chunk
/// boundary a global chunk boundary, which is what keeps per-chunk RNG
/// streams and fold orders identical to the in-RAM path.
pub const STRIP_ALIGN: usize = 64;

/// Rounds a requested strip size up to the [`STRIP_ALIGN`] contract
/// (`strip = 1` therefore runs 64-world strips; the docs say so).
pub fn align_strip(strip_worlds: usize) -> usize {
    strip_worlds.max(1).div_ceil(STRIP_ALIGN) * STRIP_ALIGN
}

/// A sampled ensemble held in compressed form and analyzed strip by
/// strip. See the module docs for the bit-identity contract.
#[derive(Debug)]
pub struct EnsembleStream<'g> {
    graph: &'g UncertainGraph,
    plan: SamplePlan,
    store: CompressedWorlds,
    num_worlds: usize,
    strip_worlds: usize,
    threads: usize,
    /// Gauge registration for the compressed store.
    tracked: Tracked,
}

impl<'g> EnsembleStream<'g> {
    /// Samples `n` worlds of `graph` from `seed` into compressed storage,
    /// strip by strip. The sampled bits are identical to
    /// [`WorldEnsemble::sample_seeded`] with the same `(graph, n, seed)`.
    /// `strip_worlds` is rounded up via [`align_strip`].
    ///
    /// # Errors
    /// [`BudgetExceeded`] when the compressed store (or a transient
    /// sampling strip) would cross the configured ensemble byte ceiling.
    pub fn sample(
        graph: &'g UncertainGraph,
        n: usize,
        seed: u64,
        threads: usize,
        strip_worlds: usize,
    ) -> Result<Self, BudgetExceeded> {
        let _span = chameleon_obs::span!("ensemble.stream_sample");
        chameleon_obs::counter!("ensemble.worlds_sampled").add(n as u64);
        let strip_worlds = align_strip(strip_worlds);
        let plan = SamplePlan::new(graph);
        let mut store = CompressedWorlds::new(&plan);
        let mut tracked = Tracked::try_register(store.compressed_bytes())?;
        let mut offset = 0usize;
        while offset < n {
            let len = strip_worlds.min(n - offset);
            // The transient strip matrix lives only for this iteration.
            alloc_guard::check_ensemble_budget(
                len * plan.words_per_world() * std::mem::size_of::<u64>(),
            )?;
            let strip = WorldEnsemble::sample_strip_matrix(&plan, seed, offset, len, threads);
            for w in 0..len {
                store.push_world(strip.row(w));
            }
            // Re-register at the grown size (delta accounting would drift
            // under Vec growth; a fresh guard is exact).
            drop(tracked);
            tracked = Tracked::try_register(store.compressed_bytes())?;
            offset += len;
        }
        chameleon_obs::counter!("ensemble.stream_compressed_bytes")
            .add(store.compressed_bytes() as u64);
        Ok(Self {
            graph,
            plan,
            store,
            num_worlds: n,
            strip_worlds,
            threads,
            tracked,
        })
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.num_worlds
    }

    /// True when the stream holds no worlds.
    pub fn is_empty(&self) -> bool {
        self.num_worlds == 0
    }

    /// The effective (aligned) strip size.
    pub fn strip_worlds(&self) -> usize {
        self.strip_worlds
    }

    /// Bytes the compressed world store occupies.
    pub fn compressed_bytes(&self) -> usize {
        self.store.compressed_bytes()
    }

    /// `uncompressed / compressed` size ratio of the world store.
    pub fn compression_ratio(&self) -> f64 {
        self.store.compression_ratio()
    }

    /// Bytes registered against the ensemble gauge for this stream.
    pub fn tracked_bytes(&self) -> usize {
        self.tracked.bytes()
    }

    /// Decodes and analyzes the ensemble one strip at a time, calling
    /// `f(world_offset, &strip_ensemble)` for each strip in ascending
    /// world order. The strip ensembles are bit-identical to the
    /// corresponding world ranges of the in-RAM ensemble (same worlds,
    /// labels, component sizes, connected-pair counts).
    ///
    /// # Errors
    /// [`BudgetExceeded`] when a strip's arenas would cross the ceiling
    /// (the strip is then not built).
    pub fn for_each_strip<F: FnMut(usize, &WorldEnsemble)>(
        &self,
        mut f: F,
    ) -> Result<(), BudgetExceeded> {
        let _span = chameleon_obs::span!("ensemble.stream_analyze");
        let mut offset = 0usize;
        while offset < self.num_worlds {
            let len = self.strip_worlds.min(self.num_worlds - offset);
            alloc_guard::check_ensemble_budget(WorldEnsemble::estimate_arena_bytes(
                self.graph, len,
            ))?;
            let mut matrix = WorldMatrix::zeroed(len, self.plan.num_edges());
            for w in 0..len {
                self.store.decode_into(offset + w, matrix.row_mut(w));
            }
            let strip = WorldEnsemble::from_matrix_threads(self.graph, matrix, self.threads);
            f(offset, &strip);
            offset += len;
        }
        Ok(())
    }

    /// Strip-streamed [`WorldEnsemble::two_terminal_reliability`]
    /// (bit-identical: integer hit counts).
    pub fn two_terminal_reliability(&self, u: NodeId, v: NodeId) -> Result<f64, BudgetExceeded> {
        Ok(self.reliability_many(&[(u, v)])?[0])
    }

    /// Strip-streamed [`WorldEnsemble::reliability_many`] (bit-identical:
    /// the per-strip kernel is the same loop, and hit counts are
    /// integers).
    pub fn reliability_many(&self, pairs: &[(NodeId, NodeId)]) -> Result<Vec<f64>, BudgetExceeded> {
        let mut acc = PairReliabilityAccum::new(pairs.to_vec());
        self.for_each_strip(|_, strip| acc.fold(strip))?;
        Ok(acc.finish())
    }

    /// Strip-streamed [`WorldEnsemble::set_reliability`] (bit-identical).
    ///
    /// # Panics
    /// Panics if either set is empty (same contract as the in-RAM path).
    pub fn set_reliability(
        &self,
        sources: &[NodeId],
        targets: &[NodeId],
    ) -> Result<f64, BudgetExceeded> {
        let mut acc = SetReliabilityAccum::new(sources.to_vec(), targets.to_vec());
        self.for_each_strip(|_, strip| acc.fold(strip))?;
        Ok(acc.finish())
    }

    /// Strip-streamed [`WorldEnsemble::expected_connected_pairs`]
    /// (bit-identical: the same left-to-right f64 sum over worlds in
    /// ascending order).
    pub fn expected_connected_pairs(&self) -> Result<f64, BudgetExceeded> {
        let mut acc = ConnectedPairsAccum::new();
        self.for_each_strip(|_, strip| acc.fold(strip))?;
        Ok(acc.finish())
    }
}

/// Streaming accumulator for [`WorldEnsemble::reliability_many`] /
/// `two_terminal_reliability`: u32 hit counters folded strip by strip
/// through the in-RAM kernel.
#[derive(Debug, Clone)]
pub struct PairReliabilityAccum {
    pairs: Vec<(NodeId, NodeId)>,
    hits: Vec<u32>,
    worlds: usize,
}

impl PairReliabilityAccum {
    /// An empty accumulator over `pairs`.
    pub fn new(pairs: Vec<(NodeId, NodeId)>) -> Self {
        let hits = vec![0u32; pairs.len()];
        Self {
            pairs,
            hits,
            worlds: 0,
        }
    }

    /// Folds one strip's hit counts in (the same blocked kernel the
    /// in-RAM path uses).
    pub fn fold(&mut self, strip: &WorldEnsemble) {
        strip.accumulate_pair_hits(&self.pairs, &mut self.hits);
        self.worlds += strip.len();
    }

    /// Per-pair reliabilities (`0.0` for a zero-world stream, matching
    /// the in-RAM degenerate case).
    pub fn finish(self) -> Vec<f64> {
        let n = self.worlds;
        if n == 0 {
            return vec![0.0; self.pairs.len()];
        }
        self.hits.into_iter().map(|h| h as f64 / n as f64).collect()
    }
}

/// Streaming accumulator for [`WorldEnsemble::set_reliability`].
#[derive(Debug, Clone)]
pub struct SetReliabilityAccum {
    sources: Vec<NodeId>,
    targets: Vec<NodeId>,
    scratch: Vec<u32>,
    hits: usize,
    worlds: usize,
}

impl SetReliabilityAccum {
    /// An empty accumulator for `sources` → `targets`.
    ///
    /// # Panics
    /// Panics if either set is empty (same contract as the in-RAM path).
    pub fn new(sources: Vec<NodeId>, targets: Vec<NodeId>) -> Self {
        assert!(
            !sources.is_empty() && !targets.is_empty(),
            "set reliability needs non-empty node sets"
        );
        let scratch = Vec::with_capacity(sources.len());
        Self {
            sources,
            targets,
            scratch,
            hits: 0,
            worlds: 0,
        }
    }

    /// Folds one strip's hit count in.
    pub fn fold(&mut self, strip: &WorldEnsemble) {
        self.hits += strip.count_set_hits(&self.sources, &self.targets, &mut self.scratch);
        self.worlds += strip.len();
    }

    /// The set reliability (`0.0` for a zero-world stream).
    pub fn finish(self) -> f64 {
        if self.worlds == 0 {
            return 0.0;
        }
        self.hits as f64 / self.worlds as f64
    }
}

/// Streaming accumulator for
/// [`WorldEnsemble::expected_connected_pairs`]: carries the sequential
/// world-order f64 sum, so folding strips in ascending order replays the
/// exact additions of the in-RAM `iter().sum::<f64>()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectedPairsAccum {
    sum: f64,
    worlds: usize,
}

impl ConnectedPairsAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one strip's connected-pair counts in, in world order.
    pub fn fold(&mut self, strip: &WorldEnsemble) {
        for &c in strip.connected_pairs_all() {
            self.sum += c as f64;
        }
        self.worlds += strip.len();
    }

    /// The expected connected pairs (`0.0` for a zero-world stream).
    pub fn finish(self) -> f64 {
        if self.worlds == 0 {
            return 0.0;
        }
        self.sum / self.worlds as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_ugraph::GraphBuilder;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(nodes: usize, edges: usize, seed: u64) -> UncertainGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(nodes);
        while b.num_edges() < edges {
            let u = rng.gen_range(0..nodes as u32);
            let v = rng.gen_range(0..nodes as u32);
            if u == v {
                continue;
            }
            let p = match rng.gen_range(0..5) {
                0 => 0.0,
                1 => 1.0,
                _ => rng.gen::<f64>(),
            };
            let _ = b.add_edge(u, v, p);
        }
        b.build()
    }

    fn assert_stream_matches_in_ram(
        g: &UncertainGraph,
        n: usize,
        seed: u64,
        threads: usize,
        strip: usize,
    ) {
        let in_ram = WorldEnsemble::sample_seeded(g, n, seed, threads);
        let stream = EnsembleStream::sample(g, n, seed, threads, strip).unwrap();
        assert_eq!(stream.len(), n);

        // Worlds, labels, sizes, connected pairs: strip-by-strip equality
        // against the corresponding in-RAM world ranges.
        stream
            .for_each_strip(|offset, s| {
                for w in 0..s.len() {
                    let gw = offset + w;
                    assert_eq!(s.world(w), in_ram.world(gw), "world {gw}");
                    assert_eq!(s.labels(w), in_ram.labels(gw), "labels {gw}");
                    assert_eq!(
                        s.component_sizes(w),
                        in_ram.component_sizes(gw),
                        "sizes {gw}"
                    );
                    assert_eq!(s.connected_pairs(w), in_ram.connected_pairs(gw), "cc {gw}");
                }
            })
            .unwrap();

        // Query bit-equality.
        let nn = g.num_nodes();
        if nn >= 2 {
            let pairs: Vec<(u32, u32)> = (0..nn as u32 - 1).map(|u| (u, u + 1)).collect();
            let streamed = stream.reliability_many(&pairs).unwrap();
            let dense = in_ram.reliability_many(&pairs);
            for (i, (a, b)) in streamed.iter().zip(&dense).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "pair {i}");
            }
            assert_eq!(
                stream.two_terminal_reliability(0, 1).unwrap().to_bits(),
                in_ram.two_terminal_reliability(0, 1).to_bits()
            );
            let mid = (nn / 2) as u32;
            let sources: Vec<u32> = (0..mid).collect();
            let targets: Vec<u32> = (mid..nn as u32).collect();
            if !sources.is_empty() && !targets.is_empty() {
                assert_eq!(
                    stream
                        .set_reliability(&sources, &targets)
                        .unwrap()
                        .to_bits(),
                    in_ram.set_reliability(&sources, &targets).to_bits()
                );
            }
        }
        assert_eq!(
            stream.expected_connected_pairs().unwrap().to_bits(),
            in_ram.expected_connected_pairs().to_bits()
        );
    }

    #[test]
    fn align_strip_contract() {
        assert_eq!(align_strip(0), STRIP_ALIGN);
        assert_eq!(align_strip(1), STRIP_ALIGN);
        assert_eq!(align_strip(STRIP_ALIGN), STRIP_ALIGN);
        assert_eq!(align_strip(STRIP_ALIGN + 1), 2 * STRIP_ALIGN);
        assert_eq!(align_strip(1000), 1024);
    }

    #[test]
    fn strip_one_ragged_and_oversized_match_in_ram() {
        let g = random_graph(24, 60, 3);
        // n deliberately not a multiple of the aligned strip: the final
        // strip is ragged. strip=1 (rounds to 64), a mid size, and
        // strip ≥ n (single strip) all match.
        let n = 2 * STRIP_ALIGN + 17;
        for strip in [1, STRIP_ALIGN, 100, n, 10 * n] {
            assert_stream_matches_in_ram(&g, n, 42, 1, strip);
        }
    }

    #[test]
    fn threads_do_not_change_streamed_results() {
        let g = random_graph(20, 50, 9);
        let n = STRIP_ALIGN + 9;
        for threads in [1, 8] {
            assert_stream_matches_in_ram(&g, n, 7, threads, 70);
        }
    }

    #[test]
    fn empty_graph_and_zero_worlds() {
        let g = UncertainGraph::with_nodes(0);
        let stream = EnsembleStream::sample(&g, 0, 1, 1, 64).unwrap();
        assert!(stream.is_empty());
        assert_eq!(stream.expected_connected_pairs().unwrap(), 0.0);

        let g = UncertainGraph::with_nodes(4); // edgeless but with nodes
        assert_stream_matches_in_ram(&g, STRIP_ALIGN + 5, 11, 2, 64);
    }

    #[test]
    fn all_deterministic_graph_matches_and_compresses() {
        let mut b = GraphBuilder::new(0);
        for i in 0..200u32 {
            b.add_edge(i, i + 1, 1.0).unwrap();
        }
        let g = b.build();
        assert_stream_matches_in_ram(&g, 3 * STRIP_ALIGN, 5, 2, 64);
        let stream = EnsembleStream::sample(&g, 3 * STRIP_ALIGN, 5, 1, 64).unwrap();
        // Worlds equal the template: near-total compression.
        assert!(
            stream.compression_ratio() > 2.0,
            "{}",
            stream.compression_ratio()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// Strip-streamed results equal the in-RAM path bit-for-bit over
        /// random graphs, strip sizes, world counts, and thread counts.
        #[test]
        fn streamed_equals_in_ram(
            nodes in 2usize..24,
            edge_target in 0usize..60,
            seed in any::<u64>(),
            n in 1usize..(3 * STRIP_ALIGN),
            strip in 1usize..200,
            eight_threads in any::<bool>(),
        ) {
            let threads = if eight_threads { 8 } else { 1 };
            let g = random_graph(nodes, edge_target.min(nodes * (nodes - 1) / 2), seed);
            assert_stream_matches_in_ram(&g, n, seed ^ 0x9e37, threads, strip);
        }
    }
}
