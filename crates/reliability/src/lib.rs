//! Monte-Carlo reliability estimation and structural metrics for uncertain
//! graphs.
//!
//! Two-terminal reliability — the probability that a node pair is connected
//! over the possible worlds of an uncertain graph (paper Definition 1) — is
//! `#P`-hard to compute exactly, so like the paper we estimate it by
//! sampling N possible worlds (N = 1000 by default, the paper's setting).
//!
//! * [`WorldEnsemble`] — a reusable set of sampled worlds with cached
//!   per-world component labels; all reliability queries and the ERR
//!   estimator of the core crate run off one ensemble (the "reused
//!   sampling" idea of paper Algorithm 2).
//! * [`discrepancy`] — the paper's utility-loss metric, *reliability
//!   discrepancy* (Definition 2), estimated over sampled node pairs.
//! * [`pairs`] — node-pair sampling strategies for discrepancy estimation.
//! * [`dcr`] — distance-constrained reachability (the refinement of
//!   reliability from the paper's ref [19]).
//! * [`metrics`] — the evaluation metrics of paper §VI: expected average
//!   degree (closed form), degree distributions, average distance and
//!   diameter (per-world BFS, plus an ANF sketch for large worlds), and
//!   clustering coefficient.
//! * [`stream`] — strip-streamed out-of-core ensemble analysis: O(strip)
//!   memory, compressed world storage, bit-identical to [`WorldEnsemble`]
//!   (DESIGN.md §12).

//! # Example
//!
//! ```
//! use chameleon_reliability::WorldEnsemble;
//! use chameleon_ugraph::UncertainGraph;
//! use rand::SeedableRng;
//!
//! // A path 0 - 1 - 2 with 0.8-probability links.
//! let mut g = UncertainGraph::with_nodes(3);
//! g.add_edge(0, 1, 0.8).unwrap();
//! g.add_edge(1, 2, 0.8).unwrap();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let ensemble = WorldEnsemble::sample(&g, 2000, &mut rng);
//! let r = ensemble.two_terminal_reliability(0, 2);
//! assert!((r - 0.64).abs() < 0.05); // series links multiply
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dcr;
pub mod discrepancy;
pub mod ensemble;
pub mod incremental;
pub mod metrics;
pub mod pairs;
pub mod stream;

pub use dcr::{dcr_profile, distance_constrained_reliability};
pub use discrepancy::{avg_reliability_discrepancy, DiscrepancyReport};
pub use ensemble::{crn_uniform_matrix, UniformMatrix, WorldEnsemble, WORLD_CHUNK};
pub use incremental::IncrementalEnsemble;
pub use pairs::sample_distinct_pairs;
pub use stream::{align_strip, EnsembleStream, STRIP_ALIGN};
