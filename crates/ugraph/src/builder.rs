//! Convenience builder for assembling graphs from edge streams that may
//! contain duplicates (e.g. raw dataset files listing both `(u,v)` and
//! `(v,u)`).

use crate::error::GraphError;
use crate::graph::{NodeId, UncertainGraph};
use std::collections::HashMap;

/// Policy for resolving duplicate edge records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupPolicy {
    /// Keep the first probability seen.
    #[default]
    KeepFirst,
    /// Keep the last probability seen.
    KeepLast,
    /// Keep the maximum probability.
    KeepMax,
    /// Combine as independent evidence: `1 − Π (1 − p_i)`.
    NoisyOr,
    /// Treat duplicates as an error.
    Reject,
}

/// Accumulates edges then produces a validated [`UncertainGraph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    policy: DedupPolicy,
    edges: HashMap<(NodeId, NodeId), f64>,
    order: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` nodes and the default
    /// ([`DedupPolicy::KeepFirst`]) duplicate policy.
    pub fn new(n: usize) -> Self {
        Self {
            num_nodes: n,
            policy: DedupPolicy::default(),
            edges: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// Sets the duplicate-resolution policy.
    pub fn dedup_policy(mut self, policy: DedupPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Grows the node count if `n` exceeds the current one.
    pub fn ensure_nodes(&mut self, n: usize) {
        self.num_nodes = self.num_nodes.max(n);
    }

    /// Records an edge observation.
    ///
    /// # Errors
    /// Fails on self-loops, invalid probabilities, or duplicates under
    /// [`DedupPolicy::Reject`]. Node ids beyond the current count enlarge
    /// the graph.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, p: f64) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            return Err(GraphError::InvalidProbability(p));
        }
        // Endpoint u32::MAX would need u32::MAX + 1 nodes, one past the
        // dense-u32 id space [`UncertainGraph`] enforces.
        if u.max(v) == u32::MAX {
            return Err(GraphError::CapacityExceeded {
                what: "nodes",
                limit: u32::MAX as u64,
            });
        }
        self.ensure_nodes(u.max(v) as usize + 1);
        let key = if u < v { (u, v) } else { (v, u) };
        match self.edges.entry(key) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(p);
                self.order.push(key);
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => match self.policy {
                DedupPolicy::KeepFirst => {}
                DedupPolicy::KeepLast => {
                    *slot.get_mut() = p;
                }
                DedupPolicy::KeepMax => {
                    let cur = *slot.get();
                    *slot.get_mut() = cur.max(p);
                }
                DedupPolicy::NoisyOr => {
                    let cur = *slot.get();
                    *slot.get_mut() = 1.0 - (1.0 - cur) * (1.0 - p);
                }
                DedupPolicy::Reject => {
                    return Err(GraphError::DuplicateEdge(key.0, key.1));
                }
            },
        }
        Ok(())
    }

    /// Number of distinct edges recorded so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into an [`UncertainGraph`]; edges appear in first-seen
    /// order, making builds reproducible.
    pub fn build(self) -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(self.num_nodes);
        for key in &self.order {
            let p = self.edges[key];
            g.add_edge(key.0, key.1, p)
                .expect("builder enforces validity");
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_build() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(4, 2, 0.25).unwrap();
        let g = b.build();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(2, 4));
    }

    #[test]
    fn keep_first_policy() {
        let mut b = GraphBuilder::new(3).dedup_policy(DedupPolicy::KeepFirst);
        b.add_edge(0, 1, 0.3).unwrap();
        b.add_edge(1, 0, 0.9).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!((g.prob(0) - 0.3).abs() < 1e-15);
    }

    #[test]
    fn keep_last_policy() {
        let mut b = GraphBuilder::new(3).dedup_policy(DedupPolicy::KeepLast);
        b.add_edge(0, 1, 0.3).unwrap();
        b.add_edge(1, 0, 0.9).unwrap();
        assert!((b.build().prob(0) - 0.9).abs() < 1e-15);
    }

    #[test]
    fn keep_max_policy() {
        let mut b = GraphBuilder::new(3).dedup_policy(DedupPolicy::KeepMax);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 0, 0.3).unwrap();
        assert!((b.build().prob(0) - 0.9).abs() < 1e-15);
    }

    #[test]
    fn noisy_or_policy() {
        let mut b = GraphBuilder::new(3).dedup_policy(DedupPolicy::NoisyOr);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 0, 0.5).unwrap();
        assert!((b.build().prob(0) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn reject_policy() {
        let mut b = GraphBuilder::new(3).dedup_policy(DedupPolicy::Reject);
        b.add_edge(0, 1, 0.5).unwrap();
        assert_eq!(b.add_edge(1, 0, 0.5), Err(GraphError::DuplicateEdge(0, 1)));
    }

    #[test]
    fn rejects_invalid_input() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(1, 1, 0.5),
            Err(GraphError::SelfLoop(1))
        ));
        assert!(matches!(
            b.add_edge(0, 1, 7.0),
            Err(GraphError::InvalidProbability(_))
        ));
    }

    #[test]
    fn deterministic_edge_order() {
        let mut b1 = GraphBuilder::new(5);
        let mut b2 = GraphBuilder::new(5);
        for (u, v) in [(0, 1), (3, 2), (1, 4)] {
            b1.add_edge(u, v, 0.5).unwrap();
            b2.add_edge(u, v, 0.5).unwrap();
        }
        let g1 = b1.build();
        let g2 = b2.build();
        assert_eq!(g1.edges().len(), g2.edges().len());
        for (a, b) in g1.edges().iter().zip(g2.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
        }
    }

    #[test]
    fn endpoint_at_id_space_limit_rejected() {
        let mut b = GraphBuilder::new(0);
        assert!(matches!(
            b.add_edge(u32::MAX, 0, 0.5),
            Err(GraphError::CapacityExceeded { what: "nodes", .. })
        ));
        // One below the limit is fine structurally (id space still fits).
        assert!(b.add_edge(u32::MAX - 1, 0, 0.5).is_ok());
        assert_eq!(b.num_edges(), 1);
    }

    #[test]
    fn ensure_nodes_grows_only() {
        let mut b = GraphBuilder::new(10);
        b.ensure_nodes(5);
        assert_eq!(b.build().num_nodes(), 10);
    }
}
