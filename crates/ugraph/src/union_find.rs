//! Union–find (disjoint set union) with union-by-size and path halving.
//!
//! This is the kernel of the paper's reliability machinery: every sampled
//! possible world is reduced to its connected components in
//! O(α(|V|)·|E|) (paper Lemma 2 cites exactly this bound), and the number
//! of connected vertex pairs `cc(G) = Σ_C |C|·(|C|−1)/2` is the statistic
//! aggregated by the ERR estimator (Algorithm 2).

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            num_components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for a zero-element structure.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.num_components -= 1;
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Number of connected (unordered) vertex pairs: `Σ_C |C|·(|C|−1)/2`.
    pub fn connected_pairs(&mut self) -> u64 {
        let n = self.parent.len();
        let mut total = 0u64;
        for x in 0..n as u32 {
            if self.find(x) == x {
                let s = self.size[x as usize] as u64;
                total += s * (s - 1) / 2;
            }
        }
        total
    }

    /// Dense component labels in `0..num_components`, assigned in order of
    /// first appearance; useful for per-world pair queries.
    pub fn component_labels(&mut self) -> Vec<u32> {
        let n = self.parent.len();
        let mut label_of_root = vec![u32::MAX; n];
        let mut labels = vec![0u32; n];
        let mut next = 0u32;
        for x in 0..n as u32 {
            let r = self.find(x);
            if label_of_root[r as usize] == u32::MAX {
                label_of_root[r as usize] = next;
                next += 1;
            }
            labels[x as usize] = label_of_root[r as usize];
        }
        labels
    }

    /// Appends dense component labels (as produced by
    /// [`UnionFind::component_labels`]) to `labels_out` and the size of
    /// each component — indexed by its dense label — to `sizes_out`,
    /// reusing `label_of_root` as scratch so a caller looping over many
    /// worlds performs no per-world allocation once the buffers have
    /// grown. Returns `(num_components, connected_pairs)`: the pair count
    /// is accumulated while labelling — each component contributes
    /// `s·(s−1)/2` exactly once, when its root is first seen — so the
    /// value equals [`UnionFind::connected_pairs`] (u64 addition is exact
    /// and order-free) without a second find pass over every element.
    pub fn append_labels_and_sizes(
        &mut self,
        labels_out: &mut Vec<u32>,
        sizes_out: &mut Vec<u32>,
        label_of_root: &mut Vec<u32>,
    ) -> (usize, u64) {
        let n = self.parent.len();
        label_of_root.clear();
        label_of_root.resize(n, u32::MAX);
        labels_out.reserve(n);
        let mut next = 0u32;
        let mut pairs = 0u64;
        for x in 0..n as u32 {
            let r = self.find(x);
            let slot = label_of_root[r as usize];
            let label = if slot == u32::MAX {
                label_of_root[r as usize] = next;
                // Every member of the set shares this root, so the root's
                // size is exactly the label's member count.
                let s = self.size[r as usize];
                sizes_out.push(s);
                pairs += s as u64 * (s as u64 - 1) / 2;
                next += 1;
                next - 1
            } else {
                slot
            };
            labels_out.push(label);
        }
        (next as usize, pairs)
    }

    /// Resets to `n` singletons without reallocating.
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        for s in &mut self.size {
            *s = 1;
        }
        self.num_components = self.parent.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert_eq!(uf.connected_pairs(), 0);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.component_size(2), 1);
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already joined
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.num_components(), 3);
        assert_eq!(uf.component_size(1), 3);
        // pairs: C(3,2) = 3
        assert_eq!(uf.connected_pairs(), 3);
    }

    #[test]
    fn connected_pairs_full_merge() {
        let mut uf = UnionFind::new(6);
        for i in 0..5 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.connected_pairs(), 15); // C(6,2)
        assert_eq!(uf.num_components(), 1);
    }

    #[test]
    fn labels_are_dense_and_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(4, 5);
        let labels = uf.component_labels();
        assert_eq!(labels.len(), 6);
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        assert_ne!(labels[1], labels[2]);
        let max = *labels.iter().max().unwrap() as usize;
        assert_eq!(max + 1, uf.num_components());
    }

    #[test]
    fn append_labels_and_sizes_matches_component_labels() {
        let mut uf = UnionFind::new(7);
        uf.union(0, 3);
        uf.union(4, 5);
        uf.union(3, 5);
        let expect_labels = uf.clone().component_labels();
        let expect_pairs = uf.clone().connected_pairs();
        let mut labels = Vec::new();
        let mut sizes = Vec::new();
        let mut scratch = Vec::new();
        let (ncomp, pairs) = uf.append_labels_and_sizes(&mut labels, &mut sizes, &mut scratch);
        assert_eq!(labels, expect_labels);
        assert_eq!(ncomp, uf.num_components());
        assert_eq!(pairs, expect_pairs);
        assert_eq!(sizes.len(), ncomp);
        let mut counted = vec![0u32; ncomp];
        for &l in &labels {
            counted[l as usize] += 1;
        }
        assert_eq!(sizes, counted);
        // Appending a second structure extends, never clears.
        let mut uf2 = UnionFind::new(2);
        uf2.union(0, 1);
        uf2.append_labels_and_sizes(&mut labels, &mut sizes, &mut scratch);
        assert_eq!(labels.len(), 9);
        assert_eq!(sizes.len(), ncomp + 1);
        assert_eq!(&sizes[ncomp..], &[2]);
    }

    #[test]
    fn reset_restores_singletons() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.reset();
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.connected_pairs(), 0);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.connected_pairs(), 0);
        assert!(uf.component_labels().is_empty());
    }

    proptest! {
        #[test]
        fn components_match_naive(
            unions in proptest::collection::vec((0u32..16, 0u32..16), 0..40)
        ) {
            let n = 16usize;
            let mut uf = UnionFind::new(n);
            // Naive: adjacency + BFS closure.
            let mut adj = vec![vec![]; n];
            for &(a, b) in &unions {
                uf.union(a, b);
                adj[a as usize].push(b as usize);
                adj[b as usize].push(a as usize);
            }
            // BFS labels.
            let mut label = vec![usize::MAX; n];
            let mut next = 0;
            for s in 0..n {
                if label[s] != usize::MAX { continue; }
                let mut queue = vec![s];
                label[s] = next;
                while let Some(x) = queue.pop() {
                    for &y in &adj[x] {
                        if label[y] == usize::MAX {
                            label[y] = next;
                            queue.push(y);
                        }
                    }
                }
                next += 1;
            }
            prop_assert_eq!(uf.num_components(), next);
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    prop_assert_eq!(
                        uf.connected(a, b),
                        label[a as usize] == label[b as usize]
                    );
                }
            }
            // connected_pairs equals count over naive labels.
            let mut counts = vec![0u64; next];
            for &l in &label { counts[l] += 1; }
            let pairs: u64 = counts.iter().map(|&c| c * (c - 1) / 2).sum();
            prop_assert_eq!(uf.connected_pairs(), pairs);
        }

        #[test]
        fn sizes_sum_to_n(
            unions in proptest::collection::vec((0u32..24, 0u32..24), 0..60)
        ) {
            let mut uf = UnionFind::new(24);
            for (a, b) in unions { uf.union(a, b); }
            let mut seen = std::collections::HashSet::new();
            let mut total = 0u32;
            for x in 0..24u32 {
                let r = uf.find(x);
                if seen.insert(r) {
                    total += uf.component_size(x);
                }
            }
            prop_assert_eq!(total, 24);
        }
    }
}
