//! Structural analysis of uncertain graphs: components of the support
//! graph, probability-thresholded backbones, and summary statistics used
//! by dataset validation and the experiment harness.

use crate::graph::{NodeId, UncertainGraph};
use crate::union_find::UnionFind;

/// Connected components of the *support* graph (every edge counted
/// regardless of probability, optionally thresholded).
///
/// `min_prob` restricts to edges with `p >= min_prob`; pass 0.0 for the
/// full support.
pub fn support_components(graph: &UncertainGraph, min_prob: f64) -> UnionFind {
    let mut uf = UnionFind::new(graph.num_nodes());
    for e in graph.edges() {
        if e.p >= min_prob {
            uf.union(e.u, e.v);
        }
    }
    uf
}

/// Nodes of the largest support component (ties broken by smallest root
/// label; deterministic).
pub fn largest_component(graph: &UncertainGraph, min_prob: f64) -> Vec<NodeId> {
    let mut uf = support_components(graph, min_prob);
    let labels = uf.component_labels();
    let num = uf.num_components();
    let mut sizes = vec![0usize; num];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    (0..graph.num_nodes() as u32)
        .filter(|&v| labels[v as usize] == best)
        .collect()
}

/// The subgraph induced on `nodes` (edges with both endpoints inside),
/// with nodes relabeled densely in the order given. Returns the new graph
/// and the mapping `new_id -> old_id`.
pub fn induced_subgraph(graph: &UncertainGraph, nodes: &[NodeId]) -> (UncertainGraph, Vec<NodeId>) {
    let mut old_to_new: std::collections::HashMap<NodeId, NodeId> =
        std::collections::HashMap::with_capacity(nodes.len());
    for (new, &old) in nodes.iter().enumerate() {
        let prev = old_to_new.insert(old, new as NodeId);
        assert!(prev.is_none(), "duplicate node {old} in selection");
    }
    let mut sub = UncertainGraph::with_nodes(nodes.len());
    for e in graph.edges() {
        if let (Some(&u), Some(&v)) = (old_to_new.get(&e.u), old_to_new.get(&e.v)) {
            sub.add_edge(u, v, e.p).expect("valid induced edge");
        }
    }
    (sub, nodes.to_vec())
}

/// Summary statistics of an uncertain graph, for dataset tables and logs.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Node count.
    pub nodes: usize,
    /// Edge count (support).
    pub edges: usize,
    /// Mean edge probability.
    pub mean_edge_prob: f64,
    /// Expected average degree `2·Σp/|V|`.
    pub expected_avg_degree: f64,
    /// Largest structural degree.
    pub max_degree: usize,
    /// Number of support components (p > 0 edges).
    pub support_components: usize,
    /// Size of the largest support component.
    pub largest_component: usize,
    /// Number of isolated vertices in the support graph.
    pub isolated: usize,
}

impl GraphSummary {
    /// Computes the summary.
    pub fn of(graph: &UncertainGraph) -> Self {
        let n = graph.num_nodes();
        let mut uf = UnionFind::new(n);
        for e in graph.edges() {
            if e.p > 0.0 {
                uf.union(e.u, e.v);
            }
        }
        let mut largest = 0;
        let mut isolated = 0;
        for v in 0..n as u32 {
            let s = uf.component_size(v) as usize;
            if s > largest {
                largest = s;
            }
            if graph.degree(v) == 0 {
                isolated += 1;
            }
        }
        Self {
            nodes: n,
            edges: graph.num_edges(),
            mean_edge_prob: graph.mean_edge_prob(),
            expected_avg_degree: graph.expected_average_degree(),
            max_degree: (0..n as u32).map(|v| graph.degree(v)).max().unwrap_or(0),
            support_components: uf.num_components(),
            largest_component: largest,
            isolated,
        }
    }
}

impl std::fmt::Display for GraphSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} mean_p={:.3} E[deg]={:.2} max_deg={} components={} \
             largest={} isolated={}",
            self.nodes,
            self.edges,
            self.mean_edge_prob,
            self.expected_avg_degree,
            self.max_degree,
            self.support_components,
            self.largest_component,
            self.isolated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles and an isolated vertex.
    fn two_triangles() -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(7);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2)] {
            g.add_edge(u, v, 0.9).unwrap();
        }
        for &(u, v) in &[(3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 0.2).unwrap();
        }
        g
    }

    #[test]
    fn support_components_by_threshold() {
        let g = two_triangles();
        let mut full = support_components(&g, 0.0);
        assert_eq!(full.num_components(), 3); // two triangles + isolate
        assert!(full.connected(0, 2));
        assert!(!full.connected(0, 3));
        let mut strong = support_components(&g, 0.5);
        assert_eq!(strong.num_components(), 5); // weak triangle dissolves
        assert!(!strong.connected(3, 4));
    }

    #[test]
    fn largest_component_selection() {
        let mut g = two_triangles();
        g.add_edge(3, 6, 0.3).unwrap(); // second cluster now size 4
        let comp = largest_component(&g, 0.0);
        assert_eq!(comp, vec![3, 4, 5, 6]);
    }

    #[test]
    fn largest_component_tie_is_deterministic() {
        let g = two_triangles();
        let a = largest_component(&g, 0.0);
        let b = largest_component(&g, 0.0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = two_triangles();
        let (sub, mapping) = induced_subgraph(&g, &[0, 1, 2, 3]);
        assert_eq!(sub.num_nodes(), 4);
        assert_eq!(sub.num_edges(), 3); // triangle 0-1-2 only
        assert!(sub.has_edge(0, 1));
        assert!(!sub.has_edge(0, 3));
        assert_eq!(mapping, vec![0, 1, 2, 3]);
        // Probabilities preserved.
        let e = sub.find_edge(0, 1).unwrap();
        assert!((sub.prob(e) - 0.9).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn induced_subgraph_rejects_duplicates() {
        let g = two_triangles();
        let _ = induced_subgraph(&g, &[0, 0]);
    }

    #[test]
    fn summary_values() {
        let g = two_triangles();
        let s = GraphSummary::of(&g);
        assert_eq!(s.nodes, 7);
        assert_eq!(s.edges, 6);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.support_components, 3);
        assert_eq!(s.largest_component, 3);
        assert_eq!(s.isolated, 1);
        assert!((s.mean_edge_prob - 0.55).abs() < 1e-12);
        let rendered = format!("{s}");
        assert!(rendered.contains("n=7"));
        assert!(rendered.contains("isolated=1"));
    }

    #[test]
    fn summary_of_empty_graph() {
        let s = GraphSummary::of(&UncertainGraph::with_nodes(0));
        assert_eq!(s.nodes, 0);
        assert_eq!(s.largest_component, 0);
    }
}
