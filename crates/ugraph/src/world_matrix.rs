//! Arena storage for possible-world ensembles.
//!
//! [`WorldMatrix`] packs N sampled worlds into one contiguous `Vec<u64>`
//! (N × ceil(m/64) words) instead of N separately allocated bitsets, and
//! [`SamplePlan`] precomputes everything that is constant across draws of
//! the same graph: a template row with the deterministic (p ≥ 1) edges
//! already set, plus the ascending list of uncertain (0 < p < 1) edges —
//! the only ones that consume a uniform variate.
//!
//! The plan's draw sequence is *identical* to
//! [`WorldSampler::sample`](crate::sample::WorldSampler::sample), which
//! skips deterministic edges and calls `rng.gen::<f64>()` once per
//! uncertain edge in ascending edge order. That makes arena-sampled
//! ensembles bit-identical to the historical per-`World` path for any RNG
//! stream.

use crate::graph::UncertainGraph;
use crate::world::WorldRef;
use rand::Rng;

/// A dense ensemble of possible worlds: `num_worlds` rows of
/// `words_per_world = ceil(num_edges / 64)` little-endian bit words in one
/// contiguous allocation.
///
/// Invariant: bits at positions `>= num_edges` within each row are always
/// clear, so word-level scans (`!word` walks over absent edges) only need a
/// tail mask at the final word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldMatrix {
    words: Vec<u64>,
    words_per_world: usize,
    num_worlds: usize,
    num_edges: usize,
}

impl WorldMatrix {
    /// An empty matrix (zero worlds) over `num_edges` edge slots.
    pub fn new(num_edges: usize) -> Self {
        Self {
            words: Vec::new(),
            words_per_world: num_edges.div_ceil(64),
            num_worlds: 0,
            num_edges,
        }
    }

    /// A matrix of `num_worlds` all-absent worlds.
    pub fn zeroed(num_worlds: usize, num_edges: usize) -> Self {
        let words_per_world = num_edges.div_ceil(64);
        Self {
            words: vec![0; num_worlds * words_per_world],
            words_per_world,
            num_worlds,
            num_edges,
        }
    }

    /// Number of worlds (rows).
    pub fn num_worlds(&self) -> usize {
        self.num_worlds
    }

    /// True when the matrix holds no worlds.
    pub fn is_empty(&self) -> bool {
        self.num_worlds == 0
    }

    /// Number of edge slots per world.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Words per row.
    pub fn words_per_world(&self) -> usize {
        self.words_per_world
    }

    /// Size of the backing word arena in bytes.
    pub fn arena_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// The words of row `w`.
    ///
    /// # Panics
    /// Panics if `w >= num_worlds`.
    #[inline]
    pub fn row(&self, w: usize) -> &[u64] {
        assert!(w < self.num_worlds, "world {w} out of {}", self.num_worlds);
        &self.words[w * self.words_per_world..(w + 1) * self.words_per_world]
    }

    /// Mutable words of row `w`.
    ///
    /// # Panics
    /// Panics if `w >= num_worlds`.
    #[inline]
    pub fn row_mut(&mut self, w: usize) -> &mut [u64] {
        assert!(w < self.num_worlds, "world {w} out of {}", self.num_worlds);
        &mut self.words[w * self.words_per_world..(w + 1) * self.words_per_world]
    }

    /// Row `w` as a borrowed world.
    #[inline]
    pub fn world(&self, w: usize) -> WorldRef<'_> {
        WorldRef::from_words(self.row(w), self.num_edges)
    }

    /// Appends pre-built rows (a multiple of `words_per_world` words).
    ///
    /// # Panics
    /// Panics if `words.len()` is not a whole number of rows. For an
    /// edgeless graph (`words_per_world == 0`) rows carry no words, so use
    /// [`WorldMatrix::grow`] instead.
    pub fn extend_from_words(&mut self, words: &[u64]) {
        assert!(
            self.words_per_world > 0,
            "edgeless rows carry no words; use grow()"
        );
        assert_eq!(
            words.len() % self.words_per_world,
            0,
            "partial row: {} words, {} per world",
            words.len(),
            self.words_per_world
        );
        self.num_worlds += words.len() / self.words_per_world;
        self.words.extend_from_slice(words);
    }

    /// Appends `n` all-absent worlds.
    pub fn grow(&mut self, n: usize) {
        self.num_worlds += n;
        self.words.resize(self.num_worlds * self.words_per_world, 0);
    }

    /// Reserves room for `n` more worlds.
    pub fn reserve(&mut self, n: usize) {
        self.words.reserve(n * self.words_per_world);
    }
}

/// Precomputed sampling plan for one uncertain graph: deterministic-edge
/// template plus the ascending uncertain-edge list (see module docs for the
/// draw-order contract).
#[derive(Debug, Clone)]
pub struct SamplePlan {
    template: Vec<u64>,
    /// `(edge_id, p)` for edges with `0 < p < 1`, ascending by id.
    uncertain: Vec<(u32, f64)>,
    num_edges: usize,
    words_per_world: usize,
}

impl SamplePlan {
    /// Builds the plan for `graph`.
    pub fn new(graph: &UncertainGraph) -> Self {
        let num_edges = graph.num_edges();
        let words_per_world = num_edges.div_ceil(64);
        let mut template = vec![0u64; words_per_world];
        let mut uncertain = Vec::new();
        for (i, edge) in graph.edges().iter().enumerate() {
            if edge.p >= 1.0 {
                template[i / 64] |= 1u64 << (i % 64);
            } else if edge.p > 0.0 {
                uncertain.push((i as u32, edge.p));
            }
        }
        Self {
            template,
            uncertain,
            num_edges,
            words_per_world,
        }
    }

    /// Number of edge slots per sampled world.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Words per sampled row.
    pub fn words_per_world(&self) -> usize {
        self.words_per_world
    }

    /// Number of edges that consume a uniform variate per draw.
    pub fn num_uncertain(&self) -> usize {
        self.uncertain.len()
    }

    /// Samples one world into `row`: copies the deterministic template,
    /// then draws `rng.gen::<f64>() < p` for each uncertain edge ascending
    /// — the exact call sequence of `WorldSampler::sample`.
    ///
    /// # Panics
    /// Panics if `row.len() != words_per_world`.
    pub fn sample_into<R: Rng + ?Sized>(&self, row: &mut [u64], rng: &mut R) {
        assert_eq!(row.len(), self.words_per_world, "row width mismatch");
        row.copy_from_slice(&self.template);
        for &(e, p) in &self.uncertain {
            if rng.gen::<f64>() < p {
                row[e as usize / 64] |= 1u64 << (e % 64);
            }
        }
    }

    /// Samples `n` worlds into a fresh matrix (one allocation).
    pub fn sample_matrix<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> WorldMatrix {
        let mut m = WorldMatrix::zeroed(n, self.num_edges);
        for w in 0..n {
            self.sample_into(m.row_mut(w), rng);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::WorldSampler;
    use crate::world::World;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mixed_graph() -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(6);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 0.0).unwrap();
        g.add_edge(2, 3, 0.5).unwrap();
        g.add_edge(3, 4, 1.0).unwrap();
        g.add_edge(4, 5, 0.25).unwrap();
        g
    }

    fn row_equals_world(row: &[u64], world: &World) -> bool {
        WorldRef::from_words(row, world.num_edge_slots()) == world.as_world_ref()
    }

    #[test]
    fn plan_draws_match_sampler_draw_for_draw() {
        let g = mixed_graph();
        let plan = SamplePlan::new(&g);
        assert_eq!(plan.num_uncertain(), 2);
        // One shared RNG across many sequential draws: any extra or missing
        // gen::<f64>() call would desynchronize all subsequent worlds.
        let mut rng_old = StdRng::seed_from_u64(99);
        let mut rng_new = StdRng::seed_from_u64(99);
        let mut row = vec![0u64; plan.words_per_world()];
        for _ in 0..200 {
            let world = WorldSampler::sample(&g, &mut rng_old);
            plan.sample_into(&mut row, &mut rng_new);
            assert!(row_equals_world(&row, &world));
        }
    }

    #[test]
    fn sample_matrix_matches_sample_many() {
        let g = mixed_graph();
        let plan = SamplePlan::new(&g);
        let worlds = WorldSampler::sample_many(&g, 37, &mut StdRng::seed_from_u64(5));
        let matrix = plan.sample_matrix(37, &mut StdRng::seed_from_u64(5));
        assert_eq!(matrix.num_worlds(), 37);
        for (w, world) in worlds.iter().enumerate() {
            assert_eq!(matrix.world(w), world.as_world_ref());
        }
    }

    #[test]
    fn matrix_roundtrip_and_accessors() {
        let mut m = WorldMatrix::new(130);
        assert!(m.is_empty());
        assert_eq!(m.words_per_world(), 3);
        m.grow(2);
        m.row_mut(1)[2] = 0b10; // edge 129
        assert!(m.world(1).contains(129));
        assert!(!m.world(0).contains(129));
        assert_eq!(m.arena_bytes(), 2 * 3 * 8);
        let rows: Vec<u64> = m.row(0).iter().chain(m.row(1)).copied().collect();
        let mut m2 = WorldMatrix::new(130);
        m2.reserve(2);
        m2.extend_from_words(&rows);
        assert_eq!(m, m2);
    }

    #[test]
    fn edgeless_graph_matrix() {
        let g = UncertainGraph::with_nodes(4);
        let plan = SamplePlan::new(&g);
        let m = plan.sample_matrix(8, &mut StdRng::seed_from_u64(0));
        assert_eq!(m.num_worlds(), 8);
        assert_eq!(m.words_per_world(), 0);
        assert_eq!(m.world(7).num_present(), 0);
        assert_eq!(m.arena_bytes(), 0);
    }

    #[test]
    #[should_panic]
    fn extend_partial_row_panics() {
        let mut m = WorldMatrix::new(100);
        m.extend_from_words(&[0u64; 3]); // 2 words per world
    }

    #[test]
    #[should_panic]
    fn row_out_of_range_panics() {
        let m = WorldMatrix::zeroed(2, 10);
        let _ = m.row(2);
    }

    proptest! {
        #[test]
        fn plan_equivalent_to_sampler_on_random_graphs(
            edges in proptest::collection::vec((0u32..12, 0u32..12, 0.0f64..=1.0), 0..40),
            seed in any::<u64>(),
        ) {
            let mut g = UncertainGraph::with_nodes(12);
            for (u, v, p) in edges {
                let _ = g.add_edge(u, v, p);
            }
            let plan = SamplePlan::new(&g);
            let worlds = WorldSampler::sample_many(&g, 5, &mut StdRng::seed_from_u64(seed));
            let matrix = plan.sample_matrix(5, &mut StdRng::seed_from_u64(seed));
            for (w, world) in worlds.iter().enumerate() {
                prop_assert_eq!(matrix.world(w), world.as_world_ref());
            }
            // Tail bits stay clear.
            if matrix.words_per_world() > 0 {
                let m_edges = g.num_edges();
                let tail = matrix.row(0)[matrix.words_per_world() - 1];
                if !m_edges.is_multiple_of(64) {
                    prop_assert_eq!(tail >> (m_edges % 64), 0);
                }
            }
        }
    }
}
