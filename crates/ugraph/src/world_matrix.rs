//! Arena storage for possible-world ensembles.
//!
//! [`WorldMatrix`] packs N sampled worlds into one contiguous `Vec<u64>`
//! (N × ceil(m/64) words) instead of N separately allocated bitsets, and
//! [`SamplePlan`] precomputes everything that is constant across draws of
//! the same graph: a template row with the deterministic (p ≥ 1) edges
//! already set, plus the ascending list of uncertain (0 < p < 1) edges —
//! the only ones that consume a uniform variate.
//!
//! The plan's draw sequence is *identical* to
//! [`WorldSampler::sample`](crate::sample::WorldSampler::sample), which
//! skips deterministic edges and calls `rng.gen::<f64>()` once per
//! uncertain edge in ascending edge order. That makes arena-sampled
//! ensembles bit-identical to the historical per-`World` path for any RNG
//! stream.

use crate::graph::UncertainGraph;
use crate::world::WorldRef;
use rand::Rng;

/// A dense ensemble of possible worlds: `num_worlds` rows of
/// `words_per_world = ceil(num_edges / 64)` little-endian bit words in one
/// contiguous allocation.
///
/// Invariant: bits at positions `>= num_edges` within each row are always
/// clear, so word-level scans (`!word` walks over absent edges) only need a
/// tail mask at the final word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldMatrix {
    words: Vec<u64>,
    words_per_world: usize,
    num_worlds: usize,
    num_edges: usize,
}

impl WorldMatrix {
    /// An empty matrix (zero worlds) over `num_edges` edge slots.
    pub fn new(num_edges: usize) -> Self {
        Self {
            words: Vec::new(),
            words_per_world: num_edges.div_ceil(64),
            num_worlds: 0,
            num_edges,
        }
    }

    /// A matrix of `num_worlds` all-absent worlds.
    pub fn zeroed(num_worlds: usize, num_edges: usize) -> Self {
        let words_per_world = num_edges.div_ceil(64);
        Self {
            words: vec![0; num_worlds * words_per_world],
            words_per_world,
            num_worlds,
            num_edges,
        }
    }

    /// Number of worlds (rows).
    pub fn num_worlds(&self) -> usize {
        self.num_worlds
    }

    /// True when the matrix holds no worlds.
    pub fn is_empty(&self) -> bool {
        self.num_worlds == 0
    }

    /// Number of edge slots per world.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Words per row.
    pub fn words_per_world(&self) -> usize {
        self.words_per_world
    }

    /// Size of the backing word arena in bytes.
    pub fn arena_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// The words of row `w`.
    ///
    /// # Panics
    /// Panics if `w >= num_worlds`.
    #[inline]
    pub fn row(&self, w: usize) -> &[u64] {
        assert!(w < self.num_worlds, "world {w} out of {}", self.num_worlds);
        &self.words[w * self.words_per_world..(w + 1) * self.words_per_world]
    }

    /// Mutable words of row `w`.
    ///
    /// # Panics
    /// Panics if `w >= num_worlds`.
    #[inline]
    pub fn row_mut(&mut self, w: usize) -> &mut [u64] {
        assert!(w < self.num_worlds, "world {w} out of {}", self.num_worlds);
        &mut self.words[w * self.words_per_world..(w + 1) * self.words_per_world]
    }

    /// Row `w` as a borrowed world.
    #[inline]
    pub fn world(&self, w: usize) -> WorldRef<'_> {
        WorldRef::from_words(self.row(w), self.num_edges)
    }

    /// Appends pre-built rows (a multiple of `words_per_world` words).
    ///
    /// # Panics
    /// Panics if `words.len()` is not a whole number of rows. For an
    /// edgeless graph (`words_per_world == 0`) rows carry no words, so use
    /// [`WorldMatrix::grow`] instead.
    pub fn extend_from_words(&mut self, words: &[u64]) {
        assert!(
            self.words_per_world > 0,
            "edgeless rows carry no words; use grow()"
        );
        assert_eq!(
            words.len() % self.words_per_world,
            0,
            "partial row: {} words, {} per world",
            words.len(),
            self.words_per_world
        );
        self.num_worlds += words.len() / self.words_per_world;
        self.words.extend_from_slice(words);
    }

    /// Appends `n` all-absent worlds.
    pub fn grow(&mut self, n: usize) {
        self.num_worlds += n;
        self.words.resize(self.num_worlds * self.words_per_world, 0);
    }

    /// Reserves room for `n` more worlds.
    pub fn reserve(&mut self, n: usize) {
        self.words.reserve(n * self.words_per_world);
    }
}

/// Precomputed sampling plan for one uncertain graph: deterministic-edge
/// template plus the ascending uncertain-edge list (see module docs for the
/// draw-order contract).
#[derive(Debug, Clone)]
pub struct SamplePlan {
    template: Vec<u64>,
    /// `(edge_id, p)` for edges with `0 < p < 1`, ascending by id.
    uncertain: Vec<(u32, f64)>,
    num_edges: usize,
    words_per_world: usize,
}

impl SamplePlan {
    /// Builds the plan for `graph`.
    pub fn new(graph: &UncertainGraph) -> Self {
        let num_edges = graph.num_edges();
        let words_per_world = num_edges.div_ceil(64);
        let mut template = vec![0u64; words_per_world];
        let mut uncertain = Vec::new();
        for (i, edge) in graph.edges().iter().enumerate() {
            if edge.p >= 1.0 {
                template[i / 64] |= 1u64 << (i % 64);
            } else if edge.p > 0.0 {
                uncertain.push((i as u32, edge.p));
            }
        }
        Self {
            template,
            uncertain,
            num_edges,
            words_per_world,
        }
    }

    /// Number of edge slots per sampled world.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Words per sampled row.
    pub fn words_per_world(&self) -> usize {
        self.words_per_world
    }

    /// Number of edges that consume a uniform variate per draw.
    pub fn num_uncertain(&self) -> usize {
        self.uncertain.len()
    }

    /// The deterministic-edge template row (`words_per_world` words with
    /// every p ≥ 1 edge bit set). Compressed world stores delta-encode
    /// rows against this template.
    pub fn template(&self) -> &[u64] {
        &self.template
    }

    /// Samples one world into `row`: copies the deterministic template,
    /// then draws `rng.gen::<f64>() < p` for each uncertain edge ascending
    /// — the exact call sequence of `WorldSampler::sample`.
    ///
    /// # Panics
    /// Panics if `row.len() != words_per_world`.
    pub fn sample_into<R: Rng + ?Sized>(&self, row: &mut [u64], rng: &mut R) {
        assert_eq!(row.len(), self.words_per_world, "row width mismatch");
        row.copy_from_slice(&self.template);
        for &(e, p) in &self.uncertain {
            if rng.gen::<f64>() < p {
                row[e as usize / 64] |= 1u64 << (e % 64);
            }
        }
    }

    /// Samples `n` worlds into a fresh matrix (one allocation).
    pub fn sample_matrix<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> WorldMatrix {
        let mut m = WorldMatrix::zeroed(n, self.num_edges);
        for w in 0..n {
            self.sample_into(m.row_mut(w), rng);
        }
        m
    }

    /// Builds one world from stored uniform variates instead of an RNG:
    /// edge `e` is present iff `uniforms[e] < p(e)`. With uniforms drawn
    /// from `[0, 1)` this is bit-identical to [`SamplePlan::sample_into`]
    /// fed the same variates, and it is the common-random-numbers (CRN)
    /// entry point: keeping `uniforms` fixed while edge probabilities move
    /// couples the sampled worlds across probability vectors.
    ///
    /// # Panics
    /// Panics if `row.len() != words_per_world` or
    /// `uniforms.len() < num_edges`.
    pub fn sample_with_uniforms_into(&self, row: &mut [u64], uniforms: &[f64]) {
        assert_eq!(row.len(), self.words_per_world, "row width mismatch");
        assert!(
            uniforms.len() >= self.num_edges,
            "{} uniforms for {} edges",
            uniforms.len(),
            self.num_edges
        );
        row.copy_from_slice(&self.template);
        for &(e, p) in &self.uncertain {
            if uniforms[e as usize] < p {
                row[e as usize / 64] |= 1u64 << (e % 64);
            }
        }
    }

    /// Delta-updates a CRN-sampled world in place after edge-probability
    /// changes, flipping exactly the bits whose stored uniform crosses the
    /// moved threshold: edge `e` flips iff
    /// `(uniforms[e] < old_p) != (uniforms[e] < new_p)`.
    ///
    /// `changes` lists `(edge_id, old_p, new_p)`; `old_p` must be the
    /// probability the row was last sampled/updated with (an edge listed
    /// twice must chain its `old_p` through the previous entry's `new_p`).
    /// The result is bit-identical to a from-scratch
    /// [`SamplePlan::sample_with_uniforms_into`] over the updated
    /// probability vector and the same uniforms.
    ///
    /// # Panics
    /// Panics if `row.len() != words_per_world` or an edge id is out of
    /// range for `uniforms`.
    pub fn resample_edges_into(
        &self,
        row: &mut [u64],
        uniforms: &[f64],
        changes: &[(u32, f64, f64)],
    ) -> ResampleDelta {
        assert_eq!(row.len(), self.words_per_world, "row width mismatch");
        let mut delta = ResampleDelta::default();
        for &(e, old_p, new_p) in changes {
            let u = uniforms[e as usize];
            let was = u < old_p;
            let now = u < new_p;
            if was != now {
                row[e as usize / 64] ^= 1u64 << (e % 64);
                delta.flipped += 1;
                if was {
                    delta.removed += 1;
                }
            }
        }
        delta
    }
}

/// Flip summary from [`SamplePlan::resample_edges_into`]: how many
/// threshold crossings toggled a bit in one world, and how many of those
/// were deletions (present → absent); `flipped - removed` were
/// insertions. An edge listed twice in one batch is counted per crossing
/// (a down-then-up pair nets zero bit change but still reports a
/// deletion), so `removed > 0` is a conservative "this world may have
/// lost an edge" indicator — exactly what incremental component repair
/// needs to decide between label-merge and full rebuild.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResampleDelta {
    /// Total bits toggled.
    pub flipped: usize,
    /// Bits toggled from present to absent.
    pub removed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::WorldSampler;
    use crate::world::World;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mixed_graph() -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(6);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 0.0).unwrap();
        g.add_edge(2, 3, 0.5).unwrap();
        g.add_edge(3, 4, 1.0).unwrap();
        g.add_edge(4, 5, 0.25).unwrap();
        g
    }

    fn row_equals_world(row: &[u64], world: &World) -> bool {
        WorldRef::from_words(row, world.num_edge_slots()) == world.as_world_ref()
    }

    #[test]
    fn plan_draws_match_sampler_draw_for_draw() {
        let g = mixed_graph();
        let plan = SamplePlan::new(&g);
        assert_eq!(plan.num_uncertain(), 2);
        // One shared RNG across many sequential draws: any extra or missing
        // gen::<f64>() call would desynchronize all subsequent worlds.
        let mut rng_old = StdRng::seed_from_u64(99);
        let mut rng_new = StdRng::seed_from_u64(99);
        let mut row = vec![0u64; plan.words_per_world()];
        for _ in 0..200 {
            let world = WorldSampler::sample(&g, &mut rng_old);
            plan.sample_into(&mut row, &mut rng_new);
            assert!(row_equals_world(&row, &world));
        }
    }

    #[test]
    fn sample_matrix_matches_sample_many() {
        let g = mixed_graph();
        let plan = SamplePlan::new(&g);
        let worlds = WorldSampler::sample_many(&g, 37, &mut StdRng::seed_from_u64(5));
        let matrix = plan.sample_matrix(37, &mut StdRng::seed_from_u64(5));
        assert_eq!(matrix.num_worlds(), 37);
        for (w, world) in worlds.iter().enumerate() {
            assert_eq!(matrix.world(w), world.as_world_ref());
        }
    }

    #[test]
    fn matrix_roundtrip_and_accessors() {
        let mut m = WorldMatrix::new(130);
        assert!(m.is_empty());
        assert_eq!(m.words_per_world(), 3);
        m.grow(2);
        m.row_mut(1)[2] = 0b10; // edge 129
        assert!(m.world(1).contains(129));
        assert!(!m.world(0).contains(129));
        assert_eq!(m.arena_bytes(), 2 * 3 * 8);
        let rows: Vec<u64> = m.row(0).iter().chain(m.row(1)).copied().collect();
        let mut m2 = WorldMatrix::new(130);
        m2.reserve(2);
        m2.extend_from_words(&rows);
        assert_eq!(m, m2);
    }

    #[test]
    fn edgeless_graph_matrix() {
        let g = UncertainGraph::with_nodes(4);
        let plan = SamplePlan::new(&g);
        let m = plan.sample_matrix(8, &mut StdRng::seed_from_u64(0));
        assert_eq!(m.num_worlds(), 8);
        assert_eq!(m.words_per_world(), 0);
        assert_eq!(m.world(7).num_present(), 0);
        assert_eq!(m.arena_bytes(), 0);
    }

    #[test]
    #[should_panic]
    fn extend_partial_row_panics() {
        let mut m = WorldMatrix::new(100);
        m.extend_from_words(&[0u64; 3]); // 2 words per world
    }

    #[test]
    #[should_panic]
    fn row_out_of_range_panics() {
        let m = WorldMatrix::zeroed(2, 10);
        let _ = m.row(2);
    }

    #[test]
    fn uniform_rows_match_rng_rows_on_shared_stream() {
        use rand::Rng;
        let g = mixed_graph();
        let plan = SamplePlan::new(&g);
        let mut rng = StdRng::seed_from_u64(31);
        let mut by_rng = vec![0u64; plan.words_per_world()];
        let mut by_uniform = vec![0u64; plan.words_per_world()];
        for _ in 0..100 {
            // Record the exact variates the RNG path consumes (one per
            // uncertain edge, ascending), replay them positionally.
            let mut replay = StdRng::seed_from_u64(rng.gen());
            let mut snapshot = replay.clone();
            plan.sample_into(&mut by_rng, &mut replay);
            let mut uniforms = vec![2.0f64; g.num_edges()]; // 2.0: poison for certain edges
            for (i, edge) in g.edges().iter().enumerate() {
                if edge.p > 0.0 && edge.p < 1.0 {
                    uniforms[i] = snapshot.gen::<f64>();
                }
            }
            plan.sample_with_uniforms_into(&mut by_uniform, &uniforms);
            assert_eq!(by_rng, by_uniform);
        }
    }

    #[test]
    fn resample_matches_from_scratch_under_probability_moves() {
        use rand::Rng;
        let g = mixed_graph();
        let plan = SamplePlan::new(&g);
        let m = g.num_edges();
        let mut rng = StdRng::seed_from_u64(77);
        let uniforms: Vec<f64> = (0..m).map(|_| rng.gen::<f64>()).collect();
        let mut probs: Vec<f64> = g.edges().iter().map(|e| e.p).collect();
        let mut row = vec![0u64; plan.words_per_world()];
        plan.sample_with_uniforms_into(&mut row, &uniforms);
        let mut scratch = row.clone();
        for step in 0..200 {
            // Move a couple of edges, including to/from the 0.0 / 1.0 ends.
            let mut changes = Vec::new();
            for _ in 0..1 + step % 3 {
                let e = rng.gen_range(0..m);
                if changes.iter().any(|&(c, _, _)| c == e as u32) {
                    continue; // crossing counts are per-change; keep edges distinct
                }
                let new_p = match rng.gen_range(0..4) {
                    0 => 0.0,
                    1 => 1.0,
                    _ => rng.gen::<f64>(),
                };
                changes.push((e as u32, probs[e], new_p));
                probs[e] = new_p;
            }
            let delta = plan.resample_edges_into(&mut row, &uniforms, &changes);
            // Reference: rebuild from scratch over the updated probabilities
            // (direct `u < p` per edge, the CRN rule).
            let before = scratch.clone();
            for word in scratch.iter_mut() {
                *word = 0;
            }
            for (e, &p) in probs.iter().enumerate() {
                if uniforms[e] < p {
                    scratch[e / 64] |= 1u64 << (e % 64);
                }
            }
            assert_eq!(row, scratch, "delta path diverged at step {step}");
            let removed = before
                .iter()
                .zip(&scratch)
                .map(|(b, a)| (b & !a).count_ones() as usize)
                .sum::<usize>();
            let flipped = before
                .iter()
                .zip(&scratch)
                .map(|(b, a)| (b ^ a).count_ones() as usize)
                .sum::<usize>();
            assert_eq!((delta.flipped, delta.removed), (flipped, removed));
        }
    }

    #[test]
    fn chained_double_change_keeps_bits_exact_and_reports_crossings() {
        let g = mixed_graph();
        let plan = SamplePlan::new(&g);
        let uniforms = vec![0.3f64; g.num_edges()];
        let mut row = vec![0u64; plan.words_per_world()];
        plan.sample_with_uniforms_into(&mut row, &uniforms);
        let before = row.clone();
        // Edge 2 (p = 0.5, present at u = 0.3): drop below the uniform,
        // then back above it — net zero bits, two crossings, one deletion.
        let delta = plan.resample_edges_into(&mut row, &uniforms, &[(2, 0.5, 0.1), (2, 0.1, 0.8)]);
        assert_eq!(row, before);
        assert_eq!(
            delta,
            ResampleDelta {
                flipped: 2,
                removed: 1
            }
        );
    }

    #[test]
    fn resample_noop_changes_touch_nothing() {
        let g = mixed_graph();
        let plan = SamplePlan::new(&g);
        let uniforms = vec![0.3f64; g.num_edges()];
        let mut row = vec![0u64; plan.words_per_world()];
        plan.sample_with_uniforms_into(&mut row, &uniforms);
        let before = row.clone();
        // Probability moves that never cross a stored uniform flip nothing.
        let delta = plan.resample_edges_into(
            &mut row,
            &uniforms,
            &[(2, 0.5, 0.4), (4, 0.25, 0.05), (0, 1.0, 0.9)],
        );
        assert_eq!(delta, ResampleDelta::default());
        assert_eq!(row, before);
    }

    proptest! {
        #[test]
        fn plan_equivalent_to_sampler_on_random_graphs(
            edges in proptest::collection::vec((0u32..12, 0u32..12, 0.0f64..=1.0), 0..40),
            seed in any::<u64>(),
        ) {
            let mut g = UncertainGraph::with_nodes(12);
            for (u, v, p) in edges {
                let _ = g.add_edge(u, v, p);
            }
            let plan = SamplePlan::new(&g);
            let worlds = WorldSampler::sample_many(&g, 5, &mut StdRng::seed_from_u64(seed));
            let matrix = plan.sample_matrix(5, &mut StdRng::seed_from_u64(seed));
            for (w, world) in worlds.iter().enumerate() {
                prop_assert_eq!(matrix.world(w), world.as_world_ref());
            }
            // Tail bits stay clear.
            if matrix.words_per_world() > 0 {
                let m_edges = g.num_edges();
                let tail = matrix.row(0)[matrix.words_per_world() - 1];
                if !m_edges.is_multiple_of(64) {
                    prop_assert_eq!(tail >> (m_edges % 64), 0);
                }
            }
        }
    }
}
