//! A fixed-capacity bitset used to represent sampled possible worlds
//! (one bit per edge) compactly: 1000 worlds of a 100k-edge graph occupy
//! ~12.5 MB instead of 100 MB of `Vec<bool>`s.

/// Fixed-capacity bitset backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitset of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitset has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// The backing `u64` words, least-significant bit first. Bits at
    /// positions `>= len` are always clear.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterator over indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitSet::new(130);
        assert_eq!(b.len(), 130);
        b.set(0, true);
        b.set(63, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(65));
        assert_eq!(b.count_ones(), 4);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = BitSet::new(200);
        for i in [3usize, 64, 65, 127, 128, 199] {
            b.set(i, true);
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn clear_resets() {
        let mut b = BitSet::new(10);
        b.set(5, true);
        b.clear();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn empty_bitset() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_get_panics() {
        let b = BitSet::new(8);
        let _ = b.get(8);
    }

    #[test]
    #[should_panic]
    fn out_of_range_set_panics() {
        let mut b = BitSet::new(8);
        b.set(9, true);
    }

    proptest! {
        #[test]
        fn matches_vec_bool(ops in proptest::collection::vec((0usize..256, any::<bool>()), 0..300)) {
            let mut b = BitSet::new(256);
            let mut v = vec![false; 256];
            for (i, val) in ops {
                b.set(i, val);
                v[i] = val;
            }
            for (i, &expected) in v.iter().enumerate() {
                prop_assert_eq!(b.get(i), expected);
            }
            prop_assert_eq!(b.count_ones(), v.iter().filter(|&&x| x).count());
            let ones: Vec<usize> = b.iter_ones().collect();
            let expect: Vec<usize> = (0..256).filter(|&i| v[i]).collect();
            prop_assert_eq!(ones, expect);
        }
    }
}
