//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced by graph construction, mutation and (de)serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node index was out of range for the graph.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// Number of nodes in the graph.
        num_nodes: u32,
    },
    /// A self-loop `(v, v)` was supplied; the paper's model forbids them.
    SelfLoop(u32),
    /// The edge `(u, v)` already exists; the model forbids multi-edges.
    DuplicateEdge(u32, u32),
    /// A probability was outside `[0, 1]` or non-finite.
    InvalidProbability(f64),
    /// An edge index was out of range.
    EdgeOutOfRange {
        /// The offending edge index.
        edge: usize,
        /// Number of edges in the graph.
        num_edges: usize,
    },
    /// A structural capacity limit was exceeded (node/edge ids are dense
    /// `u32` indices; larger inputs would wrap the id arithmetic).
    CapacityExceeded {
        /// Which id space overflowed ("nodes" or "edges").
        what: &'static str,
        /// The maximum representable count.
        limit: u64,
    },
    /// A parse error while reading the text format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An underlying I/O failure (message-only so the error stays `Clone`).
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} is not allowed"),
            GraphError::DuplicateEdge(u, v) => {
                write!(
                    f,
                    "edge ({u}, {v}) already exists; multi-edges are not allowed"
                )
            }
            GraphError::InvalidProbability(p) => {
                write!(f, "probability {p} is not in [0, 1]")
            }
            GraphError::EdgeOutOfRange { edge, num_edges } => {
                write!(
                    f,
                    "edge index {edge} out of range (graph has {num_edges} edges)"
                )
            }
            GraphError::CapacityExceeded { what, limit } => {
                write!(f, "too many {what}: the id space holds at most {limit}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(GraphError::SelfLoop(3).to_string().contains("self-loop"));
        assert!(GraphError::DuplicateEdge(1, 2)
            .to_string()
            .contains("(1, 2)"));
        assert!(GraphError::InvalidProbability(1.5)
            .to_string()
            .contains("1.5"));
        assert!(GraphError::NodeOutOfRange {
            node: 9,
            num_nodes: 4
        }
        .to_string()
        .contains("9"));
        assert!(GraphError::EdgeOutOfRange {
            edge: 7,
            num_edges: 2
        }
        .to_string()
        .contains("7"));
        assert!(GraphError::Parse {
            line: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("line 3"));
    }

    #[test]
    fn io_error_converts() {
        let e: GraphError = std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert!(e.to_string().contains("missing"));
    }
}
