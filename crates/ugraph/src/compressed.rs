//! Delta+RLE compressed world storage (DESIGN.md §12).
//!
//! Every sampled world shares the deterministic template row (p ≥ 1 edges
//! set by [`SamplePlan`]), and most uncertain-edge words differ from the
//! template in only a few bits. [`CompressedWorlds`] therefore stores each
//! world as the word-level XOR delta against the template, run-length
//! encoding the zero words of that delta:
//!
//! ```text
//! row encoding := (varint zero_run, varint lit_len, lit_len × 8-byte LE words)*
//! ```
//!
//! Token pairs alternate a run of `zero_run` delta words (words equal to
//! the template) with `lit_len` literal delta words (stored XORed, little
//! endian). The trailing zero run is omitted — decoding starts from a copy
//! of the template, so words never covered by a literal are already
//! correct. Decoding a row is a template `copy_from_slice` plus one XOR
//! pass over the literals: cheap enough to run once per strip inside the
//! streamed analysis loop.

use crate::varint;
use crate::world_matrix::SamplePlan;

/// An append-only compressed ensemble: the shared template plus per-world
/// delta+RLE byte ranges. Rows decode back bit-identically via
/// [`CompressedWorlds::decode_into`].
#[derive(Debug, Clone)]
pub struct CompressedWorlds {
    template: Vec<u64>,
    words_per_world: usize,
    num_edges: usize,
    /// Byte range of world `w` is `bytes[offsets[w]..offsets[w + 1]]`.
    offsets: Vec<usize>,
    bytes: Vec<u8>,
}

impl CompressedWorlds {
    /// An empty store over `plan`'s template.
    pub fn new(plan: &SamplePlan) -> Self {
        Self {
            template: plan.template().to_vec(),
            words_per_world: plan.words_per_world(),
            num_edges: plan.num_edges(),
            offsets: vec![0],
            bytes: Vec::new(),
        }
    }

    /// Number of worlds stored.
    pub fn num_worlds(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Edge slots per world.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Words per decoded row.
    pub fn words_per_world(&self) -> usize {
        self.words_per_world
    }

    /// Appends one world, encoding `row` (a `words_per_world`-word bitset)
    /// as its delta against the template.
    ///
    /// # Panics
    /// Panics if `row.len() != words_per_world`.
    pub fn push_world(&mut self, row: &[u64]) {
        assert_eq!(row.len(), self.words_per_world, "row width mismatch");
        let mut i = 0;
        while i < row.len() {
            let run_start = i;
            while i < row.len() && row[i] == self.template[i] {
                i += 1;
            }
            if i == row.len() {
                break; // trailing zero run: omitted
            }
            let lit_start = i;
            while i < row.len() && row[i] != self.template[i] {
                i += 1;
            }
            varint::push_u64(&mut self.bytes, (lit_start - run_start) as u64);
            varint::push_u64(&mut self.bytes, (i - lit_start) as u64);
            for (r, t) in row[lit_start..i].iter().zip(&self.template[lit_start..i]) {
                self.bytes.extend_from_slice(&(r ^ t).to_le_bytes());
            }
        }
        self.offsets.push(self.bytes.len());
    }

    /// Decodes world `w` into `row` (bit-identical to the pushed row).
    ///
    /// # Panics
    /// Panics if `w >= num_worlds` or `row.len() != words_per_world`.
    pub fn decode_into(&self, w: usize, row: &mut [u64]) {
        assert!(
            w < self.num_worlds(),
            "world {w} out of {}",
            self.num_worlds()
        );
        assert_eq!(row.len(), self.words_per_world, "row width mismatch");
        row.copy_from_slice(&self.template);
        let mut cursor = self.offsets[w];
        let end = self.offsets[w + 1];
        let mut word = 0usize;
        while cursor < end {
            let (zero_run, used) = varint::decode_u64(&self.bytes[cursor..end]);
            cursor += used;
            let (lit_len, used) = varint::decode_u64(&self.bytes[cursor..end]);
            cursor += used;
            word += zero_run as usize;
            for _ in 0..lit_len {
                let mut le = [0u8; 8];
                le.copy_from_slice(&self.bytes[cursor..cursor + 8]);
                cursor += 8;
                row[word] ^= u64::from_le_bytes(le);
                word += 1;
            }
        }
    }

    /// Bytes of the compressed byte stream plus offsets and template —
    /// what the store actually occupies.
    pub fn compressed_bytes(&self) -> usize {
        self.bytes.len()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.template.len() * std::mem::size_of::<u64>()
    }

    /// Bytes the same worlds occupy as a dense [`WorldMatrix`]
    /// (`num_worlds × words_per_world × 8`).
    ///
    /// [`WorldMatrix`]: crate::world_matrix::WorldMatrix
    pub fn uncompressed_bytes(&self) -> usize {
        self.num_worlds() * self.words_per_world * std::mem::size_of::<u64>()
    }

    /// `uncompressed / compressed` size ratio (≥ 1 means the store wins).
    /// Returns 1.0 for an empty store.
    pub fn compression_ratio(&self) -> f64 {
        let compressed = self.compressed_bytes();
        if compressed == 0 || self.num_worlds() == 0 {
            return 1.0;
        }
        self.uncompressed_bytes() as f64 / compressed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::UncertainGraph;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn chain_graph(edges: &[f64]) -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(edges.len() + 1);
        for (i, &p) in edges.iter().enumerate() {
            g.add_edge(i as u32, i as u32 + 1, p).unwrap();
        }
        g
    }

    #[test]
    fn roundtrips_sampled_worlds() {
        let probs: Vec<f64> = (0..200).map(|i| (i % 10) as f64 / 10.0).collect();
        let g = chain_graph(&probs);
        let plan = SamplePlan::new(&g);
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = CompressedWorlds::new(&plan);
        let mut rows = Vec::new();
        for _ in 0..50 {
            let mut row = vec![0u64; plan.words_per_world()];
            plan.sample_into(&mut row, &mut rng);
            store.push_world(&row);
            rows.push(row);
        }
        assert_eq!(store.num_worlds(), 50);
        let mut decoded = vec![0u64; plan.words_per_world()];
        for (w, row) in rows.iter().enumerate() {
            store.decode_into(w, &mut decoded);
            assert_eq!(&decoded, row, "world {w}");
        }
    }

    #[test]
    fn deterministic_worlds_compress_to_nothing() {
        // All p = 1: every row equals the template, so each world encodes
        // as zero bytes (one omitted trailing run).
        let g = chain_graph(&[1.0; 300]);
        let plan = SamplePlan::new(&g);
        let mut store = CompressedWorlds::new(&plan);
        let mut row = vec![0u64; plan.words_per_world()];
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            plan.sample_into(&mut row, &mut rng);
            store.push_world(&row);
        }
        assert_eq!(store.bytes.len(), 0);
        assert!(store.compression_ratio() > 2.0);
        let mut decoded = vec![0u64; plan.words_per_world()];
        store.decode_into(99, &mut decoded);
        assert_eq!(decoded, plan.template());
    }

    #[test]
    fn edgeless_graph_is_trivial() {
        let g = UncertainGraph::with_nodes(5);
        let plan = SamplePlan::new(&g);
        let mut store = CompressedWorlds::new(&plan);
        for _ in 0..8 {
            store.push_world(&[]);
        }
        assert_eq!(store.num_worlds(), 8);
        assert_eq!(store.uncompressed_bytes(), 0);
        let mut row: [u64; 0] = [];
        store.decode_into(3, &mut row);
    }

    proptest! {
        /// Every pushed row decodes back bit-identically, for arbitrary
        /// probability mixes (deterministic, impossible, uncertain edges).
        #[test]
        fn push_decode_roundtrip(
            raw in proptest::collection::vec((0u8..3, 0.0f64..=1.0), 0..260),
            seed in any::<u64>(),
            n in 1usize..12,
        ) {
            // Tag 0 → impossible, 1 → deterministic, else the drawn p:
            // exercises template bits, absent bits, and uncertain mixes.
            let probs: Vec<f64> = raw
                .iter()
                .map(|&(tag, p)| match tag {
                    0 => 0.0,
                    1 => 1.0,
                    _ => p,
                })
                .collect();
            let g = chain_graph(&probs);
            let plan = SamplePlan::new(&g);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut store = CompressedWorlds::new(&plan);
            let mut rows = Vec::new();
            for _ in 0..n {
                let mut row = vec![0u64; plan.words_per_world()];
                plan.sample_into(&mut row, &mut rng);
                // Occasionally flip a random in-range bit to decouple the
                // roundtrip property from the sampling distribution.
                if plan.num_edges() > 0 && rng.gen::<bool>() {
                    let e = rng.gen_range(0..plan.num_edges());
                    row[e / 64] ^= 1u64 << (e % 64);
                }
                store.push_world(&row);
                rows.push(row);
            }
            let mut decoded = vec![0u64; plan.words_per_world()];
            for (w, row) in rows.iter().enumerate() {
                store.decode_into(w, &mut decoded);
                prop_assert_eq!(&decoded, row);
            }
        }
    }
}
