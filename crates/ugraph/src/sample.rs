//! Possible-world Monte-Carlo sampling.
//!
//! The paper's estimators all share one pattern: draw N possible worlds
//! (N ≈ 1000 "usually suffices to achieve accuracy convergence", §IV-A /
//! §VI-A citing [19], [30]) and average a per-world statistic. The sampler
//! here materializes worlds as edge bitsets so downstream passes (union-find,
//! BFS, triangle counting) can reuse the same ensemble — the core trick of
//! the reused-sampling ERR estimator (Algorithm 2).

use crate::bitset::BitSet;
use crate::graph::UncertainGraph;
use crate::world::World;
use rand::Rng;

/// Samples possible worlds of an uncertain graph.
#[derive(Debug, Clone, Copy)]
pub struct WorldSampler;

impl WorldSampler {
    /// Draws one world: each edge kept independently with its probability.
    pub fn sample<R: Rng + ?Sized>(graph: &UncertainGraph, rng: &mut R) -> World {
        let m = graph.num_edges();
        let mut bits = BitSet::new(m);
        for (i, edge) in graph.edges().iter().enumerate() {
            // Branchless-ish fast paths for deterministic edges.
            let present = if edge.p >= 1.0 {
                true
            } else if edge.p <= 0.0 {
                false
            } else {
                rng.gen::<f64>() < edge.p
            };
            if present {
                bits.set(i, true);
            }
        }
        World::from_bitset(bits)
    }

    /// Draws an ensemble of `n` worlds.
    pub fn sample_many<R: Rng + ?Sized>(
        graph: &UncertainGraph,
        n: usize,
        rng: &mut R,
    ) -> Vec<World> {
        (0..n).map(|_| Self::sample(graph, rng)).collect()
    }

    /// Draws a world from `graph` using an externally supplied uniform
    /// variate per edge (common random numbers): edge `i` is present iff
    /// `uniforms[i] < p(e_i)`.
    ///
    /// This lets an experiment evaluate the *same* underlying randomness on
    /// an original and an anonymized graph, so reliability-discrepancy
    /// estimates are not polluted by independent sampling noise. Edges of
    /// the anonymized graph beyond the original edge count (newly injected
    /// ones) must have their own entries in `uniforms`.
    ///
    /// # Panics
    /// Panics if `uniforms.len() < graph.num_edges()`.
    pub fn sample_with_uniforms(graph: &UncertainGraph, uniforms: &[f64]) -> World {
        let m = graph.num_edges();
        assert!(
            uniforms.len() >= m,
            "need {m} uniforms, got {}",
            uniforms.len()
        );
        let mut bits = BitSet::new(m);
        for (i, edge) in graph.edges().iter().enumerate() {
            if uniforms[i] < edge.p {
                bits.set(i, true);
            }
        }
        World::from_bitset(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 0.0).unwrap();
        g.add_edge(2, 3, 0.5).unwrap();
        g
    }

    #[test]
    fn deterministic_edges_always_respected() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let w = WorldSampler::sample(&g, &mut rng);
            assert!(w.contains(0), "p=1 edge must be present");
            assert!(!w.contains(1), "p=0 edge must be absent");
        }
    }

    #[test]
    fn half_probability_edge_frequency() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 4000;
        let hits = (0..n)
            .filter(|_| WorldSampler::sample(&g, &mut rng).contains(2))
            .count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.5).abs() < 0.03, "freq={freq}");
    }

    #[test]
    fn ensemble_size() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(1);
        let worlds = WorldSampler::sample_many(&g, 17, &mut rng);
        assert_eq!(worlds.len(), 17);
        for w in &worlds {
            assert_eq!(w.num_edge_slots(), g.num_edges());
        }
    }

    #[test]
    fn reproducible_given_seed() {
        let g = graph();
        let w1 = WorldSampler::sample(&g, &mut StdRng::seed_from_u64(42));
        let w2 = WorldSampler::sample(&g, &mut StdRng::seed_from_u64(42));
        assert_eq!(w1, w2);
    }

    #[test]
    fn uniforms_drive_membership() {
        let g = graph();
        // uniforms: edge0 p=1: 0.99 < 1 → present; edge1 p=0: 0.01 !< 0 →
        // absent; edge2 p=0.5: 0.49 < 0.5 → present.
        let w = WorldSampler::sample_with_uniforms(&g, &[0.99, 0.01, 0.49]);
        assert!(w.contains(0));
        assert!(!w.contains(1));
        assert!(w.contains(2));
        let w2 = WorldSampler::sample_with_uniforms(&g, &[0.99, 0.01, 0.51]);
        assert!(!w2.contains(2));
    }

    #[test]
    fn common_random_numbers_align_graphs() {
        // Two graphs differing in one probability: worlds agree on all
        // other edges when driven by the same uniforms.
        let mut g1 = UncertainGraph::with_nodes(3);
        g1.add_edge(0, 1, 0.5).unwrap();
        g1.add_edge(1, 2, 0.5).unwrap();
        let mut g2 = g1.clone();
        g2.set_prob(1, 0.9).unwrap();
        let uniforms = [0.4, 0.7];
        let w1 = WorldSampler::sample_with_uniforms(&g1, &uniforms);
        let w2 = WorldSampler::sample_with_uniforms(&g2, &uniforms);
        assert_eq!(w1.contains(0), w2.contains(0));
        assert!(!w1.contains(1)); // 0.7 >= 0.5
        assert!(w2.contains(1)); // 0.7 < 0.9
    }

    #[test]
    #[should_panic]
    fn too_few_uniforms_panics() {
        let g = graph();
        let _ = WorldSampler::sample_with_uniforms(&g, &[0.5]);
    }
}
