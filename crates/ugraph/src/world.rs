//! Sampled possible worlds and world-restricted graph views.

use crate::bitset::BitSet;
use crate::graph::{EdgeId, NodeId, UncertainGraph};
use crate::union_find::UnionFind;

/// A possible world of an uncertain graph: one bit per edge, set when the
/// edge is present in this world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct World {
    present: BitSet,
}

impl World {
    /// An all-absent world over `num_edges` edges.
    pub fn empty(num_edges: usize) -> Self {
        Self {
            present: BitSet::new(num_edges),
        }
    }

    /// Builds a world from an explicit bitset.
    pub fn from_bitset(present: BitSet) -> Self {
        Self { present }
    }

    /// Number of edge slots (present or not).
    pub fn num_edge_slots(&self) -> usize {
        self.present.len()
    }

    /// True when edge `e` exists in this world.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.present.get(e as usize)
    }

    /// Marks edge `e` present/absent.
    pub fn set(&mut self, e: EdgeId, present: bool) {
        self.present.set(e as usize, present);
    }

    /// Number of edges present.
    pub fn num_present(&self) -> usize {
        self.present.count_ones()
    }

    /// Iterator over the ids of present edges.
    pub fn present_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.present.iter_ones().map(|i| i as EdgeId)
    }

    /// Connected components of the world under `graph`'s topology, as a
    /// populated union-find.
    ///
    /// # Panics
    /// Panics if this world's edge-slot count disagrees with the graph's.
    pub fn components(&self, graph: &UncertainGraph) -> UnionFind {
        assert_eq!(
            self.num_edge_slots(),
            graph.num_edges(),
            "world/graph edge-count mismatch"
        );
        let mut uf = UnionFind::new(graph.num_nodes());
        for e in self.present_edges() {
            let edge = graph.edge(e);
            uf.union(edge.u, edge.v);
        }
        uf
    }

    /// Number of connected vertex pairs in this world (the `cc(G)` statistic
    /// of paper Algorithm 2).
    pub fn connected_pairs(&self, graph: &UncertainGraph) -> u64 {
        self.components(graph).connected_pairs()
    }
}

/// A zero-copy adjacency view of `graph` restricted to the edges present in
/// `world` — the deterministic instance on which per-world metrics (BFS
/// distances, triangles, …) are computed.
#[derive(Debug, Clone, Copy)]
pub struct WorldView<'a> {
    graph: &'a UncertainGraph,
    world: &'a World,
}

impl<'a> WorldView<'a> {
    /// Creates the view.
    ///
    /// # Panics
    /// Panics if world and graph disagree on edge count.
    pub fn new(graph: &'a UncertainGraph, world: &'a World) -> Self {
        assert_eq!(
            world.num_edge_slots(),
            graph.num_edges(),
            "world/graph edge-count mismatch"
        );
        Self { graph, world }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of edges present in the world.
    pub fn num_edges(&self) -> usize {
        self.world.num_present()
    }

    /// The underlying uncertain graph.
    pub fn graph(&self) -> &'a UncertainGraph {
        self.graph
    }

    /// The underlying world.
    pub fn world(&self) -> &'a World {
        self.world
    }

    /// Neighbors of `v` in this world.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        let world = self.world;
        self.graph
            .neighbors(v)
            .iter()
            .filter(move |&&(_, e)| world.contains(e))
            .map(|&(n, _)| n)
    }

    /// Degree of `v` in this world.
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).count()
    }

    /// True when `(u, v)` is an edge present in this world.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.graph
            .find_edge(u, v)
            .map(|e| self.world.contains(e))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> UncertainGraph {
        // 0 - 1 - 2 - 3, all probability 0.5
        let mut g = UncertainGraph::with_nodes(4);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(1, 2, 0.5).unwrap();
        g.add_edge(2, 3, 0.5).unwrap();
        g
    }

    #[test]
    fn empty_world_has_no_edges() {
        let g = path_graph();
        let w = World::empty(g.num_edges());
        assert_eq!(w.num_present(), 0);
        assert_eq!(w.connected_pairs(&g), 0);
        let view = WorldView::new(&g, &w);
        assert_eq!(view.num_edges(), 0);
        assert_eq!(view.degree(1), 0);
    }

    #[test]
    fn full_world_matches_structure() {
        let g = path_graph();
        let mut w = World::empty(g.num_edges());
        for e in 0..g.num_edges() as u32 {
            w.set(e, true);
        }
        assert_eq!(w.num_present(), 3);
        assert_eq!(w.connected_pairs(&g), 6); // C(4,2)
        let view = WorldView::new(&g, &w);
        assert_eq!(view.degree(1), 2);
        assert!(view.has_edge(0, 1));
        assert!(!view.has_edge(0, 3));
        let nbrs: Vec<NodeId> = view.neighbors(2).collect();
        assert_eq!(nbrs, vec![1, 3]);
    }

    #[test]
    fn partial_world_components() {
        let g = path_graph();
        let mut w = World::empty(g.num_edges());
        w.set(0, true); // only 0-1
        let mut uf = w.components(&g);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(1, 2));
        assert_eq!(uf.num_components(), 3);
        assert_eq!(w.connected_pairs(&g), 1);
    }

    #[test]
    fn present_edges_iterator() {
        let g = path_graph();
        let mut w = World::empty(g.num_edges());
        w.set(0, true);
        w.set(2, true);
        let ids: Vec<EdgeId> = w.present_edges().collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn set_and_unset() {
        let mut w = World::empty(5);
        w.set(3, true);
        assert!(w.contains(3));
        w.set(3, false);
        assert!(!w.contains(3));
    }

    #[test]
    #[should_panic]
    fn mismatched_world_panics() {
        let g = path_graph();
        let w = World::empty(99);
        let _ = WorldView::new(&g, &w);
    }

    #[test]
    fn world_view_accessors() {
        let g = path_graph();
        let w = World::empty(g.num_edges());
        let view = WorldView::new(&g, &w);
        assert_eq!(view.num_nodes(), 4);
        assert_eq!(view.graph().num_edges(), 3);
        assert_eq!(view.world().num_present(), 0);
    }
}
