//! Sampled possible worlds and world-restricted graph views.

use crate::bitset::BitSet;
use crate::graph::{EdgeId, NodeId, UncertainGraph};
use crate::union_find::UnionFind;

/// A possible world of an uncertain graph: one bit per edge, set when the
/// edge is present in this world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct World {
    present: BitSet,
}

impl World {
    /// An all-absent world over `num_edges` edges.
    pub fn empty(num_edges: usize) -> Self {
        Self {
            present: BitSet::new(num_edges),
        }
    }

    /// Builds a world from an explicit bitset.
    pub fn from_bitset(present: BitSet) -> Self {
        Self { present }
    }

    /// Number of edge slots (present or not).
    pub fn num_edge_slots(&self) -> usize {
        self.present.len()
    }

    /// True when edge `e` exists in this world.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.present.get(e as usize)
    }

    /// Marks edge `e` present/absent.
    pub fn set(&mut self, e: EdgeId, present: bool) {
        self.present.set(e as usize, present);
    }

    /// Number of edges present.
    pub fn num_present(&self) -> usize {
        self.present.count_ones()
    }

    /// Iterator over the ids of present edges.
    pub fn present_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.present.iter_ones().map(|i| i as EdgeId)
    }

    /// Connected components of the world under `graph`'s topology, as a
    /// populated union-find.
    ///
    /// # Panics
    /// Panics if this world's edge-slot count disagrees with the graph's.
    pub fn components(&self, graph: &UncertainGraph) -> UnionFind {
        assert_eq!(
            self.num_edge_slots(),
            graph.num_edges(),
            "world/graph edge-count mismatch"
        );
        let mut uf = UnionFind::new(graph.num_nodes());
        for e in self.present_edges() {
            let edge = graph.edge(e);
            uf.union(edge.u, edge.v);
        }
        uf
    }

    /// Number of connected vertex pairs in this world (the `cc(G)` statistic
    /// of paper Algorithm 2).
    pub fn connected_pairs(&self, graph: &UncertainGraph) -> u64 {
        self.components(graph).connected_pairs()
    }

    /// A borrowed word-level view of this world.
    pub fn as_world_ref(&self) -> WorldRef<'_> {
        WorldRef {
            words: self.present.words(),
            len: self.present.len(),
        }
    }
}

/// A borrowed possible world: one bit per edge over a `u64` word slice.
///
/// This is the common currency between [`World`] (one owned bitset per
/// world) and the arena-backed `WorldMatrix` (all worlds in one contiguous
/// allocation): both lend out `WorldRef`s, so downstream metrics written
/// against [`WorldView`] work with either storage. Bits at positions
/// `>= num_edge_slots()` are always clear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldRef<'a> {
    words: &'a [u64],
    len: usize,
}

impl<'a> WorldRef<'a> {
    /// Wraps an explicit word slice of `len` bits.
    ///
    /// # Panics
    /// Panics if `words` is not exactly `ceil(len / 64)` words long.
    pub fn from_words(words: &'a [u64], len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(64),
            "word slice length disagrees with bit length {len}"
        );
        Self { words, len }
    }

    /// Number of edge slots (present or not).
    pub fn num_edge_slots(&self) -> usize {
        self.len
    }

    /// True when edge `e` exists in this world.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        let i = e as usize;
        assert!(i < self.len, "edge index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of edges present.
    pub fn num_present(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the ids of present edges, ascending.
    pub fn present_edges(&self) -> impl Iterator<Item = EdgeId> + 'a {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(wi as EdgeId * 64 + b)
                }
            })
        })
    }

    /// The backing `u64` words, least-significant bit first.
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Unions the endpoints of every present edge into `uf`, in ascending
    /// edge order, using SoA endpoint arrays (`us[e]`, `vs[e]`). Returns
    /// the number of present edges.
    ///
    /// # Panics
    /// Panics if the endpoint arrays are shorter than the edge-slot count.
    pub fn union_into(&self, us: &[u32], vs: &[u32], uf: &mut UnionFind) -> usize {
        assert!(us.len() >= self.len && vs.len() >= self.len);
        let mut present = 0usize;
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let e = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                uf.union(us[e], vs[e]);
                present += 1;
            }
        }
        present
    }
}

impl<'a> From<&'a World> for WorldRef<'a> {
    fn from(world: &'a World) -> Self {
        world.as_world_ref()
    }
}

/// A zero-copy adjacency view of `graph` restricted to the edges present in
/// `world` — the deterministic instance on which per-world metrics (BFS
/// distances, triangles, …) are computed.
#[derive(Debug, Clone, Copy)]
pub struct WorldView<'a> {
    graph: &'a UncertainGraph,
    world: WorldRef<'a>,
}

impl<'a> WorldView<'a> {
    /// Creates the view from an owned [`World`] reference or a [`WorldRef`].
    ///
    /// # Panics
    /// Panics if world and graph disagree on edge count.
    pub fn new(graph: &'a UncertainGraph, world: impl Into<WorldRef<'a>>) -> Self {
        let world = world.into();
        assert_eq!(
            world.num_edge_slots(),
            graph.num_edges(),
            "world/graph edge-count mismatch"
        );
        Self { graph, world }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of edges present in the world.
    pub fn num_edges(&self) -> usize {
        self.world.num_present()
    }

    /// The underlying uncertain graph.
    pub fn graph(&self) -> &'a UncertainGraph {
        self.graph
    }

    /// The underlying world.
    pub fn world(&self) -> WorldRef<'a> {
        self.world
    }

    /// Neighbors of `v` in this world.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        let world = self.world;
        self.graph
            .neighbors(v)
            .iter()
            .filter(move |&&(_, e)| world.contains(e))
            .map(|&(n, _)| n)
    }

    /// Degree of `v` in this world.
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).count()
    }

    /// True when `(u, v)` is an edge present in this world.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.graph
            .find_edge(u, v)
            .map(|e| self.world.contains(e))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> UncertainGraph {
        // 0 - 1 - 2 - 3, all probability 0.5
        let mut g = UncertainGraph::with_nodes(4);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(1, 2, 0.5).unwrap();
        g.add_edge(2, 3, 0.5).unwrap();
        g
    }

    #[test]
    fn empty_world_has_no_edges() {
        let g = path_graph();
        let w = World::empty(g.num_edges());
        assert_eq!(w.num_present(), 0);
        assert_eq!(w.connected_pairs(&g), 0);
        let view = WorldView::new(&g, &w);
        assert_eq!(view.num_edges(), 0);
        assert_eq!(view.degree(1), 0);
    }

    #[test]
    fn full_world_matches_structure() {
        let g = path_graph();
        let mut w = World::empty(g.num_edges());
        for e in 0..g.num_edges() as u32 {
            w.set(e, true);
        }
        assert_eq!(w.num_present(), 3);
        assert_eq!(w.connected_pairs(&g), 6); // C(4,2)
        let view = WorldView::new(&g, &w);
        assert_eq!(view.degree(1), 2);
        assert!(view.has_edge(0, 1));
        assert!(!view.has_edge(0, 3));
        let nbrs: Vec<NodeId> = view.neighbors(2).collect();
        assert_eq!(nbrs, vec![1, 3]);
    }

    #[test]
    fn partial_world_components() {
        let g = path_graph();
        let mut w = World::empty(g.num_edges());
        w.set(0, true); // only 0-1
        let mut uf = w.components(&g);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(1, 2));
        assert_eq!(uf.num_components(), 3);
        assert_eq!(w.connected_pairs(&g), 1);
    }

    #[test]
    fn present_edges_iterator() {
        let g = path_graph();
        let mut w = World::empty(g.num_edges());
        w.set(0, true);
        w.set(2, true);
        let ids: Vec<EdgeId> = w.present_edges().collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn set_and_unset() {
        let mut w = World::empty(5);
        w.set(3, true);
        assert!(w.contains(3));
        w.set(3, false);
        assert!(!w.contains(3));
    }

    #[test]
    #[should_panic]
    fn mismatched_world_panics() {
        let g = path_graph();
        let w = World::empty(99);
        let _ = WorldView::new(&g, &w);
    }

    #[test]
    fn world_ref_matches_world() {
        let mut w = World::empty(130);
        for e in [0u32, 63, 64, 129] {
            w.set(e, true);
        }
        let r = w.as_world_ref();
        assert_eq!(r.num_edge_slots(), 130);
        assert_eq!(r.num_present(), w.num_present());
        assert!(r.contains(64) && !r.contains(65));
        let from_ref: Vec<EdgeId> = r.present_edges().collect();
        let from_world: Vec<EdgeId> = w.present_edges().collect();
        assert_eq!(from_ref, from_world);
        assert_eq!(r.words(), WorldRef::from(&w).words());
        assert_eq!(WorldRef::from_words(r.words(), 130), r);
    }

    #[test]
    fn world_ref_union_into_matches_components() {
        let g = path_graph();
        let mut w = World::empty(g.num_edges());
        w.set(0, true);
        w.set(2, true);
        let (us, vs) = g.endpoint_soa();
        let mut uf = UnionFind::new(g.num_nodes());
        let present = w.as_world_ref().union_into(&us, &vs, &mut uf);
        assert_eq!(present, 2);
        let mut expect = w.components(&g);
        for a in 0..g.num_nodes() as u32 {
            for b in 0..g.num_nodes() as u32 {
                assert_eq!(uf.connected(a, b), expect.connected(a, b));
            }
        }
    }

    #[test]
    #[should_panic]
    fn world_ref_from_words_length_mismatch_panics() {
        let words = [0u64; 1];
        let _ = WorldRef::from_words(&words, 65);
    }

    #[test]
    fn world_view_accessors() {
        let g = path_graph();
        let w = World::empty(g.num_edges());
        let view = WorldView::new(&g, &w);
        assert_eq!(view.num_nodes(), 4);
        assert_eq!(view.graph().num_edges(), 3);
        assert_eq!(view.world().num_present(), 0);
    }
}
