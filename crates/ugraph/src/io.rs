//! Plain-text edge-list interchange format.
//!
//! ```text
//! # optional comments
//! nodes 5
//! 0 1 0.75
//! 1 2 0.20
//! ```
//!
//! A `nodes N` header fixes the node count (otherwise it is inferred as
//! 1 + the largest endpoint). Duplicate records resolve via the caller's
//! [`DedupPolicy`]. This is the format produced for anonymized releases and
//! consumed by the examples and the CLI-style experiment binaries.

use crate::builder::{DedupPolicy, GraphBuilder};
use crate::error::GraphError;
use crate::graph::UncertainGraph;
use std::io::{BufRead, Write};
use std::path::Path;

/// Writes a graph in the text format.
pub fn write_text<W: Write>(graph: &UncertainGraph, mut out: W) -> Result<(), GraphError> {
    writeln!(
        out,
        "# uncertain graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    writeln!(out, "nodes {}", graph.num_nodes())?;
    for e in graph.edges() {
        writeln!(out, "{} {} {}", e.u, e.v, e.p)?;
    }
    Ok(())
}

/// Writes a graph to a file.
pub fn write_file<P: AsRef<Path>>(graph: &UncertainGraph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_text(graph, std::io::BufWriter::new(file))
}

/// Reads a graph in the text format.
pub fn read_text<R: BufRead>(input: R, policy: DedupPolicy) -> Result<UncertainGraph, GraphError> {
    let mut builder = GraphBuilder::new(0).dedup_policy(policy);
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("nodes ") {
            let n: usize = rest.trim().parse().map_err(|_| GraphError::Parse {
                line: lineno,
                message: format!("invalid node count: {rest:?}"),
            })?;
            // Checked at the deserialization boundary: a hostile header
            // beyond the dense-u32 node id space must not reach the
            // builder, where it would later wrap id arithmetic.
            if n > u32::MAX as usize {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("node count {n} exceeds the u32 id space"),
                });
            }
            builder.ensure_nodes(n);
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse_u32 = |tok: Option<&str>, what: &str| -> Result<u32, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno,
                message: format!("missing {what}"),
            })?
            .parse()
            .map_err(|_| GraphError::Parse {
                line: lineno,
                message: format!("invalid {what}"),
            })
        };
        let u = parse_u32(parts.next(), "source node")?;
        let v = parse_u32(parts.next(), "target node")?;
        let p: f64 = parts
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: lineno,
                message: "missing probability".into(),
            })?
            .parse()
            .map_err(|_| GraphError::Parse {
                line: lineno,
                message: "invalid probability".into(),
            })?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: lineno,
                message: "trailing tokens".into(),
            });
        }
        builder.add_edge(u, v, p).map_err(|e| GraphError::Parse {
            line: lineno,
            message: e.to_string(),
        })?;
    }
    Ok(builder.build())
}

/// Reads a graph from a file.
pub fn read_file<P: AsRef<Path>>(
    path: P,
    policy: DedupPolicy,
) -> Result<UncertainGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_text(std::io::BufReader::new(file), policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_graph() -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(5);
        g.add_edge(0, 1, 0.75).unwrap();
        g.add_edge(1, 2, 0.2).unwrap();
        g.add_edge(3, 4, 1.0).unwrap();
        g
    }

    #[test]
    fn roundtrip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let g2 = read_text(buf.as_slice(), DedupPolicy::Reject).unwrap();
        assert_eq!(g2.num_nodes(), 5);
        assert_eq!(g2.num_edges(), 3);
        for (a, b) in g.edges().iter().zip(g2.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.p - b.p).abs() < 1e-15);
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join("chameleon-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        write_file(&g, &path).unwrap();
        let g2 = read_file(&path, DedupPolicy::Reject).unwrap();
        assert_eq!(g2.num_edges(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\nnodes 3\n0 1 0.5\n# middle\n1 2 0.25\n";
        let g = read_text(text.as_bytes(), DedupPolicy::Reject).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn node_count_inferred_without_header() {
        let text = "0 9 0.5\n";
        let g = read_text(text.as_bytes(), DedupPolicy::Reject).unwrap();
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn header_can_exceed_max_endpoint() {
        let text = "nodes 20\n0 1 0.5\n";
        let g = read_text(text.as_bytes(), DedupPolicy::Reject).unwrap();
        assert_eq!(g.num_nodes(), 20);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad_prob = "0 1 nope\n";
        match read_text(bad_prob.as_bytes(), DedupPolicy::Reject) {
            Err(GraphError::Parse { line: 1, message }) => {
                assert!(message.contains("probability"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        let missing = "nodes 3\n0\n";
        match read_text(missing.as_bytes(), DedupPolicy::Reject) {
            Err(GraphError::Parse { line: 2, .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        let trailing = "0 1 0.5 extra\n";
        assert!(matches!(
            read_text(trailing.as_bytes(), DedupPolicy::Reject),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn self_loop_rejected_with_line() {
        let text = "2 2 0.5\n";
        match read_text(text.as_bytes(), DedupPolicy::Reject) {
            Err(GraphError::Parse { line: 1, message }) => {
                assert!(message.contains("self-loop"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn duplicate_policy_applied() {
        let text = "0 1 0.5\n1 0 0.9\n";
        let g = read_text(text.as_bytes(), DedupPolicy::KeepLast).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!((g.prob(0) - 0.9).abs() < 1e-15);
        assert!(read_text(text.as_bytes(), DedupPolicy::Reject).is_err());
    }

    #[test]
    fn oversized_node_header_rejected() {
        let text = format!("nodes {}\n0 1 0.5\n", u32::MAX as u64 + 1);
        match read_text(text.as_bytes(), DedupPolicy::Reject) {
            Err(GraphError::Parse { line: 1, message }) => {
                assert!(message.contains("u32"), "message: {message}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_file("/nonexistent/chameleon/file.txt", DedupPolicy::Reject).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }

    /// Serializes a graph to the text format in memory.
    fn to_bytes(g: &UncertainGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_text(g, &mut buf).unwrap();
        buf
    }

    #[test]
    fn empty_graph_rewrites_byte_identically() {
        let g = UncertainGraph::with_nodes(0);
        let first = to_bytes(&g);
        let g2 = read_text(first.as_slice(), DedupPolicy::Reject).unwrap();
        assert_eq!(g2.num_nodes(), 0);
        assert_eq!(g2.num_edges(), 0);
        assert_eq!(first, to_bytes(&g2));
    }

    #[test]
    fn single_edge_graph_rewrites_byte_identically() {
        let mut g = UncertainGraph::with_nodes(2);
        g.add_edge(0, 1, 0.123_456_789_012_345_67).unwrap();
        let first = to_bytes(&g);
        let g2 = read_text(first.as_slice(), DedupPolicy::Reject).unwrap();
        assert_eq!(first, to_bytes(&g2));
    }

    #[test]
    fn isolated_trailing_nodes_survive_the_roundtrip() {
        // Nodes above the largest endpoint only exist via the header.
        let mut g = UncertainGraph::with_nodes(7);
        g.add_edge(0, 1, 0.5).unwrap();
        let first = to_bytes(&g);
        let g2 = read_text(first.as_slice(), DedupPolicy::Reject).unwrap();
        assert_eq!(g2.num_nodes(), 7);
        assert_eq!(first, to_bytes(&g2));
    }

    proptest! {
        /// The strongest fixed-point property the format supports: a
        /// write → read → re-write cycle reproduces the exact bytes, so
        /// published releases are stable under re-serialization (edge
        /// order, node count header, and every probability's shortest
        /// `Display` form are all preserved).
        #[test]
        fn rewrite_is_byte_identical(
            edges in proptest::collection::vec((0u32..40, 0u32..40, 0.0f64..=1.0), 0..120),
            extra_nodes in 0usize..10
        ) {
            let mut builder = crate::builder::GraphBuilder::new(0);
            for (u, v, p) in edges {
                let _ = builder.add_edge(u, v, p);
            }
            builder.ensure_nodes(extra_nodes);
            let g = builder.build();
            let first = to_bytes(&g);
            let reread = read_text(first.as_slice(), DedupPolicy::Reject).unwrap();
            prop_assert_eq!(&first, &to_bytes(&reread));
            // And the cycle is idempotent, not merely involutive: a
            // second cycle starts from identical bytes, hence stays.
            let reread2 = read_text(first.as_slice(), DedupPolicy::Reject).unwrap();
            prop_assert_eq!(&first, &to_bytes(&reread2));
        }

        #[test]
        fn roundtrip_arbitrary_graphs(
            edges in proptest::collection::vec((0u32..40, 0u32..40, 0.0f64..=1.0), 0..120),
            extra_nodes in 0usize..10
        ) {
            let mut builder = crate::builder::GraphBuilder::new(0);
            for (u, v, p) in edges {
                let _ = builder.add_edge(u, v, p);
            }
            builder.ensure_nodes(extra_nodes);
            let g = builder.build();
            let mut buf = Vec::new();
            write_text(&g, &mut buf).unwrap();
            let g2 = read_text(buf.as_slice(), DedupPolicy::Reject).unwrap();
            prop_assert_eq!(g.num_nodes(), g2.num_nodes());
            prop_assert_eq!(g.num_edges(), g2.num_edges());
            for (a, b) in g.edges().iter().zip(g2.edges()) {
                prop_assert_eq!((a.u, a.v), (b.u, b.v));
                // f64 Display round-trips exactly in Rust.
                prop_assert_eq!(a.p.to_bits(), b.p.to_bits());
            }
        }
    }
}
