//! Graph interchange formats: plain text and compact binary.
//!
//! **Text** (human-readable, the historical release format):
//!
//! ```text
//! # optional comments
//! nodes 5
//! 0 1 0.75
//! 1 2 0.20
//! ```
//!
//! A `nodes N` header fixes the node count (otherwise it is inferred as
//! 1 + the largest endpoint). Duplicate records resolve via the caller's
//! [`DedupPolicy`]. The reader streams line-by-line through one reused
//! buffer — it never holds more than a single line in memory, so
//! million-edge files parse without a file-sized allocation.
//!
//! **Binary** (compact, for population-scale inputs):
//!
//! ```text
//! magic "CUGB" · version 0x01 · varint num_nodes · varint num_edges ·
//! (varint u · varint v · 8-byte LE f64 probability)*
//! ```
//!
//! Varints are canonical LEB128 and probabilities are exact IEEE-754
//! bits, so for a canonically built graph (normalized endpoints,
//! first-seen edge order — what [`GraphBuilder`] produces) a
//! write → read → re-write cycle is byte-identical; this is proptested.
//! [`read_file`] auto-detects the format from the leading magic bytes.

use crate::builder::{DedupPolicy, GraphBuilder};
use crate::error::GraphError;
use crate::graph::UncertainGraph;
use crate::varint;
use std::io::{BufRead, Write};
use std::path::Path;

/// Leading magic of the binary format ("Chameleon Uncertain Graph,
/// Binary").
pub const BINARY_MAGIC: [u8; 4] = *b"CUGB";

/// Current binary format version.
pub const BINARY_VERSION: u8 = 1;

/// Writes a graph in the text format.
pub fn write_text<W: Write>(graph: &UncertainGraph, mut out: W) -> Result<(), GraphError> {
    writeln!(
        out,
        "# uncertain graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    writeln!(out, "nodes {}", graph.num_nodes())?;
    for e in graph.edges() {
        writeln!(out, "{} {} {}", e.u, e.v, e.p)?;
    }
    Ok(())
}

/// Writes a graph to a file.
pub fn write_file<P: AsRef<Path>>(graph: &UncertainGraph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_text(graph, std::io::BufWriter::new(file))
}

/// Reads a graph in the text format, streaming one line at a time
/// through a reused buffer (no per-line allocation, no file-sized
/// buffering).
pub fn read_text<R: BufRead>(
    mut input: R,
    policy: DedupPolicy,
) -> Result<UncertainGraph, GraphError> {
    let mut builder = GraphBuilder::new(0).dedup_policy(policy);
    let mut buf = String::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        if input.read_line(&mut buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("nodes ") {
            let n: usize = rest.trim().parse().map_err(|_| GraphError::Parse {
                line: lineno,
                message: format!("invalid node count: {rest:?}"),
            })?;
            // Checked at the deserialization boundary: a hostile header
            // beyond the dense-u32 node id space must not reach the
            // builder, where it would later wrap id arithmetic.
            if n > u32::MAX as usize {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("node count {n} exceeds the u32 id space"),
                });
            }
            builder.ensure_nodes(n);
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse_u32 = |tok: Option<&str>, what: &str| -> Result<u32, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno,
                message: format!("missing {what}"),
            })?
            .parse()
            .map_err(|_| GraphError::Parse {
                line: lineno,
                message: format!("invalid {what}"),
            })
        };
        let u = parse_u32(parts.next(), "source node")?;
        let v = parse_u32(parts.next(), "target node")?;
        let p: f64 = parts
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: lineno,
                message: "missing probability".into(),
            })?
            .parse()
            .map_err(|_| GraphError::Parse {
                line: lineno,
                message: "invalid probability".into(),
            })?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: lineno,
                message: "trailing tokens".into(),
            });
        }
        builder.add_edge(u, v, p).map_err(|e| GraphError::Parse {
            line: lineno,
            message: e.to_string(),
        })?;
    }
    Ok(builder.build())
}

/// Writes a graph in the binary format (see module docs).
pub fn write_binary<W: Write>(graph: &UncertainGraph, mut out: W) -> Result<(), GraphError> {
    out.write_all(&BINARY_MAGIC)?;
    out.write_all(&[BINARY_VERSION])?;
    varint::write_u64(&mut out, graph.num_nodes() as u64)?;
    varint::write_u64(&mut out, graph.num_edges() as u64)?;
    for e in graph.edges() {
        varint::write_u64(&mut out, u64::from(e.u))?;
        varint::write_u64(&mut out, u64::from(e.v))?;
        out.write_all(&e.p.to_le_bytes())?;
    }
    Ok(())
}

/// Writes a graph to a file in the binary format.
pub fn write_binary_file<P: AsRef<Path>>(
    graph: &UncertainGraph,
    path: P,
) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    write_binary(graph, &mut out)?;
    Ok(out.flush()?)
}

fn binary_parse_err(message: impl Into<String>) -> GraphError {
    GraphError::Parse {
        line: 0,
        message: message.into(),
    }
}

/// Reads a graph in the binary format, streaming edge records one at a
/// time (memory stays O(graph), never O(file) on top of it).
pub fn read_binary<R: BufRead>(
    mut input: R,
    policy: DedupPolicy,
) -> Result<UncertainGraph, GraphError> {
    let mut header = [0u8; 5];
    input.read_exact(&mut header)?;
    if header[..4] != BINARY_MAGIC {
        return Err(binary_parse_err("bad magic: not a binary uncertain graph"));
    }
    if header[4] != BINARY_VERSION {
        return Err(binary_parse_err(format!(
            "unsupported binary format version {}",
            header[4]
        )));
    }
    let num_nodes = varint::read_u64(&mut input)?;
    if num_nodes > u64::from(u32::MAX) {
        // Same deserialization-boundary guard as the text header.
        return Err(binary_parse_err(format!(
            "node count {num_nodes} exceeds the u32 id space"
        )));
    }
    let num_edges = varint::read_u64(&mut input)?;
    let mut builder = GraphBuilder::new(0).dedup_policy(policy);
    builder.ensure_nodes(num_nodes as usize);
    for i in 0..num_edges {
        let edge_err = |e: String| binary_parse_err(format!("edge record {i}: {e}"));
        let u = varint::read_u64(&mut input)?;
        let v = varint::read_u64(&mut input)?;
        if u > u64::from(u32::MAX) || v > u64::from(u32::MAX) {
            return Err(edge_err(format!("endpoint out of u32 range ({u}, {v})")));
        }
        let mut p_bits = [0u8; 8];
        input.read_exact(&mut p_bits)?;
        builder
            .add_edge(u as u32, v as u32, f64::from_le_bytes(p_bits))
            .map_err(|e| edge_err(e.to_string()))?;
    }
    Ok(builder.build())
}

/// Reads a graph from a binary-format file.
pub fn read_binary_file<P: AsRef<Path>>(
    path: P,
    policy: DedupPolicy,
) -> Result<UncertainGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_binary(std::io::BufReader::new(file), policy)
}

/// Reads a graph from a file, auto-detecting text vs binary format from
/// the leading magic bytes.
pub fn read_file<P: AsRef<Path>>(
    path: P,
    policy: DedupPolicy,
) -> Result<UncertainGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::new(file);
    let is_binary = {
        let head = reader.fill_buf()?;
        head.len() >= 4 && head[..4] == BINARY_MAGIC
    };
    if is_binary {
        read_binary(reader, policy)
    } else {
        read_text(reader, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_graph() -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(5);
        g.add_edge(0, 1, 0.75).unwrap();
        g.add_edge(1, 2, 0.2).unwrap();
        g.add_edge(3, 4, 1.0).unwrap();
        g
    }

    #[test]
    fn roundtrip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let g2 = read_text(buf.as_slice(), DedupPolicy::Reject).unwrap();
        assert_eq!(g2.num_nodes(), 5);
        assert_eq!(g2.num_edges(), 3);
        for (a, b) in g.edges().iter().zip(g2.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.p - b.p).abs() < 1e-15);
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join("chameleon-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        write_file(&g, &path).unwrap();
        let g2 = read_file(&path, DedupPolicy::Reject).unwrap();
        assert_eq!(g2.num_edges(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\nnodes 3\n0 1 0.5\n# middle\n1 2 0.25\n";
        let g = read_text(text.as_bytes(), DedupPolicy::Reject).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn node_count_inferred_without_header() {
        let text = "0 9 0.5\n";
        let g = read_text(text.as_bytes(), DedupPolicy::Reject).unwrap();
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn header_can_exceed_max_endpoint() {
        let text = "nodes 20\n0 1 0.5\n";
        let g = read_text(text.as_bytes(), DedupPolicy::Reject).unwrap();
        assert_eq!(g.num_nodes(), 20);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad_prob = "0 1 nope\n";
        match read_text(bad_prob.as_bytes(), DedupPolicy::Reject) {
            Err(GraphError::Parse { line: 1, message }) => {
                assert!(message.contains("probability"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        let missing = "nodes 3\n0\n";
        match read_text(missing.as_bytes(), DedupPolicy::Reject) {
            Err(GraphError::Parse { line: 2, .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        let trailing = "0 1 0.5 extra\n";
        assert!(matches!(
            read_text(trailing.as_bytes(), DedupPolicy::Reject),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn self_loop_rejected_with_line() {
        let text = "2 2 0.5\n";
        match read_text(text.as_bytes(), DedupPolicy::Reject) {
            Err(GraphError::Parse { line: 1, message }) => {
                assert!(message.contains("self-loop"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn duplicate_policy_applied() {
        let text = "0 1 0.5\n1 0 0.9\n";
        let g = read_text(text.as_bytes(), DedupPolicy::KeepLast).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!((g.prob(0) - 0.9).abs() < 1e-15);
        assert!(read_text(text.as_bytes(), DedupPolicy::Reject).is_err());
    }

    #[test]
    fn oversized_node_header_rejected() {
        let text = format!("nodes {}\n0 1 0.5\n", u32::MAX as u64 + 1);
        match read_text(text.as_bytes(), DedupPolicy::Reject) {
            Err(GraphError::Parse { line: 1, message }) => {
                assert!(message.contains("u32"), "message: {message}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_file("/nonexistent/chameleon/file.txt", DedupPolicy::Reject).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }

    /// Serializes a graph to the text format in memory.
    fn to_bytes(g: &UncertainGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_text(g, &mut buf).unwrap();
        buf
    }

    #[test]
    fn empty_graph_rewrites_byte_identically() {
        let g = UncertainGraph::with_nodes(0);
        let first = to_bytes(&g);
        let g2 = read_text(first.as_slice(), DedupPolicy::Reject).unwrap();
        assert_eq!(g2.num_nodes(), 0);
        assert_eq!(g2.num_edges(), 0);
        assert_eq!(first, to_bytes(&g2));
    }

    #[test]
    fn single_edge_graph_rewrites_byte_identically() {
        let mut g = UncertainGraph::with_nodes(2);
        g.add_edge(0, 1, 0.123_456_789_012_345_67).unwrap();
        let first = to_bytes(&g);
        let g2 = read_text(first.as_slice(), DedupPolicy::Reject).unwrap();
        assert_eq!(first, to_bytes(&g2));
    }

    #[test]
    fn isolated_trailing_nodes_survive_the_roundtrip() {
        // Nodes above the largest endpoint only exist via the header.
        let mut g = UncertainGraph::with_nodes(7);
        g.add_edge(0, 1, 0.5).unwrap();
        let first = to_bytes(&g);
        let g2 = read_text(first.as_slice(), DedupPolicy::Reject).unwrap();
        assert_eq!(g2.num_nodes(), 7);
        assert_eq!(first, to_bytes(&g2));
    }

    /// Serializes a graph to the binary format in memory.
    fn to_binary_bytes(g: &UncertainGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_binary(g, &mut buf).unwrap();
        buf
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let g = sample_graph();
        let bytes = to_binary_bytes(&g);
        let g2 = read_binary(bytes.as_slice(), DedupPolicy::Reject).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (a, b) in g.edges().iter().zip(g2.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert_eq!(a.p.to_bits(), b.p.to_bits());
        }
    }

    #[test]
    fn binary_file_roundtrip_and_autodetect() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join("chameleon-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.cugb");
        write_binary_file(&g, &path).unwrap();
        let explicit = read_binary_file(&path, DedupPolicy::Reject).unwrap();
        // read_file sniffs the magic and dispatches to the binary reader.
        let sniffed = read_file(&path, DedupPolicy::Reject).unwrap();
        assert_eq!(explicit.num_edges(), 3);
        assert_eq!(sniffed.num_edges(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_bad_magic_version_and_truncation() {
        let g = sample_graph();
        let good = to_binary_bytes(&g);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        match read_binary(bad_magic.as_slice(), DedupPolicy::Reject) {
            Err(GraphError::Parse { message, .. }) => assert!(message.contains("magic")),
            other => panic!("unexpected: {other:?}"),
        }

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        match read_binary(bad_version.as_slice(), DedupPolicy::Reject) {
            Err(GraphError::Parse { message, .. }) => assert!(message.contains("version")),
            other => panic!("unexpected: {other:?}"),
        }

        let truncated = &good[..good.len() - 3];
        assert!(matches!(
            read_binary(truncated, DedupPolicy::Reject),
            Err(GraphError::Io(_))
        ));
    }

    #[test]
    fn binary_rejects_invalid_probability_bits() {
        // Hand-build a record whose f64 bits decode to 7.0.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BINARY_MAGIC);
        bytes.push(BINARY_VERSION);
        bytes.push(2); // num_nodes
        bytes.push(1); // num_edges
        bytes.push(0); // u
        bytes.push(1); // v
        bytes.extend_from_slice(&7.0f64.to_le_bytes());
        match read_binary(bytes.as_slice(), DedupPolicy::Reject) {
            Err(GraphError::Parse { message, .. }) => {
                assert!(message.contains("edge record 0"), "{message}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn binary_header_node_count_can_exceed_max_endpoint() {
        let mut builder = GraphBuilder::new(0);
        builder.add_edge(0, 1, 0.5).unwrap();
        builder.ensure_nodes(20);
        let g = builder.build();
        let bytes = to_binary_bytes(&g);
        let g2 = read_binary(bytes.as_slice(), DedupPolicy::Reject).unwrap();
        assert_eq!(g2.num_nodes(), 20);
        assert_eq!(bytes, to_binary_bytes(&g2));
    }

    proptest! {
        /// The binary analogue of `rewrite_is_byte_identical`: canonical
        /// varints plus exact f64 bits make write → read → re-write a
        /// byte-level fixed point for canonically built graphs.
        #[test]
        fn binary_rewrite_is_byte_identical(
            edges in proptest::collection::vec((0u32..40, 0u32..40, 0.0f64..=1.0), 0..120),
            extra_nodes in 0usize..10
        ) {
            let mut builder = crate::builder::GraphBuilder::new(0);
            for (u, v, p) in edges {
                let _ = builder.add_edge(u, v, p);
            }
            builder.ensure_nodes(extra_nodes);
            let g = builder.build();
            let first = to_binary_bytes(&g);
            let reread = read_binary(first.as_slice(), DedupPolicy::Reject).unwrap();
            prop_assert_eq!(&first, &to_binary_bytes(&reread));
            let reread2 = read_binary(first.as_slice(), DedupPolicy::Reject).unwrap();
            prop_assert_eq!(&first, &to_binary_bytes(&reread2));
        }

        /// Binary and text readers agree on the graphs they produce.
        #[test]
        fn binary_and_text_agree(
            edges in proptest::collection::vec((0u32..40, 0u32..40, 0.0f64..=1.0), 0..60),
        ) {
            let mut builder = crate::builder::GraphBuilder::new(0);
            for (u, v, p) in edges {
                let _ = builder.add_edge(u, v, p);
            }
            let g = builder.build();
            let from_text =
                read_text(to_bytes(&g).as_slice(), DedupPolicy::Reject).unwrap();
            let from_binary =
                read_binary(to_binary_bytes(&g).as_slice(), DedupPolicy::Reject).unwrap();
            prop_assert_eq!(from_text.num_nodes(), from_binary.num_nodes());
            prop_assert_eq!(from_text.num_edges(), from_binary.num_edges());
            for (a, b) in from_text.edges().iter().zip(from_binary.edges()) {
                prop_assert_eq!((a.u, a.v), (b.u, b.v));
                prop_assert_eq!(a.p.to_bits(), b.p.to_bits());
            }
        }
    }

    proptest! {
        /// The strongest fixed-point property the format supports: a
        /// write → read → re-write cycle reproduces the exact bytes, so
        /// published releases are stable under re-serialization (edge
        /// order, node count header, and every probability's shortest
        /// `Display` form are all preserved).
        #[test]
        fn rewrite_is_byte_identical(
            edges in proptest::collection::vec((0u32..40, 0u32..40, 0.0f64..=1.0), 0..120),
            extra_nodes in 0usize..10
        ) {
            let mut builder = crate::builder::GraphBuilder::new(0);
            for (u, v, p) in edges {
                let _ = builder.add_edge(u, v, p);
            }
            builder.ensure_nodes(extra_nodes);
            let g = builder.build();
            let first = to_bytes(&g);
            let reread = read_text(first.as_slice(), DedupPolicy::Reject).unwrap();
            prop_assert_eq!(&first, &to_bytes(&reread));
            // And the cycle is idempotent, not merely involutive: a
            // second cycle starts from identical bytes, hence stays.
            let reread2 = read_text(first.as_slice(), DedupPolicy::Reject).unwrap();
            prop_assert_eq!(&first, &to_bytes(&reread2));
        }

        #[test]
        fn roundtrip_arbitrary_graphs(
            edges in proptest::collection::vec((0u32..40, 0u32..40, 0.0f64..=1.0), 0..120),
            extra_nodes in 0usize..10
        ) {
            let mut builder = crate::builder::GraphBuilder::new(0);
            for (u, v, p) in edges {
                let _ = builder.add_edge(u, v, p);
            }
            builder.ensure_nodes(extra_nodes);
            let g = builder.build();
            let mut buf = Vec::new();
            write_text(&g, &mut buf).unwrap();
            let g2 = read_text(buf.as_slice(), DedupPolicy::Reject).unwrap();
            prop_assert_eq!(g.num_nodes(), g2.num_nodes());
            prop_assert_eq!(g.num_edges(), g2.num_edges());
            for (a, b) in g.edges().iter().zip(g2.edges()) {
                prop_assert_eq!((a.u, a.v), (b.u, b.v));
                // f64 Display round-trips exactly in Rust.
                prop_assert_eq!(a.p.to_bits(), b.p.to_bits());
            }
        }
    }
}
