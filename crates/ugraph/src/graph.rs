//! The [`UncertainGraph`] structure.

use crate::error::GraphError;
use std::collections::HashMap;

/// Node identifier: a dense index in `0..num_nodes`.
pub type NodeId = u32;

/// Edge identifier: a dense index in `0..num_edges`.
pub type EdgeId = u32;

/// An undirected uncertain edge `(u, v)` with existence probability `p`.
///
/// Invariant: `u < v` (endpoints are normalized at insertion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// Existence probability in `[0, 1]`.
    pub p: f64,
}

impl Edge {
    /// The endpoint other than `w`.
    ///
    /// # Panics
    /// Panics if `w` is not an endpoint of this edge.
    pub fn other(&self, w: NodeId) -> NodeId {
        if w == self.u {
            self.v
        } else if w == self.v {
            self.u
        } else {
            panic!(
                "node {w} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }
}

/// An undirected uncertain graph `G = (V, E, p)` without self-loops or
/// multi-edges (paper §III-A).
///
/// Nodes are dense `u32` indices. Edges live in a flat array (their index is
/// the [`EdgeId`]); adjacency lists store `(neighbor, edge_id)` pairs; a hash
/// map over normalized endpoint pairs supports O(1) membership queries, which
/// the candidate-edge selection loop of GenObf (paper Algorithm 3, lines
/// 13–15) performs heavily.
#[derive(Debug, Clone, Default)]
pub struct UncertainGraph {
    edges: Vec<Edge>,
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    index: HashMap<(NodeId, NodeId), EdgeId>,
}

impl UncertainGraph {
    /// Creates a graph with `n` isolated nodes.
    ///
    /// # Panics
    /// Panics if `n > u32::MAX`: node ids are dense `u32` indices, and a
    /// count beyond that would silently wrap every downstream
    /// `num_nodes() as u32` cast (the anonymity sweep iterates
    /// `0..n as u32`).
    pub fn with_nodes(n: usize) -> Self {
        assert!(
            n <= u32::MAX as usize,
            "node count {n} exceeds the u32 id space"
        );
        Self {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            index: HashMap::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (including any with probability 0).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge array.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with index `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e as usize]
    }

    /// Existence probability of edge `e`.
    pub fn prob(&self, e: EdgeId) -> f64 {
        self.edges[e as usize].p
    }

    /// Overwrites the probability of edge `e`.
    ///
    /// # Errors
    /// Fails if `p` is outside `[0, 1]` or `e` is out of range.
    pub fn set_prob(&mut self, e: EdgeId, p: f64) -> Result<(), GraphError> {
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            return Err(GraphError::InvalidProbability(p));
        }
        let idx = e as usize;
        if idx >= self.edges.len() {
            return Err(GraphError::EdgeOutOfRange {
                edge: idx,
                num_edges: self.edges.len(),
            });
        }
        self.edges[idx].p = p;
        Ok(())
    }

    /// Looks up the edge between `u` and `v`.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.index.get(&normalize(u, v)).copied()
    }

    /// True when `(u, v)` is an edge of the graph.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Inserts the edge `(u, v)` with probability `p` and returns its id.
    ///
    /// # Errors
    /// Fails on out-of-range endpoints, self-loops, duplicate edges, or an
    /// invalid probability.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, p: f64) -> Result<EdgeId, GraphError> {
        let n = self.adj.len() as u32;
        for w in [u, v] {
            if w >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: w,
                    num_nodes: n,
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            return Err(GraphError::InvalidProbability(p));
        }
        let key = normalize(u, v);
        if self.index.contains_key(&key) {
            return Err(GraphError::DuplicateEdge(key.0, key.1));
        }
        // Edge ids are dense u32 indices; past this point `len as EdgeId`
        // would wrap and corrupt the adjacency/index invariants.
        if self.edges.len() >= u32::MAX as usize {
            return Err(GraphError::CapacityExceeded {
                what: "edges",
                limit: u32::MAX as u64,
            });
        }
        let id = self.edges.len() as EdgeId;
        self.edges.push(Edge {
            u: key.0,
            v: key.1,
            p,
        });
        self.adj[u as usize].push((v, id));
        self.adj[v as usize].push((u, id));
        self.index.insert(key, id);
        Ok(id)
    }

    /// Neighbors of `v` as `(neighbor, edge_id)` pairs (includes edges whose
    /// current probability is 0).
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[v as usize]
    }

    /// Structural degree of `v`: number of incident edges regardless of
    /// probability.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Expected degree of `v`: `Σ_{e ∋ v} p(e)`.
    pub fn expected_degree(&self, v: NodeId) -> f64 {
        self.adj[v as usize]
            .iter()
            .map(|&(_, e)| self.edges[e as usize].p)
            .sum()
    }

    /// Expected degrees of all nodes.
    pub fn expected_degrees(&self) -> Vec<f64> {
        (0..self.num_nodes() as u32)
            .map(|v| self.expected_degree(v))
            .collect()
    }

    /// Incident edge probabilities of `v`, in adjacency order — the
    /// Bernoulli parameters of `v`'s degree distribution.
    pub fn incident_probs(&self, v: NodeId) -> Vec<f64> {
        self.adj[v as usize]
            .iter()
            .map(|&(_, e)| self.edges[e as usize].p)
            .collect()
    }

    /// Total probability mass `Σ_e p(e)` (= expected number of edges).
    pub fn total_prob_mass(&self) -> f64 {
        self.edges.iter().map(|e| e.p).sum()
    }

    /// Expected average degree `2·Σ p(e) / |V|` — the one metric with a
    /// closed form (paper §VI-A "Computation").
    pub fn expected_average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.total_prob_mass() / self.num_nodes() as f64
        }
    }

    /// Returns a copy with all probability-0 edges dropped (useful before
    /// publishing an anonymized graph).
    pub fn pruned(&self, min_prob: f64) -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(self.num_nodes());
        for e in &self.edges {
            if e.p >= min_prob && e.p > 0.0 {
                g.add_edge(e.u, e.v, e.p)
                    .expect("pruning preserves validity");
            }
        }
        g
    }

    /// Edge endpoints in structure-of-arrays form: `(us, vs)` with
    /// `us[e] < vs[e]`, indexed by [`EdgeId`]. The flat Monte-Carlo kernels
    /// scan these instead of the `Edge` array so the probability field does
    /// not pollute cache lines during word-level bitset walks.
    pub fn endpoint_soa(&self) -> (Vec<u32>, Vec<u32>) {
        let mut us = Vec::with_capacity(self.edges.len());
        let mut vs = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            us.push(e.u);
            vs.push(e.v);
        }
        (us, vs)
    }

    /// Mean edge probability (0 for an edgeless graph) — the "Edge Prob"
    /// column of paper Table I.
    pub fn mean_edge_prob(&self) -> f64 {
        if self.edges.is_empty() {
            0.0
        } else {
            self.total_prob_mass() / self.edges.len() as f64
        }
    }
}

#[inline]
fn normalize(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn triangle() -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(1, 2, 0.25).unwrap();
        g.add_edge(2, 0, 1.0).unwrap();
        g
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 id space")]
    fn node_count_beyond_u32_panics() {
        // The guard fires before the adjacency vector is allocated, so
        // this is cheap despite the huge request.
        let _ = UncertainGraph::with_nodes(u32::MAX as usize + 1);
    }

    #[test]
    fn construction_basics() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert!((g.expected_degree(0) - 1.5).abs() < 1e-12);
        assert!((g.total_prob_mass() - 1.75).abs() < 1e-12);
        assert!((g.expected_average_degree() - 3.5 / 3.0).abs() < 1e-12);
        assert!((g.mean_edge_prob() - 1.75 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn endpoints_normalized() {
        let mut g = UncertainGraph::with_nodes(4);
        let e = g.add_edge(3, 1, 0.7).unwrap();
        let edge = g.edge(e);
        assert_eq!((edge.u, edge.v), (1, 3));
        assert_eq!(g.find_edge(1, 3), Some(e));
        assert_eq!(g.find_edge(3, 1), Some(e));
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = UncertainGraph::with_nodes(2);
        assert_eq!(g.add_edge(1, 1, 0.5), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_duplicate() {
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, 0.5).unwrap();
        assert_eq!(g.add_edge(1, 0, 0.9), Err(GraphError::DuplicateEdge(0, 1)));
    }

    #[test]
    fn rejects_bad_probability() {
        let mut g = UncertainGraph::with_nodes(3);
        assert!(matches!(
            g.add_edge(0, 1, -0.1),
            Err(GraphError::InvalidProbability(_))
        ));
        assert!(matches!(
            g.add_edge(0, 1, f64::NAN),
            Err(GraphError::InvalidProbability(_))
        ));
        let e = g.add_edge(0, 1, 0.5).unwrap();
        assert!(matches!(
            g.set_prob(e, 2.0),
            Err(GraphError::InvalidProbability(_))
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = UncertainGraph::with_nodes(2);
        assert!(matches!(
            g.add_edge(0, 5, 0.5),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
        assert!(matches!(
            g.set_prob(0, 0.5),
            Err(GraphError::EdgeOutOfRange { .. })
        ));
    }

    #[test]
    fn set_prob_updates_expectations() {
        let mut g = triangle();
        let e = g.find_edge(0, 1).unwrap();
        g.set_prob(e, 1.0).unwrap();
        assert!((g.expected_degree(0) - 2.0).abs() < 1e-12);
        assert!((g.prob(e) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn neighbors_and_incident_probs() {
        let g = triangle();
        let nbrs: Vec<NodeId> = g.neighbors(1).iter().map(|&(n, _)| n).collect();
        assert_eq!(nbrs, vec![0, 2]);
        let probs = g.incident_probs(1);
        assert_eq!(probs, vec![0.5, 0.25]);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge { u: 2, v: 5, p: 0.5 };
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
    }

    #[test]
    #[should_panic]
    fn edge_other_panics_for_nonmember() {
        let e = Edge { u: 2, v: 5, p: 0.5 };
        let _ = e.other(3);
    }

    #[test]
    fn pruned_drops_low_probability_edges() {
        let mut g = triangle();
        let e = g.find_edge(0, 1).unwrap();
        g.set_prob(e, 0.0).unwrap();
        let pruned = g.pruned(0.1);
        assert_eq!(pruned.num_edges(), 2);
        assert!(!pruned.has_edge(0, 1));
        assert!(pruned.has_edge(1, 2));
        assert_eq!(pruned.num_nodes(), 3);
    }

    #[test]
    fn empty_graph_degenerate_metrics() {
        let g = UncertainGraph::with_nodes(0);
        assert_eq!(g.expected_average_degree(), 0.0);
        assert_eq!(g.mean_edge_prob(), 0.0);
        assert!(g.expected_degrees().is_empty());
    }

    #[test]
    fn endpoint_soa_matches_edges() {
        let g = triangle();
        let (us, vs) = g.endpoint_soa();
        assert_eq!(us.len(), g.num_edges());
        assert_eq!(vs.len(), g.num_edges());
        for e in 0..g.num_edges() {
            let edge = g.edge(e as EdgeId);
            assert_eq!((us[e], vs[e]), (edge.u, edge.v));
            assert!(us[e] < vs[e]);
        }
    }

    #[test]
    fn expected_degrees_vector() {
        let g = triangle();
        let d = g.expected_degrees();
        assert_eq!(d.len(), 3);
        assert!((d[0] - 1.5).abs() < 1e-12);
        assert!((d[1] - 0.75).abs() < 1e-12);
        assert!((d[2] - 1.25).abs() < 1e-12);
        // Handshake: sum of expected degrees = 2 × mass.
        assert!((d.iter().sum::<f64>() - 2.0 * g.total_prob_mass()).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn handshake_lemma_expected(
            edges in proptest::collection::vec((0u32..20, 0u32..20, 0.0f64..=1.0), 0..60)
        ) {
            let mut g = UncertainGraph::with_nodes(20);
            for (u, v, p) in edges {
                let _ = g.add_edge(u, v, p); // dups/self-loops rejected
            }
            let sum: f64 = g.expected_degrees().iter().sum();
            prop_assert!((sum - 2.0 * g.total_prob_mass()).abs() < 1e-9);
        }

        #[test]
        fn find_edge_consistent_with_adjacency(
            edges in proptest::collection::vec((0u32..15, 0u32..15, 0.0f64..=1.0), 0..40)
        ) {
            let mut g = UncertainGraph::with_nodes(15);
            for (u, v, p) in edges {
                let _ = g.add_edge(u, v, p);
            }
            for v in 0..15u32 {
                for &(nbr, e) in g.neighbors(v) {
                    prop_assert_eq!(g.find_edge(v, nbr), Some(e));
                    let edge = g.edge(e);
                    prop_assert!(edge.u == v || edge.v == v);
                }
            }
        }
    }
}
