//! Random graph topology generators.
//!
//! The paper evaluates on three real uncertain graphs (DBLP, BRIGHTKITE,
//! PPI) that are not redistributable; the dataset crate substitutes
//! synthetic graphs with matched degree/probability marginals (see
//! DESIGN.md §4). The topology half of those substitutes comes from the
//! generators here. All generators assign a placeholder probability of 1.0;
//! dataset code overwrites probabilities with its per-dataset models.

use crate::graph::{NodeId, UncertainGraph};
use rand::Rng;

/// Erdős–Rényi G(n, m): exactly `m` distinct edges drawn uniformly.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n·(n−1)/2`.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> UncertainGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "m={m} exceeds max edges {max_edges} for n={n}"
    );
    let mut g = UncertainGraph::with_nodes(n);
    // Rejection sampling; fine for m well below max_edges, and still
    // terminating (slowly) close to it thanks to the density guard below.
    if m > max_edges / 2 {
        // Dense: sample edges to EXCLUDE instead, then add the complement.
        let exclude = max_edges - m;
        let mut excluded = std::collections::HashSet::new();
        while excluded.len() < exclude {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                let key = if u < v { (u, v) } else { (v, u) };
                excluded.insert(key);
            }
        }
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if !excluded.contains(&(u, v)) {
                    g.add_edge(u, v, 1.0).expect("valid by construction");
                }
            }
        }
    } else {
        while g.num_edges() < m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v, 1.0).expect("valid by construction");
            }
        }
    }
    g
}

/// Erdős–Rényi G(n, p): each pair independently an edge with probability
/// `p_edge`, generated in O(n + m) expected time with geometric skipping.
pub fn gnp<R: Rng + ?Sized>(n: usize, p_edge: f64, rng: &mut R) -> UncertainGraph {
    assert!((0.0..=1.0).contains(&p_edge), "invalid edge probability");
    let mut g = UncertainGraph::with_nodes(n);
    if p_edge <= 0.0 || n < 2 {
        return g;
    }
    if p_edge >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                g.add_edge(u, v, 1.0).unwrap();
            }
        }
        return g;
    }
    // Batagelj–Brandes linear-time skipping over the lower triangle.
    let ln_q = (1.0 - p_edge).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    while (v as usize) < n {
        let r: f64 = rng.gen::<f64>();
        w += 1 + ((1.0 - r).ln() / ln_q).floor() as i64;
        while w >= v && (v as usize) < n {
            w -= v;
            v += 1;
        }
        if (v as usize) < n {
            g.add_edge(w as u32, v as u32, 1.0).expect("w < v");
        }
    }
    g
}

/// Barabási–Albert preferential attachment: starts from a clique of
/// `m0 = m_attach` nodes, each new node attaches to `m_attach` existing
/// nodes chosen with probability proportional to degree. Produces
/// heavy-tailed degree distributions.
///
/// # Panics
/// Panics if `n < m_attach + 1` or `m_attach == 0`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m_attach: usize, rng: &mut R) -> UncertainGraph {
    assert!(m_attach >= 1, "attachment count must be positive");
    assert!(n > m_attach, "need n > m_attach");
    let mut g = UncertainGraph::with_nodes(n);
    // Repeated-endpoints list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);
    // Seed clique over the first m_attach + 1 nodes.
    for u in 0..=(m_attach as u32) {
        for v in (u + 1)..=(m_attach as u32) {
            g.add_edge(u, v, 1.0).unwrap();
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for new in (m_attach as u32 + 1)..(n as u32) {
        let mut targets = std::collections::BTreeSet::new();
        while targets.len() < m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != new {
                targets.insert(t);
            }
        }
        for &t in &targets {
            g.add_edge(new, t, 1.0).unwrap();
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    g
}

/// Chung–Lu style fixed-size random graph with a target expected-degree
/// ("weight") sequence: `m = Σw/2` edges are drawn with endpoints sampled
/// proportional to weight, rejecting self-loops and duplicates. The
/// resulting degree distribution follows the weight distribution's shape
/// (exactly enough for our matched-marginal substitutes; see DESIGN.md).
pub fn chung_lu<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> UncertainGraph {
    assert!(!weights.is_empty(), "need at least one node");
    assert!(
        weights.iter().all(|&w| w.is_finite() && w >= 0.0),
        "weights must be non-negative"
    );
    let n = weights.len();
    let total: f64 = weights.iter().sum();
    let m = (total / 2.0).round() as usize;
    let mut g = UncertainGraph::with_nodes(n);
    if m == 0 || n < 2 {
        return g;
    }
    // Cumulative table for O(log n) weighted sampling.
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &w in weights {
        acc += w;
        cum.push(acc);
    }
    let sample_node = |rng: &mut R| -> NodeId {
        let x = rng.gen::<f64>() * acc;
        match cum.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
            Ok(i) | Err(i) => (i.min(n - 1)) as NodeId,
        }
    };
    let max_edges = n * (n - 1) / 2;
    let target = m.min(max_edges);
    let mut attempts = 0usize;
    let attempt_budget = 50 * target + 1000;
    while g.num_edges() < target && attempts < attempt_budget {
        attempts += 1;
        let u = sample_node(rng);
        let v = sample_node(rng);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v, 1.0).expect("valid");
        }
    }
    g
}

/// Power-law weight sequence for [`chung_lu`]: `w_i ∝ (i + i0)^(−1/(γ−1))`
/// rescaled so the mean weight equals `mean_degree`, and clamped to
/// `max_weight`. Standard construction for scale-free expected degrees with
/// exponent γ.
///
/// # Panics
/// Panics if `gamma <= 1`, `mean_degree <= 0`, or `n == 0`.
pub fn power_law_weights(n: usize, gamma: f64, mean_degree: f64, max_weight: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one node");
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    assert!(mean_degree > 0.0, "mean degree must be positive");
    let alpha = 1.0 / (gamma - 1.0);
    // i0 shifts the head so the maximum weight is bounded.
    let i0 = n as f64 * (mean_degree / max_weight).powf(1.0 / alpha);
    let mut w: Vec<f64> = (0..n)
        .map(|i| (n as f64 / (i as f64 + i0)).powf(alpha))
        .collect();
    let mean: f64 = w.iter().sum::<f64>() / n as f64;
    let scale = mean_degree / mean;
    for x in &mut w {
        *x = (*x * scale).min(max_weight);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnm(30, 50, &mut rng);
        assert_eq!(g.num_nodes(), 30);
        assert_eq!(g.num_edges(), 50);
    }

    #[test]
    fn gnm_dense_regime() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 12;
        let max = n * (n - 1) / 2;
        let g = gnm(n, max - 3, &mut rng);
        assert_eq!(g.num_edges(), max - 3);
    }

    #[test]
    fn gnm_complete_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gnm(6, 15, &mut rng);
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    #[should_panic]
    fn gnm_rejects_impossible() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = gnm(4, 100, &mut rng);
    }

    #[test]
    fn gnp_edge_fraction() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 150;
        let p = 0.1;
        let g = gnp(n, p, &mut rng);
        let expect = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expect).abs() < 4.0 * expect.sqrt() + 10.0,
            "got {got}, expect {expect}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(gnp(20, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(gnp(6, 1.0, &mut rng).num_edges(), 15);
        assert_eq!(gnp(1, 0.5, &mut rng).num_edges(), 0);
    }

    #[test]
    fn ba_structure() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200;
        let m = 3;
        let g = barabasi_albert(n, m, &mut rng);
        assert_eq!(g.num_nodes(), n);
        // clique edges + m per new node
        let expect = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(g.num_edges(), expect);
        // Heavy tail: max degree far above the mean.
        let degrees: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
        let max = *degrees.iter().max().unwrap();
        let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
        assert!(max as f64 > 3.0 * mean, "max={max}, mean={mean}");
    }

    #[test]
    fn chung_lu_respects_weight_shape() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut weights = vec![2.0; 200];
        // Ten hubs with weight 40.
        for w in weights.iter_mut().take(10) {
            *w = 40.0;
        }
        let g = chung_lu(&weights, &mut rng);
        assert!(g.num_edges() > 0);
        let hub_mean: f64 = (0..10u32).map(|v| g.degree(v) as f64).sum::<f64>() / 10.0;
        let tail_mean: f64 = (10..200u32).map(|v| g.degree(v) as f64).sum::<f64>() / 190.0;
        assert!(
            hub_mean > 4.0 * tail_mean,
            "hub_mean={hub_mean}, tail_mean={tail_mean}"
        );
    }

    #[test]
    fn chung_lu_zero_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = chung_lu(&[0.0, 0.0, 0.0], &mut rng);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn power_law_weights_properties() {
        let w = power_law_weights(1000, 2.5, 8.0, 300.0);
        assert_eq!(w.len(), 1000);
        let mean: f64 = w.iter().sum::<f64>() / 1000.0;
        assert!((mean - 8.0).abs() < 1.0, "mean={mean}");
        assert!(w.iter().all(|&x| x <= 300.0 + 1e-9));
        // Monotone decreasing (head is heaviest).
        for win in w.windows(2) {
            assert!(win[0] >= win[1] - 1e-12);
        }
        // Heavy tail: max ≫ mean.
        assert!(w[0] > 4.0 * mean);
    }

    #[test]
    fn generators_are_reproducible() {
        let g1 = barabasi_albert(50, 2, &mut StdRng::seed_from_u64(11));
        let g2 = barabasi_albert(50, 2, &mut StdRng::seed_from_u64(11));
        assert_eq!(g1.num_edges(), g2.num_edges());
        for (a, b) in g1.edges().iter().zip(g2.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
        }
    }
}
