//! Uncertain graph data structures and possible-world machinery.
//!
//! An *uncertain graph* `G = (V, E, p)` labels every edge with an independent
//! existence probability and is interpreted under possible-world semantics
//! (paper §III-A): `G` denotes a distribution over the 2^|E| deterministic
//! subgraphs ("worlds") obtained by keeping each edge `e` independently with
//! probability `p(e)`.
//!
//! This crate provides:
//!
//! * [`UncertainGraph`] — the core structure: edge array + adjacency +
//!   (u, v) → edge index map, with probability mutation (the anonymization
//!   algorithms perturb probabilities in place) and edge insertion (they may
//!   also inject previously-absent edges).
//! * [`World`] / [`WorldView`] — a sampled possible world as an edge bitset,
//!   and a zero-copy adjacency view of the graph restricted to that world.
//! * [`sample`] — possible-world Monte-Carlo sampling.
//! * [`WorldMatrix`] / [`SamplePlan`] — arena ensemble storage (all worlds
//!   in one contiguous word buffer) and the precomputed sampling plan whose
//!   draw order is bit-identical to [`WorldSampler::sample`](sample::WorldSampler::sample).
//! * [`UnionFind`] — connected components / connected-pair counting, the
//!   kernel of the reliability estimators (paper Algorithm 2 & Lemma 2).
//! * [`traversal`] — BFS distances and components over world views.
//! * [`generators`] — Erdős–Rényi, Barabási–Albert and Chung-Lu graph
//!   topology generators used by the synthetic dataset substitutes.
//! * [`io`] — plain-text and compact binary edge-list interchange formats
//!   (binary: magic + varints + exact f64 bits, auto-detected on read).
//! * [`compressed`] — delta+RLE compressed world storage for out-of-core
//!   ensemble analysis (DESIGN.md §12).
//! * [`weighted`] — the weighted+probabilistic data model of the paper's
//!   road-network motivation (weights ride along; probabilities anonymize).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod bitset;
pub mod builder;
pub mod compressed;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod sample;
pub mod traversal;
pub mod union_find;
pub(crate) mod varint;
pub mod weighted;
pub mod world;
pub mod world_matrix;

pub use analysis::GraphSummary;
pub use bitset::BitSet;
pub use builder::GraphBuilder;
pub use compressed::CompressedWorlds;
pub use error::GraphError;
pub use graph::{Edge, EdgeId, NodeId, UncertainGraph};
pub use sample::WorldSampler;
pub use union_find::UnionFind;
pub use weighted::WeightedUncertainGraph;
pub use world::{World, WorldRef, WorldView};
pub use world_matrix::{ResampleDelta, SamplePlan, WorldMatrix};
