//! BFS traversal over world views: distances, components, reachability.
//!
//! The node-separation metrics of the paper's evaluation (average distance,
//! graph diameter, Fig. 10) are expected values over possible worlds of
//! per-world shortest-path statistics; those per-world statistics come from
//! the BFS routines here (exact) or from the ANF sketch in the reliability
//! crate (approximate, for large worlds).

use crate::graph::NodeId;
use crate::world::WorldView;
use std::collections::VecDeque;

/// Distance value used for unreachable pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances in a world; unreachable nodes get
/// [`UNREACHABLE`].
pub fn bfs_distances(view: &WorldView<'_>, source: NodeId) -> Vec<u32> {
    let n = view.num_nodes();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(x) = queue.pop_front() {
        let dx = dist[x as usize];
        for y in view.neighbors(x) {
            if dist[y as usize] == UNREACHABLE {
                dist[y as usize] = dx + 1;
                queue.push_back(y);
            }
        }
    }
    dist
}

/// Shortest-path distance between two nodes in a world, or `None` when
/// disconnected. Early-exits once `target` is settled.
pub fn bfs_distance(view: &WorldView<'_>, source: NodeId, target: NodeId) -> Option<u32> {
    if source == target {
        return Some(0);
    }
    let n = view.num_nodes();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(x) = queue.pop_front() {
        let dx = dist[x as usize];
        for y in view.neighbors(x) {
            if dist[y as usize] == UNREACHABLE {
                if y == target {
                    return Some(dx + 1);
                }
                dist[y as usize] = dx + 1;
                queue.push_back(y);
            }
        }
    }
    None
}

/// Per-world statistics from a set of BFS sources: mean finite distance and
/// eccentricity-based diameter estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceStats {
    /// Mean distance over reachable (source, target ≠ source) pairs.
    pub mean_distance: f64,
    /// Number of reachable pairs observed.
    pub reachable_pairs: u64,
    /// Largest finite distance observed (lower bound on the diameter;
    /// exact when all nodes are used as sources).
    pub max_distance: u32,
}

/// Runs BFS from each source and aggregates distance statistics.
pub fn distance_stats(view: &WorldView<'_>, sources: &[NodeId]) -> DistanceStats {
    let mut sum = 0f64;
    let mut count = 0u64;
    let mut max = 0u32;
    for &s in sources {
        let dist = bfs_distances(view, s);
        for (t, &d) in dist.iter().enumerate() {
            if d != UNREACHABLE && t as u32 != s {
                sum += d as f64;
                count += 1;
                if d > max {
                    max = d;
                }
            }
        }
    }
    DistanceStats {
        mean_distance: if count == 0 { 0.0 } else { sum / count as f64 },
        reachable_pairs: count,
        max_distance: max,
    }
}

/// Counts triangles and connected (wedge) triples in a world; returns
/// `(triangles, wedges)`. The global clustering coefficient is
/// `3·triangles / wedges` (0 when there are no wedges).
///
/// Uses the standard neighbor-intersection method over ordered edges:
/// O(Σ_v deg(v)²) worst case, fine at experiment scales.
pub fn triangles_and_wedges(view: &WorldView<'_>) -> (u64, u64) {
    let n = view.num_nodes();
    let mut neighbor_sets: Vec<Vec<NodeId>> = Vec::with_capacity(n);
    for v in 0..n as u32 {
        let mut nbrs: Vec<NodeId> = view.neighbors(v).collect();
        nbrs.sort_unstable();
        neighbor_sets.push(nbrs);
    }
    let mut triangles = 0u64;
    let mut wedges = 0u64;
    for nbrs in &neighbor_sets {
        let d = nbrs.len() as u64;
        wedges += d * d.saturating_sub(1) / 2;
    }
    // Count each triangle once via ordered triples u < v < w.
    for u in 0..n as u32 {
        let nu = &neighbor_sets[u as usize];
        for &v in nu.iter().filter(|&&v| v > u) {
            let nv = &neighbor_sets[v as usize];
            // Intersect nu ∩ nv restricted to w > v.
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                let (a, b) = (nu[i], nv[j]);
                match a.cmp(&b) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if a > v {
                            triangles += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    (triangles, wedges)
}

/// Global clustering coefficient of a world: `3·triangles / wedges`.
pub fn global_clustering_coefficient(view: &WorldView<'_>) -> f64 {
    let (t, w) = triangles_and_wedges(view);
    if w == 0 {
        0.0
    } else {
        3.0 * t as f64 / w as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::UncertainGraph;
    use crate::world::World;

    /// All-edges-present world over the given deterministic topology.
    fn full_world(g: &UncertainGraph) -> World {
        let mut w = World::empty(g.num_edges());
        for e in 0..g.num_edges() as u32 {
            w.set(e, true);
        }
        w
    }

    fn path4() -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        g
    }

    #[test]
    fn path_distances() {
        let g = path4();
        let w = full_world(&g);
        let view = WorldView::new(&g, &w);
        assert_eq!(bfs_distances(&view, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distance(&view, 0, 3), Some(3));
        assert_eq!(bfs_distance(&view, 2, 2), Some(0));
    }

    #[test]
    fn disconnected_distance() {
        let g = path4();
        let mut w = full_world(&g);
        w.set(1, false); // cut 1-2
        let view = WorldView::new(&g, &w);
        assert_eq!(bfs_distance(&view, 0, 3), None);
        let d = bfs_distances(&view, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn distance_stats_path() {
        let g = path4();
        let w = full_world(&g);
        let view = WorldView::new(&g, &w);
        let stats = distance_stats(&view, &[0, 1, 2, 3]);
        // all ordered pairs: distances 1,2,3 (×2 each direction) + 1,2 ...
        // sum over ordered pairs = 2*(1+2+3 + 1+2 + 1) = 20, pairs = 12
        assert_eq!(stats.reachable_pairs, 12);
        assert!((stats.mean_distance - 20.0 / 12.0).abs() < 1e-12);
        assert_eq!(stats.max_distance, 3);
    }

    #[test]
    fn distance_stats_empty_world() {
        let g = path4();
        let w = World::empty(g.num_edges());
        let view = WorldView::new(&g, &w);
        let stats = distance_stats(&view, &[0, 1]);
        assert_eq!(stats.reachable_pairs, 0);
        assert_eq!(stats.mean_distance, 0.0);
    }

    #[test]
    fn triangle_counting() {
        // K4 has 4 triangles, each vertex degree 3 → wedges 4*3 = 12,
        // clustering = 3*4/12 = 1.
        let mut g = UncertainGraph::with_nodes(4);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                g.add_edge(u, v, 1.0).unwrap();
            }
        }
        let w = full_world(&g);
        let view = WorldView::new(&g, &w);
        let (t, wd) = triangles_and_wedges(&view);
        assert_eq!(t, 4);
        assert_eq!(wd, 12);
        assert!((global_clustering_coefficient(&view) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_no_triangles() {
        let g = path4();
        let w = full_world(&g);
        let view = WorldView::new(&g, &w);
        let (t, wd) = triangles_and_wedges(&view);
        assert_eq!(t, 0);
        assert_eq!(wd, 2); // two internal wedges at nodes 1 and 2
        assert_eq!(global_clustering_coefficient(&view), 0.0);
    }

    #[test]
    fn single_triangle_with_pendant() {
        // Triangle 0-1-2 plus pendant 2-3.
        let mut g = UncertainGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        let w = full_world(&g);
        let view = WorldView::new(&g, &w);
        let (t, wd) = triangles_and_wedges(&view);
        assert_eq!(t, 1);
        // degrees: 2,2,3,1 → wedges 1+1+3+0 = 5
        assert_eq!(wd, 5);
        assert!((global_clustering_coefficient(&view) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn world_membership_affects_triangles() {
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(0, 2, 1.0).unwrap();
        let mut w = full_world(&g);
        w.set(2, false); // remove 0-2
        let view = WorldView::new(&g, &w);
        let (t, _) = triangles_and_wedges(&view);
        assert_eq!(t, 0);
    }
}
