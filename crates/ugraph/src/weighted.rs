//! Weighted uncertain graphs: edges carry a weight *and* an existence
//! probability.
//!
//! The paper's related-work discussion (§II) points out why probabilities
//! cannot be folded into weights: "each link in the road network can be
//! weighted indicating the distance or travel time between them, and a
//! probability can be assigned to model the likelihood of a traffic jam".
//! This module realizes that data model — a thin layer over
//! [`UncertainGraph`] that attaches per-edge weights and provides the
//! weighted analogues of the traversal metrics (per-world Dijkstra,
//! expected weighted distances). Anonymization perturbs only the
//! probabilities; weights ride along unchanged into the release.

use crate::graph::{EdgeId, NodeId, UncertainGraph};
use crate::world::WorldView;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An uncertain graph whose edges additionally carry non-negative weights
/// (lengths, travel times, costs).
#[derive(Debug, Clone)]
pub struct WeightedUncertainGraph {
    graph: UncertainGraph,
    weights: Vec<f64>,
}

impl WeightedUncertainGraph {
    /// Attaches weights to an existing uncertain graph.
    ///
    /// # Panics
    /// Panics if `weights.len() != graph.num_edges()` or any weight is
    /// negative/non-finite.
    pub fn new(graph: UncertainGraph, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), graph.num_edges(), "need one weight per edge");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        Self { graph, weights }
    }

    /// The underlying uncertain graph.
    pub fn graph(&self) -> &UncertainGraph {
        &self.graph
    }

    /// Weight of edge `e`.
    pub fn weight(&self, e: EdgeId) -> f64 {
        self.weights[e as usize]
    }

    /// All weights, edge-indexed.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Replaces the underlying uncertain graph (e.g. with an anonymized
    /// version) while keeping weights for the shared edge prefix; edges
    /// added by the anonymizer get `default_weight`.
    ///
    /// # Panics
    /// Panics if the new graph has fewer edges than weights, or endpoint
    /// mismatch in the shared prefix (edge identity must be preserved, as
    /// the Chameleon pipeline guarantees).
    pub fn with_published(&self, published: UncertainGraph, default_weight: f64) -> Self {
        assert!(
            published.num_edges() >= self.graph.num_edges(),
            "published graph lost edges"
        );
        for (i, e) in self.graph.edges().iter().enumerate() {
            let out = published.edge(i as EdgeId);
            assert_eq!(
                (out.u, out.v),
                (e.u, e.v),
                "edge identity broken at index {i}"
            );
        }
        let mut weights = self.weights.clone();
        weights.resize(published.num_edges(), default_weight);
        Self {
            graph: published,
            weights,
        }
    }
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance via reversed comparison; ties by node.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source Dijkstra over one possible world; unreachable nodes get
/// `f64::INFINITY`.
pub fn dijkstra(
    weighted: &WeightedUncertainGraph,
    view: &WorldView<'_>,
    source: NodeId,
) -> Vec<f64> {
    let n = weighted.graph().num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if d > dist[node as usize] {
            continue;
        }
        for &(nbr, e) in weighted.graph().neighbors(node) {
            if !view.world().contains(e) {
                continue;
            }
            let nd = d + weighted.weight(e);
            if nd < dist[nbr as usize] {
                dist[nbr as usize] = nd;
                heap.push(HeapEntry {
                    dist: nd,
                    node: nbr,
                });
            }
        }
    }
    dist
}

/// Expected weighted distance statistics from sampled worlds: the mean
/// over worlds of the mean finite source→target distance from the given
/// sources, and the mean fraction of reachable pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpectedWeightedDistances {
    /// Mean finite weighted distance over reachable (source, target) pairs,
    /// averaged across worlds.
    pub mean_distance: f64,
    /// Mean count of reachable pairs per world.
    pub avg_reachable_pairs: f64,
}

/// Estimates expected weighted distances over the worlds of `ensemble`
/// (any iterator of [`crate::world::World`]s paired with the weighted
/// graph's topology).
pub fn expected_weighted_distances(
    weighted: &WeightedUncertainGraph,
    worlds: &[crate::world::World],
    sources: &[NodeId],
) -> ExpectedWeightedDistances {
    let mut dist_sum = 0.0;
    let mut dist_count = 0u64;
    let mut reach_sum = 0u64;
    for world in worlds {
        let view = WorldView::new(weighted.graph(), world);
        for &s in sources {
            let dist = dijkstra(weighted, &view, s);
            for (t, &d) in dist.iter().enumerate() {
                if t as NodeId != s && d.is_finite() {
                    dist_sum += d;
                    dist_count += 1;
                    reach_sum += 1;
                }
            }
        }
    }
    ExpectedWeightedDistances {
        mean_distance: if dist_count == 0 {
            0.0
        } else {
            dist_sum / dist_count as f64
        },
        avg_reachable_pairs: if worlds.is_empty() {
            0.0
        } else {
            reach_sum as f64 / worlds.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::WorldSampler;
    use crate::world::World;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Weighted triangle: direct 0-2 edge is heavy, the two-hop route is
    /// light.
    fn weighted_triangle(p: f64) -> WeightedUncertainGraph {
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, p).unwrap(); // weight 1
        g.add_edge(1, 2, p).unwrap(); // weight 1
        g.add_edge(0, 2, p).unwrap(); // weight 5
        WeightedUncertainGraph::new(g, vec![1.0, 1.0, 5.0])
    }

    fn full_world(g: &UncertainGraph) -> World {
        let mut w = World::empty(g.num_edges());
        for e in 0..g.num_edges() as u32 {
            w.set(e, true);
        }
        w
    }

    #[test]
    fn dijkstra_prefers_light_route() {
        let wg = weighted_triangle(1.0);
        let w = full_world(wg.graph());
        let view = WorldView::new(wg.graph(), &w);
        let dist = dijkstra(&wg, &view, 0);
        assert_eq!(dist[0], 0.0);
        assert_eq!(dist[1], 1.0);
        assert_eq!(dist[2], 2.0); // via 1, not the weight-5 direct edge
    }

    #[test]
    fn dijkstra_uses_direct_edge_when_route_is_cut() {
        let wg = weighted_triangle(1.0);
        let mut w = full_world(wg.graph());
        w.set(1, false); // cut 1-2
        let view = WorldView::new(wg.graph(), &w);
        let dist = dijkstra(&wg, &view, 0);
        assert_eq!(dist[2], 5.0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let wg = weighted_triangle(1.0);
        let w = World::empty(wg.graph().num_edges());
        let view = WorldView::new(wg.graph(), &w);
        let dist = dijkstra(&wg, &view, 0);
        assert!(dist[1].is_infinite());
        assert!(dist[2].is_infinite());
    }

    #[test]
    fn expected_distances_interpolate_with_probability() {
        // With p = 0.5 the light route sometimes breaks and the heavy edge
        // takes over: E[d(0,2) | reachable] ∈ (2, 5).
        let wg = weighted_triangle(0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let worlds = WorldSampler::sample_many(wg.graph(), 2000, &mut rng);
        let stats = expected_weighted_distances(&wg, &worlds, &[0]);
        assert!(stats.mean_distance > 1.0, "{}", stats.mean_distance);
        assert!(stats.mean_distance < 4.0, "{}", stats.mean_distance);
        assert!(stats.avg_reachable_pairs > 0.0);
    }

    #[test]
    fn with_published_extends_weights() {
        let wg = weighted_triangle(0.8);
        let mut published = wg.graph().clone();
        published.set_prob(0, 0.6).unwrap();
        published.add_edge(1, 0, 0.3).unwrap_err(); // duplicate rejected
                                                    // Add a genuinely new edge pair? Graph is complete on 3 nodes, so
                                                    // rebuild with 4 nodes instead.
        let mut g4 = UncertainGraph::with_nodes(4);
        g4.add_edge(0, 1, 0.8).unwrap();
        g4.add_edge(1, 2, 0.8).unwrap();
        g4.add_edge(0, 2, 0.8).unwrap();
        let wg4 = WeightedUncertainGraph::new(g4.clone(), vec![1.0, 1.0, 5.0]);
        let mut pub4 = g4;
        pub4.add_edge(2, 3, 0.4).unwrap(); // anonymizer-injected edge
        let out = wg4.with_published(pub4, 9.0);
        assert_eq!(out.weights().len(), 4);
        assert_eq!(out.weight(3), 9.0);
        assert_eq!(out.weight(2), 5.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_weights_rejected() {
        let mut g = UncertainGraph::with_nodes(2);
        g.add_edge(0, 1, 0.5).unwrap();
        let _ = WeightedUncertainGraph::new(g, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn negative_weight_rejected() {
        let mut g = UncertainGraph::with_nodes(2);
        g.add_edge(0, 1, 0.5).unwrap();
        let _ = WeightedUncertainGraph::new(g, vec![-1.0]);
    }

    #[test]
    #[should_panic]
    fn with_published_rejects_identity_break() {
        let wg = weighted_triangle(0.5);
        // A different graph with the same edge count but different pairs.
        let mut other = UncertainGraph::with_nodes(3);
        other.add_edge(0, 1, 0.5).unwrap();
        other.add_edge(0, 2, 0.5).unwrap();
        other.add_edge(1, 2, 0.5).unwrap();
        let _ = wg.with_published(other, 1.0);
    }

    #[test]
    fn weight_accessors() {
        let wg = weighted_triangle(0.5);
        assert_eq!(wg.weight(2), 5.0);
        assert_eq!(wg.weights(), &[1.0, 1.0, 5.0]);
        assert_eq!(wg.graph().num_nodes(), 3);
    }
}
