//! LEB128 variable-length integers, shared by the binary graph format
//! ([`crate::io`]) and the delta+RLE world store ([`crate::compressed`]).
//!
//! Encoding is canonical: 7 value bits per byte, least-significant group
//! first, high bit set on every byte except the last, and no redundant
//! trailing zero groups. Canonicality is what makes "write → read →
//! re-write" byte-identical for the binary graph format.

use std::io::{self, Read, Write};

/// Appends the canonical LEB128 encoding of `v` to `buf`.
pub fn push_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Writes the canonical LEB128 encoding of `v` to `w`.
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    let mut buf = [0u8; 10]; // ceil(64 / 7) bytes max
    let mut n = 0;
    let mut v = v;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[n] = byte;
            n += 1;
            break;
        }
        buf[n] = byte | 0x80;
        n += 1;
    }
    w.write_all(&buf[..n])
}

/// Reads one LEB128 integer from `r`.
///
/// # Errors
/// `UnexpectedEof` when the stream ends mid-integer, `InvalidData` when
/// the encoding overflows 64 bits or is non-canonical (a redundant
/// all-zero continuation group).
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        let group = u64::from(b & 0x7f);
        if shift >= 64 || (shift == 63 && group > 1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        v |= group << shift;
        if b & 0x80 == 0 {
            if b == 0 && shift > 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "non-canonical varint (redundant zero group)",
                ));
            }
            return Ok(v);
        }
        shift += 7;
    }
}

/// Decodes one LEB128 integer from the front of `bytes`, returning the
/// value and the number of bytes consumed. Used by the in-memory world
/// store, where `InvalidData` indicates internal corruption.
///
/// # Panics
/// Panics if `bytes` ends mid-integer or overflows (the compressed world
/// store writes only canonical varints, so this is a logic error).
pub fn decode_u64(bytes: &[u8]) -> (u64, usize) {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        let group = u64::from(b & 0x7f);
        assert!(
            shift < 64 && !(shift == 63 && group > 1),
            "varint overflows u64"
        );
        v |= group << shift;
        if b & 0x80 == 0 {
            return (v, i + 1);
        }
        shift += 7;
    }
    panic!("truncated varint");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_encodings() {
        let mut buf = Vec::new();
        push_u64(&mut buf, 0);
        assert_eq!(buf, [0x00]);
        buf.clear();
        push_u64(&mut buf, 127);
        assert_eq!(buf, [0x7f]);
        buf.clear();
        push_u64(&mut buf, 128);
        assert_eq!(buf, [0x80, 0x01]);
        buf.clear();
        push_u64(&mut buf, 300);
        assert_eq!(buf, [0xac, 0x02]);
        buf.clear();
        push_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn writer_matches_push() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX / 3, u64::MAX] {
            let mut pushed = Vec::new();
            push_u64(&mut pushed, v);
            let mut written = Vec::new();
            write_u64(&mut written, v).unwrap();
            assert_eq!(pushed, written);
        }
    }

    #[test]
    fn rejects_truncated_and_overflowing() {
        let mut cursor = std::io::Cursor::new(vec![0x80u8]);
        assert_eq!(
            read_u64(&mut cursor).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
        // 11 continuation bytes: > 64 bits.
        let mut cursor = std::io::Cursor::new(
            vec![0x80u8; 10]
                .into_iter()
                .chain([0x02])
                .collect::<Vec<_>>(),
        );
        assert_eq!(
            read_u64(&mut cursor).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        // Redundant zero group: 0x80 0x00 decodes to 0 but is non-canonical.
        let mut cursor = std::io::Cursor::new(vec![0x80u8, 0x00]);
        assert_eq!(
            read_u64(&mut cursor).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    proptest! {
        #[test]
        fn roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            push_u64(&mut buf, v);
            let (decoded, used) = decode_u64(&buf);
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(used, buf.len());
            let mut cursor = std::io::Cursor::new(&buf);
            prop_assert_eq!(read_u64(&mut cursor).unwrap(), v);
        }
    }
}
