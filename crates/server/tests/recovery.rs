//! Crash-recovery tests for the durable-jobs journal (DESIGN.md §11):
//! SIGKILL a daemon mid-GenObf-search, restart with `--resume`, and the
//! replayed job must finish with byte-identical output while skipping the
//! σ probes its checkpoints already cover. Plus: clean shutdown compacts
//! the journal so a restart replays zero jobs, and a hand-built journal
//! with an incomplete job is executed (or cancelled) at startup.

use chameleon_core::CancelToken;
use chameleon_obs::json::Json;
use chameleon_server::journal::{Journal, JournalSync, DEFAULT_SEGMENT_BYTES};
use chameleon_server::{parse_request, request_once, Request, Server, ServerConfig, ServerHandle};
use chameleon_ugraph::io;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn unique_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "chameleond-recovery-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn graph_text(nodes: usize, seed: u64) -> String {
    let g = chameleon_datasets::dblp_like(nodes, seed);
    let mut buf = Vec::new();
    io::write_text(&g, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn obfuscate_request(nodes: usize, worlds: usize, trials: usize, seed: u64) -> String {
    format!(
        "{{\"op\":\"obfuscate\",\"graph\":{},\"k\":2,\"epsilon\":0.2,\
         \"method\":\"ME\",\"worlds\":{worlds},\"trials\":{trials},\"seed\":{seed},\
         \"threads\":1}}",
        chameleon_obs::json::string(&graph_text(nodes, seed)),
    )
}

fn parsed(line: &str) -> Json {
    Json::parse(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
}

fn field<'a>(v: &'a Json, key: &str) -> &'a Json {
    v.get(key)
        .unwrap_or_else(|| panic!("response missing {key:?}: {v:?}"))
}

fn status(addr: &str) -> Json {
    let line = request_once(addr, r#"{"op":"status"}"#).unwrap();
    field(&parsed(&line), "result").clone()
}

fn journal_stat(st: &Json, key: &str) -> u64 {
    field(field(st, "journal"), key).as_u64().unwrap()
}

/// The response `result` bytes the library produces for the same request,
/// computed in-process — the recovery contract is byte-identity with an
/// uninterrupted run, and an uninterrupted run matches the direct call.
fn reference_result(request: &str) -> String {
    let Ok(Request::Job(job)) = parse_request(request) else {
        panic!("reference request must parse as a job");
    };
    let raw = job.spec.execute(&CancelToken::new()).unwrap();
    parsed(&raw).render()
}

fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".wal"))
        })
        .collect();
    out.sort();
    out
}

/// True once any journal segment contains a `checkpoint` record — the
/// signal that the in-flight search has completed at least one σ probe.
fn journal_has_checkpoint(dir: &Path) -> bool {
    segment_files(dir).iter().any(|p| {
        std::fs::read(p).is_ok_and(|bytes| {
            bytes
                .windows(b"\"kind\":\"checkpoint\"".len())
                .any(|w| w == b"\"kind\":\"checkpoint\"")
        })
    })
}

struct Daemon {
    child: Child,
    addr: String,
    /// Held open so the daemon's stderr never blocks on a full pipe.
    stderr: BufReader<std::process::ChildStderr>,
}

fn spawn_daemon(journal_dir: &Path, resume: bool) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_chameleond"));
    cmd.args([
        "--port",
        "0",
        "--workers",
        "1",
        "--journal-dir",
        journal_dir.to_str().unwrap(),
        "--journal-sync",
        "always",
    ]);
    if resume {
        cmd.arg("--resume");
    }
    let mut child = cmd
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn chameleond");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("chameleond listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .to_string();
    Daemon {
        child,
        addr,
        stderr,
    }
}

fn wait_until(deadline: Duration, what: &str, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One attempt of the kill/resume cycle. Returns `None` when the job
/// finished before the kill landed (nothing incomplete to replay), so the
/// caller can escalate to a slower workload.
fn try_kill_resume(nodes: usize, worlds: usize, trials: usize, seed: u64) -> Option<()> {
    let dir = unique_dir("sigkill");
    let request = obfuscate_request(nodes, worlds, trials, seed);

    let mut daemon = spawn_daemon(&dir, false);
    // Fire the slow job from a background thread: the connection dies
    // with the daemon, which is the point.
    let submit_addr = daemon.addr.clone();
    let submit_req = request.clone();
    let submitter = std::thread::spawn(move || {
        let _ = request_once(&submit_addr, &submit_req);
    });
    // SIGKILL as soon as the first σ-probe checkpoint is durable. The
    // `always` sync policy means the record precedes the kill on disk.
    wait_until(Duration::from_secs(120), "a checkpoint record", || {
        journal_has_checkpoint(&dir)
    });
    daemon.child.kill().unwrap();
    let _ = daemon.child.wait();
    let _ = submitter.join();

    let restarted = spawn_daemon(&dir, true);
    let st = status(&restarted.addr);
    let replayed = journal_stat(&st, "replayed_jobs");
    if replayed == 0 {
        // The search outran the kill: result already durable. Clean up
        // and let the caller escalate.
        let _ = request_once(&restarted.addr, r#"{"op":"shutdown"}"#);
        let mut child = restarted.child;
        let _ = child.wait();
        return None;
    }
    // The replayed job finishes in the background; wait it out.
    wait_until(Duration::from_secs(180), "journal replay to finish", || {
        let st = status(&restarted.addr);
        journal_stat(&st, "open_jobs") == 0
    });
    let st = status(&restarted.addr);
    assert!(
        journal_stat(&st, "probes_skipped") >= 1,
        "the resumed search must skip checkpointed probes, got {st:?}"
    );
    // Byte-identity: the recovered daemon answers the original request
    // from the journal-backed cache with exactly the bytes an
    // uninterrupted run produces.
    let line = request_once(&restarted.addr, &request).unwrap();
    let v = parsed(&line);
    assert_eq!(field(&v, "status").as_str(), Some("ok"));
    assert_eq!(
        field(&v, "cached").as_bool(),
        Some(true),
        "the replayed result must already be cached"
    );
    assert_eq!(field(&v, "result").render(), reference_result(&request));
    let _ = request_once(&restarted.addr, r#"{"op":"shutdown"}"#);
    let mut child = restarted.child;
    let _ = child.wait();
    drop(daemon.stderr);
    let _ = std::fs::remove_dir_all(&dir);
    Some(())
}

#[test]
fn sigkill_mid_search_then_resume_is_byte_identical() {
    // Escalating workloads: if the search finishes before the SIGKILL
    // lands (fast machine), retry with a slower one instead of flaking.
    for (nodes, worlds, trials) in [(140, 300, 2), (220, 600, 3), (320, 1000, 4)] {
        if try_kill_resume(nodes, worlds, trials, 17).is_some() {
            return;
        }
    }
    panic!("every workload completed before the SIGKILL; cannot exercise recovery");
}

fn start(config: ServerConfig) -> (ServerHandle, String) {
    let handle = Server::spawn(config).unwrap();
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn shutdown(addr: &str, handle: ServerHandle) {
    let line = request_once(addr, r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(field(&parsed(&line), "status").as_str(), Some("ok"));
    handle.join().unwrap();
}

fn journaled_config(dir: &Path, resume: bool) -> ServerConfig {
    ServerConfig {
        workers: 1,
        journal_dir: Some(dir.to_str().unwrap().to_string()),
        journal_sync: JournalSync::Always,
        // Tiny segments force rotation so compaction has something to do.
        journal_segment_bytes: 4096,
        resume,
        ..ServerConfig::default()
    }
}

#[test]
fn clean_shutdown_compacts_the_journal_and_replays_zero_jobs() {
    let dir = unique_dir("clean");
    let (handle, addr) = start(journaled_config(&dir, false));
    let requests: Vec<String> = (0..3)
        .map(|i| obfuscate_request(40, 40, 1, 100 + i))
        .collect();
    for req in &requests {
        let line = request_once(&addr, req).unwrap();
        assert_eq!(field(&parsed(&line), "status").as_str(), Some("ok"));
    }
    // Each accepted record carries the full graph, so 4 KiB segments
    // rotated well before shutdown.
    assert!(
        segment_files(&dir).len() >= 2,
        "workload too small to rotate segments"
    );
    shutdown(&addr, handle);
    assert_eq!(
        segment_files(&dir).len(),
        1,
        "clean shutdown must compact fully-terminal segments"
    );

    // Restarting replays zero jobs (compaction settled everything); the
    // same requests still answer byte-identically, cached or recomputed.
    let (handle, addr) = start(journaled_config(&dir, true));
    let st = status(&addr);
    assert_eq!(journal_stat(&st, "replayed_jobs"), 0);
    assert_eq!(journal_stat(&st, "open_jobs"), 0);
    for req in &requests {
        let line = request_once(&addr, req).unwrap();
        let v = parsed(&line);
        assert_eq!(field(&v, "status").as_str(), Some("ok"));
        assert_eq!(field(&v, "result").render(), reference_result(req));
    }
    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writes an accepted-but-incomplete job straight into a journal — the
/// deterministic stand-in for "the process died mid-job".
fn plant_incomplete_job(dir: &Path, request: &str) {
    let (mut journal, summary) =
        Journal::open(dir, JournalSync::Always, DEFAULT_SEGMENT_BYTES).unwrap();
    assert!(summary.jobs.is_empty());
    let Ok(Request::Job(job)) = parse_request(request) else {
        panic!("request must parse as a job");
    };
    let seq = journal.accepted(&job.spec, Some(120_000));
    journal.started(seq);
}

#[test]
fn resume_executes_jobs_the_previous_process_never_finished() {
    let dir = unique_dir("resume");
    let request = obfuscate_request(40, 40, 1, 7);
    plant_incomplete_job(&dir, &request);

    let (handle, addr) = start(journaled_config(&dir, true));
    let st = status(&addr);
    assert_eq!(journal_stat(&st, "replayed_jobs"), 1);
    wait_until(Duration::from_secs(120), "replayed job to finish", || {
        journal_stat(&status(&addr), "open_jobs") == 0
    });
    let line = request_once(&addr, &request).unwrap();
    let v = parsed(&line);
    assert_eq!(
        field(&v, "cached").as_bool(),
        Some(true),
        "the replayed job's result must be served from cache"
    );
    assert_eq!(field(&v, "result").render(), reference_result(&request));
    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn without_resume_incomplete_jobs_are_cancelled_not_replayed() {
    let dir = unique_dir("noresume");
    let request = obfuscate_request(40, 40, 1, 9);
    plant_incomplete_job(&dir, &request);

    let (handle, addr) = start(journaled_config(&dir, false));
    let st = status(&addr);
    assert_eq!(journal_stat(&st, "replayed_jobs"), 0);
    assert_eq!(journal_stat(&st, "open_jobs"), 0);
    shutdown(&addr, handle);

    // The cancellation is durable: a later `--resume` start finds nothing.
    let (_, summary) = Journal::open(&dir, JournalSync::Always, DEFAULT_SEGMENT_BYTES).unwrap();
    assert!(summary.jobs.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
