//! Property tests for the wire-protocol parser plus a live-server abuse
//! round: no request line — malformed, truncated, junk-byte, or invalid
//! UTF-8 — may panic the parser or leave a connection without a reply.

use chameleon_obs::json::Json;
use chameleon_server::{parse_request, Server, ServerConfig};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};

/// A representative valid request line for mutation-based fuzzing.
fn valid_request() -> String {
    "{\"op\":\"obfuscate\",\"id\":\"j1\",\"graph\":\"nodes 3\\n0 1 0.5\\n1 2 0.25\\n\",\
     \"k\":2,\"epsilon\":0.05,\"method\":\"RSME\",\"worlds\":40,\"trials\":2,\"seed\":7}"
        .to_string()
}

proptest! {
    /// Arbitrary bytes (lossily decoded, as the daemon's reader would
    /// hand them over) never panic the parser — every input yields
    /// `Ok(request)` or a structured `Err((id, message))`.
    #[test]
    fn arbitrary_bytes_never_panic_the_parser(
        bytes in vec(any::<u8>(), 0..512)
    ) {
        let line = String::from_utf8_lossy(&bytes);
        match parse_request(&line) {
            Ok(_) => {}
            Err((_, msg)) => prop_assert!(!msg.is_empty()),
        }
    }

    /// Every strict prefix of a valid request is rejected (a truncated
    /// JSON object is never silently accepted), without panicking.
    #[test]
    fn truncated_requests_are_rejected_not_panicked(
        cut_seed in any::<u64>()
    ) {
        let full = valid_request();
        let cut = (cut_seed % full.len() as u64) as usize;
        // Truncation may split a UTF-8 boundary in principle; this
        // request is ASCII, so every cut is a valid char boundary.
        let truncated = &full[..cut];
        prop_assert!(
            parse_request(truncated).is_err(),
            "accepted truncated request {truncated:?}"
        );
    }

    /// Splicing a junk byte anywhere into a valid request never panics,
    /// and anything still accepted parses as a known operation.
    #[test]
    fn junk_byte_injection_never_panics(
        pos_seed in any::<u64>(),
        junk in any::<u8>()
    ) {
        let mut line = valid_request();
        let pos = (pos_seed % (line.len() as u64 + 1)) as usize;
        // Keep the mutation a valid `String` (the reader rejects
        // non-UTF-8 lines before the parser ever sees them).
        let junk_char = char::from(junk % 0x80);
        line.insert(pos, junk_char);
        let _ = parse_request(&line);
    }

    /// Unknown fields, wrong field types and wild numbers yield errors
    /// that carry the request id whenever one was parseable.
    #[test]
    fn type_confusion_keeps_the_request_id(
        k_text in vec(0u8..=255u8, 0..8)
    ) {
        // Printable ASCII minus quote/backslash: the line stays valid
        // JSON (so the id is recoverable), only the field type is wrong.
        let weird: String = k_text
            .iter()
            .map(|b| char::from(b' ' + b % 0x5e))
            .filter(|c| *c != '"' && *c != '\\')
            .collect();
        let line = format!(
            "{{\"op\":\"obfuscate\",\"id\":\"keepme\",\"graph\":\"0 1 0.5\\n\",\"k\":\"{weird}\"}}"
        );
        match parse_request(&line) {
            Err((id, _)) => prop_assert_eq!(id.as_deref(), Some("keepme")),
            Ok(_) => prop_assert!(false, "string k accepted: {}", line),
        }
    }
}

/// Reads `n` newline-terminated replies and indexes them by their echoed
/// `id` (pipelined responses complete in worker order, not request order).
fn read_replies_by_id<R: BufRead>(
    reader: &mut R,
    n: usize,
) -> std::collections::HashMap<String, Json> {
    let mut replies = std::collections::HashMap::new();
    for _ in 0..n {
        let mut line = String::new();
        let got = reader.read_line(&mut line).unwrap();
        assert!(got > 0, "connection closed with replies outstanding");
        let v = Json::parse(line.trim_end())
            .unwrap_or_else(|e| panic!("unstructured reply {line:?}: {e}"));
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("reply missing id: {line}"))
            .to_string();
        assert!(
            replies.insert(id.clone(), v).is_none(),
            "id {id:?} echoed twice"
        );
    }
    replies
}

#[test]
fn pipelined_burst_echoes_every_id_exactly_once() {
    let handle = Server::spawn(ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    // One burst: valid jobs interleaved with id-tagged junk, all written
    // before a single reply is read. Every line — good or junk — must be
    // answered with its own id, exactly once.
    let mut burst = String::new();
    let mut expect_ok = Vec::new();
    let mut expect_err = Vec::new();
    for i in 0..8 {
        burst.push_str(&format!(
            "{{\"op\":\"check\",\"id\":\"ok{i}\",\"graph\":\"0 1 0.5\\n1 2 0.5\\n\",\"k\":1}}\n"
        ));
        expect_ok.push(format!("ok{i}"));
        burst.push_str(&format!("{{\"op\":\"bogus\",\"id\":\"bad{i}\"}}\n"));
        expect_err.push(format!("bad{i}"));
    }
    conn.write_all(burst.as_bytes()).unwrap();
    conn.flush().unwrap();

    let replies = read_replies_by_id(&mut reader, expect_ok.len() + expect_err.len());
    for id in &expect_ok {
        let v = &replies[id];
        assert_eq!(
            v.get("status").and_then(Json::as_str),
            Some("ok"),
            "{id}: {v:?}"
        );
    }
    for id in &expect_err {
        let v = &replies[id];
        assert_eq!(
            v.get("status").and_then(Json::as_str),
            Some("error"),
            "{id}: {v:?}"
        );
        assert!(v.get("error").and_then(Json::as_str).is_some());
    }

    let resp = chameleon_server::request_once(&addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(resp.contains("\"status\":\"ok\""));
    handle.join().unwrap();
}

#[test]
fn half_close_after_pipelined_burst_still_delivers_every_reply() {
    let handle = Server::spawn(ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    // The pipelined-client idiom: write every request, then shut down the
    // write side (`printf 'req\n' | nc`). The FIN races the reactor's
    // poll tick against delivery of the burst; whichever way it lands,
    // the server must dispatch every complete line and keep the
    // connection in write-drain until all replies are out.
    let mut burst = String::new();
    let mut expect = Vec::new();
    for i in 0..8 {
        burst.push_str(&format!(
            "{{\"op\":\"check\",\"id\":\"hc{i}\",\"graph\":\"0 1 0.5\\n1 2 0.5\\n\",\"k\":1}}\n"
        ));
        expect.push(format!("hc{i}"));
    }
    conn.write_all(burst.as_bytes()).unwrap();
    conn.flush().unwrap();
    conn.shutdown(std::net::Shutdown::Write).unwrap();

    let replies = read_replies_by_id(&mut reader, expect.len());
    for id in &expect {
        let v = &replies[id];
        assert_eq!(
            v.get("status").and_then(Json::as_str),
            Some("ok"),
            "{id}: {v:?}"
        );
    }
    // Everything owed was delivered; the server now closes its side too.
    let mut line = String::new();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "expected EOF");

    let resp = chameleon_server::request_once(&addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(resp.contains("\"status\":\"ok\""));
    handle.join().unwrap();
}

#[test]
fn oversized_line_still_answers_earlier_lines_from_the_same_burst() {
    let handle = Server::spawn(ServerConfig {
        max_request_bytes: 512,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    // One write: two well-formed lines with immediate replies, then a
    // line far over the limit. The earlier lines were complete before
    // the overflow and must be answered ahead of the error.
    let mut burst = String::from("{\"op\":\"status\",\"id\":\"pre1\"}\n");
    burst.push_str("{\"op\":\"bogus\",\"id\":\"pre2\"}\n");
    burst.push_str(&format!(
        "{{\"op\":\"check\",\"junk\":\"{}\"",
        "x".repeat(2048)
    ));
    burst.push('\n');
    conn.write_all(burst.as_bytes()).unwrap();
    conn.flush().unwrap();

    let replies = read_replies_by_id(&mut reader, 2);
    assert_eq!(
        replies["pre1"].get("status").and_then(Json::as_str),
        Some("ok"),
        "status request preceding the oversized line must be answered"
    );
    assert_eq!(
        replies["pre2"].get("status").and_then(Json::as_str),
        Some("error"),
        "junk line preceding the oversized line must keep its reply"
    );
    // Then the terminal request_too_large error, then EOF.
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = Json::parse(line.trim_end()).unwrap();
    assert_eq!(
        v.get("code").and_then(Json::as_str),
        Some("request_too_large")
    );
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "expected EOF");

    let resp = chameleon_server::request_once(&addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(resp.contains("\"status\":\"ok\""));
    handle.join().unwrap();
}

#[test]
fn oversized_batch_is_rejected_whole_with_batch_too_large() {
    let handle = Server::spawn(ServerConfig {
        max_batch: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    let elem = "{\"op\":\"check\",\"graph\":\"0 1 0.5\\n\",\"k\":1}";
    let over = format!(
        "{{\"op\":\"batch\",\"id\":\"big\",\"requests\":[{}]}}\n",
        [elem; 6].join(",")
    );
    conn.write_all(over.as_bytes()).unwrap();
    conn.flush().unwrap();

    // Exactly one reply for the whole rejected batch, carrying the batch id
    // and the machine-readable code — no per-element replies leak through.
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = Json::parse(line.trim_end()).unwrap();
    assert_eq!(v.get("id").and_then(Json::as_str), Some("big"));
    assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(
        v.get("code").and_then(Json::as_str),
        Some("batch_too_large")
    );

    // A batch at the limit still goes through, all on the same connection.
    let ok = format!(
        "{{\"op\":\"batch\",\"id\":\"fit\",\"requests\":[{}]}}\n",
        [elem; 4].join(",")
    );
    conn.write_all(ok.as_bytes()).unwrap();
    conn.flush().unwrap();
    let replies = read_replies_by_id(&mut reader, 4);
    for i in 0..4 {
        let v = &replies[&format!("fit#{i}")];
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"), "{v:?}");
    }

    let resp = chameleon_server::request_once(&addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(resp.contains("\"status\":\"ok\""));
    handle.join().unwrap();
}

#[test]
fn batch_junk_elements_get_per_element_replies_with_derived_ids() {
    let handle = Server::spawn(ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    // Element 0: valid, no id (inherits "b#0"). Element 1: junk op.
    // Element 2: nested batch (forbidden). Element 3: valid, explicit id.
    let line = "{\"op\":\"batch\",\"id\":\"b\",\"requests\":[\
         {\"op\":\"check\",\"graph\":\"0 1 0.5\\n\",\"k\":1},\
         {\"op\":\"bogus\"},\
         {\"op\":\"batch\",\"requests\":[]},\
         {\"op\":\"check\",\"id\":\"own\",\"graph\":\"0 1 0.5\\n\",\"k\":1}]}\n";
    conn.write_all(line.as_bytes()).unwrap();
    conn.flush().unwrap();

    let replies = read_replies_by_id(&mut reader, 4);
    assert_eq!(
        replies["b#0"].get("status").and_then(Json::as_str),
        Some("ok")
    );
    assert_eq!(
        replies["own"].get("status").and_then(Json::as_str),
        Some("ok")
    );
    for id in ["b#1", "b#2"] {
        let v = &replies[id];
        assert_eq!(
            v.get("status").and_then(Json::as_str),
            Some("error"),
            "{v:?}"
        );
        assert!(v.get("error").and_then(Json::as_str).is_some());
    }

    let resp = chameleon_server::request_once(&addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(resp.contains("\"status\":\"ok\""));
    handle.join().unwrap();
}

#[test]
fn requests_split_mid_line_across_poll_ticks_reassemble() {
    let handle = Server::spawn(ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    // Dribble a pipelined pair of requests in 7-byte fragments with pauses
    // so each fragment lands in a separate poll tick; the reactor must
    // buffer partial lines across ticks and only dispatch on '\n'.
    let payload = "{\"op\":\"check\",\"id\":\"slow\",\"graph\":\"0 1 0.5\\n\",\"k\":1}\n\
                   {\"op\":\"bogus\",\"id\":\"slow2\"}\n";
    for frag in payload.as_bytes().chunks(7) {
        conn.write_all(frag).unwrap();
        conn.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let replies = read_replies_by_id(&mut reader, 2);
    assert_eq!(
        replies["slow"].get("status").and_then(Json::as_str),
        Some("ok")
    );
    assert_eq!(
        replies["slow2"].get("status").and_then(Json::as_str),
        Some("error")
    );

    let resp = chameleon_server::request_once(&addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(resp.contains("\"status\":\"ok\""));
    handle.join().unwrap();
}

#[test]
fn every_junk_line_gets_a_reply_and_the_connection_survives() {
    let handle = Server::spawn(ServerConfig {
        max_request_bytes: 64 * 1024,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let junk_lines: &[&[u8]] = &[
        b"not json at all",
        b"{",
        b"}{",
        b"{\"op\":12}",
        b"{\"op\":\"obfuscate\"}",
        b"\x00\x01\x02\x03",
        b"\xff\xfe\xfd invalid utf8",
        b"[1,2,3]",
        b"\"just a string\"",
        b"{\"op\":\"check\",\"graph\":\"0 1 0.5\\n\",\"k\":\"two\"}",
    ];
    for junk in junk_lines {
        conn.write_all(junk).unwrap();
        conn.write_all(b"\n").unwrap();
        conn.flush().unwrap();
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "no reply for junk line {junk:?}");
        let v = Json::parse(line.trim_end())
            .unwrap_or_else(|e| panic!("unstructured reply {line:?} for {junk:?}: {e}"));
        assert_eq!(
            v.get("status").and_then(Json::as_str),
            Some("error"),
            "junk line {junk:?} was not rejected: {line}"
        );
        assert!(
            v.get("error").and_then(Json::as_str).is_some(),
            "reply missing error message: {line}"
        );
    }

    // After all that, the same connection still serves real requests.
    let resp = chameleon_server::roundtrip(&mut conn, r#"{"op":"status"}"#).unwrap();
    let v = Json::parse(&resp).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));

    let resp = chameleon_server::request_once(&addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(resp.contains("\"status\":\"ok\""));
    handle.join().unwrap();
}
