//! End-to-end failover tests for chameleon-gate (DESIGN.md §13): a
//! gateway fronting three real `chameleond` processes must keep cache
//! affinity per graph, and when the backend owning an in-flight GenObf
//! job is SIGKILLed, the gateway must re-drive the job to the ring
//! successor and answer with bytes identical to an uninterrupted local
//! run — the placement-invariance half of the determinism contract.

use chameleon_core::CancelToken;
use chameleon_obs::json::Json;
use chameleon_server::{
    fnv1a64, parse_request, request_once, Gateway, GatewayConfig, GatewayHandle, HashRing, Request,
    RetryPolicy,
};
use chameleon_ugraph::io;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn graph_text(nodes: usize, seed: u64) -> String {
    let g = chameleon_datasets::dblp_like(nodes, seed);
    let mut buf = Vec::new();
    io::write_text(&g, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn obfuscate_request(graph: &str, worlds: usize, trials: usize, seed: u64) -> String {
    format!(
        "{{\"op\":\"obfuscate\",\"graph\":{},\"k\":2,\"epsilon\":0.2,\
         \"method\":\"ME\",\"worlds\":{worlds},\"trials\":{trials},\"seed\":{seed},\
         \"threads\":1}}",
        chameleon_obs::json::string(graph),
    )
}

fn parsed(line: &str) -> Json {
    Json::parse(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
}

fn field<'a>(v: &'a Json, key: &str) -> &'a Json {
    v.get(key)
        .unwrap_or_else(|| panic!("response missing {key:?}: {v:?}"))
}

fn status(addr: &str) -> Json {
    let line = request_once(addr, r#"{"op":"status"}"#).unwrap();
    field(&parsed(&line), "result").clone()
}

/// The response `result` bytes the library produces for the same request,
/// computed in-process: the failover contract is byte-identity with an
/// uninterrupted run, and an uninterrupted run matches the direct call.
fn reference_result(request: &str) -> String {
    let Ok(Request::Job(job)) = parse_request(request) else {
        panic!("reference request must parse as a job");
    };
    let raw = job.spec.execute(&CancelToken::new()).unwrap();
    parsed(&raw).render()
}

struct Backend {
    child: Child,
    addr: String,
    /// Held open so the daemon's stderr never blocks on a full pipe.
    _stderr: BufReader<std::process::ChildStderr>,
}

fn spawn_backend() -> Backend {
    let mut child = Command::new(env!("CARGO_BIN_EXE_chameleond"))
        .args(["--port", "0", "--workers", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn chameleond");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("chameleond listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .to_string();
    Backend {
        child,
        addr,
        _stderr: stderr,
    }
}

fn spawn_fleet(n: usize, retry: RetryPolicy) -> (Vec<Backend>, Vec<String>, GatewayHandle) {
    let backends: Vec<Backend> = (0..n).map(|_| spawn_backend()).collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr.clone()).collect();
    let gate = Gateway::spawn(GatewayConfig {
        backends: addrs.clone(),
        retry,
        // The kill tests rely on the forwarder path discovering death
        // (marking dead + re-driving); a probe thread would only race it.
        health_interval_ms: 0,
        ..GatewayConfig::default()
    })
    .expect("spawn chameleon-gate");
    (backends, addrs, gate)
}

fn shutdown_fleet(backends: Vec<Backend>, gate_addr: &str, gate: GatewayHandle) {
    let _ = request_once(gate_addr, r#"{"op":"shutdown"}"#);
    let _ = gate.join();
    for mut b in backends {
        let _ = request_once(&b.addr, r#"{"op":"shutdown"}"#);
        let _ = b.child.wait();
    }
}

fn wait_until(deadline: Duration, what: &str, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One attempt of the kill/re-drive cycle. Returns `None` when the job
/// finished before the SIGKILL landed (nothing was re-driven), so the
/// caller can escalate to a slower workload instead of flaking.
fn try_failover(nodes: usize, worlds: usize, trials: usize, seed: u64) -> Option<()> {
    let (mut backends, addrs, gate) = spawn_fleet(
        3,
        RetryPolicy {
            io_retries: 2,
            base_delay_ms: 10,
            max_delay_ms: 50,
            ..RetryPolicy::default()
        },
    );
    let gate_addr = gate.addr().to_string();

    let graph = graph_text(nodes, seed);
    let request = obfuscate_request(&graph, worlds, trials, seed);
    // The gateway routes by graph digest; replaying its ring construction
    // tells us which backend to assassinate.
    let ring = HashRing::new(&addrs, GatewayConfig::default().replicas);
    let owner = ring.owner(fnv1a64(graph.as_bytes())).unwrap();

    // Fire the slow job through the gateway from a background thread: the
    // client connection must survive the backend's death.
    let submit_addr = gate_addr.clone();
    let submit_req = request.clone();
    let submitter = std::thread::spawn(move || request_once(&submit_addr, &submit_req));

    // SIGKILL the owner as soon as its worker reports the job in flight.
    wait_until(
        Duration::from_secs(60),
        "the owner to start the job",
        || {
            field(&status(&backends[owner].addr), "in_flight")
                .as_u64()
                .unwrap()
                >= 1
        },
    );
    backends[owner].child.kill().unwrap();
    let _ = backends[owner].child.wait();

    let line = submitter.join().unwrap().expect("gateway answered");
    let st = status(&gate_addr);
    if field(&st, "redriven").as_u64().unwrap() == 0 {
        // The search outran the kill: the owner answered before dying.
        // Clean up and let the caller escalate.
        backends.remove(owner);
        shutdown_fleet(backends, &gate_addr, gate);
        return None;
    }

    // The re-driven response must be a plain success — the client never
    // learns a backend died — with the exact bytes of a local run.
    let v = parsed(&line);
    assert_eq!(field(&v, "status").as_str(), Some("ok"), "response: {line}");
    assert_eq!(field(&v, "result").render(), reference_result(&request));
    let dead = field(&st, "backends")
        .as_array()
        .unwrap()
        .iter()
        .filter(|b| field(b, "alive").as_bool() == Some(false))
        .count();
    assert_eq!(dead, 1, "exactly the killed backend is down: {st:?}");

    // No-failure comparison: the same request again now hits the ring
    // successor's cache and must render the same result bytes.
    let again = parsed(&request_once(&gate_addr, &request).unwrap());
    assert_eq!(field(&again, "cached").as_bool(), Some(true));
    assert_eq!(
        field(&again, "result").render(),
        field(&v, "result").render(),
        "cached successor replay diverged from the re-driven response"
    );

    backends.remove(owner);
    shutdown_fleet(backends, &gate_addr, gate);
    Some(())
}

#[test]
fn sigkill_owner_mid_job_redrives_to_ring_successor_byte_identically() {
    // Escalating workloads: if the search finishes before the SIGKILL
    // lands (fast machine), retry with a slower one instead of flaking.
    for (nodes, worlds, trials) in [(140, 300, 2), (220, 600, 3), (320, 1000, 4)] {
        if try_failover(nodes, worlds, trials, 17).is_some() {
            return;
        }
    }
    panic!("every workload completed before the SIGKILL; cannot exercise failover");
}

#[test]
fn gateway_keeps_cache_affinity_per_graph() {
    let (backends, addrs, gate) = spawn_fleet(3, RetryPolicy::default());
    let gate_addr = gate.addr().to_string();
    let ring = HashRing::new(&addrs, GatewayConfig::default().replicas);

    // Small quick jobs on distinct graphs; each must land on (and stay
    // on) the backend its digest owns.
    let mut expected = vec![0u64; addrs.len()];
    for seed in 0..4u64 {
        let graph = graph_text(60, seed);
        let request = format!(
            "{{\"op\":\"check\",\"graph\":{},\"k\":2}}",
            chameleon_obs::json::string(&graph)
        );
        let owner = ring.owner(fnv1a64(graph.as_bytes())).unwrap();
        let cold = parsed(&request_once(&gate_addr, &request).unwrap());
        assert_eq!(field(&cold, "status").as_str(), Some("ok"));
        assert_eq!(field(&cold, "cached").as_bool(), Some(false));
        // The repeat must be a cache hit: same digest, same backend.
        let warm = parsed(&request_once(&gate_addr, &request).unwrap());
        assert_eq!(field(&warm, "cached").as_bool(), Some(true));
        assert_eq!(
            field(&warm, "result").render(),
            field(&cold, "result").render()
        );
        expected[owner] += 2;
    }
    let st = status(&gate_addr);
    let per_backend: Vec<u64> = field(&st, "backends")
        .as_array()
        .unwrap()
        .iter()
        .map(|b| field(b, "forwarded").as_u64().unwrap())
        .collect();
    assert_eq!(
        per_backend, expected,
        "forward counts must match ring ownership: {st:?}"
    );

    shutdown_fleet(backends, &gate_addr, gate);
}
