//! End-to-end tests against a live `chameleond` on loopback: determinism
//! (daemon vs. direct library call, cold vs. cache hit, threads 1 vs. 2),
//! backpressure, per-job timeouts, graceful shutdown with a final metrics
//! snapshot, and the hardening paths — panic isolation, request-size
//! limits, read deadlines, and shutdown with stalled clients attached.

use chameleon_core::{CancelToken, Chameleon, ChameleonConfig, Method};
use chameleon_obs::json::Json;
use chameleon_server::{request_once, FaultPlan, Server, ServerConfig, ServerHandle};
use chameleon_ugraph::builder::DedupPolicy;
use chameleon_ugraph::io;
use std::io::{BufRead, BufReader, Write};

fn graph_text(nodes: usize, seed: u64) -> String {
    let g = chameleon_datasets::dblp_like(nodes, seed);
    let mut buf = Vec::new();
    io::write_text(&g, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn start(config: ServerConfig) -> (ServerHandle, String) {
    let handle = Server::spawn(config).unwrap();
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn parsed(line: &str) -> Json {
    Json::parse(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
}

fn field<'a>(v: &'a Json, key: &str) -> &'a Json {
    v.get(key)
        .unwrap_or_else(|| panic!("response missing {key:?}: {v:?}"))
}

/// Renders the `result` object back out; byte-stable because `Json`
/// objects render in sorted key order and numbers round-trip exactly.
fn result_bytes(line: &str) -> String {
    field(&parsed(line), "result").render()
}

fn shutdown(addr: &str, handle: ServerHandle) -> chameleon_server::ServerReport {
    let resp = request_once(addr, r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(field(&parsed(&resp), "status").as_str(), Some("ok"));
    handle.join().unwrap()
}

#[test]
fn daemon_matches_direct_call_cold_and_cached_across_thread_counts() {
    let graph = graph_text(60, 11);
    let (handle, addr) = start(ServerConfig::default());

    let submit = |threads: usize| {
        let req = format!(
            "{{\"op\":\"obfuscate\",\"graph\":{},\"k\":2,\"epsilon\":0.2,\
             \"method\":\"ME\",\"worlds\":60,\"trials\":1,\"seed\":5,\"threads\":{threads}}}",
            chameleon_obs::json::string(&graph),
        );
        request_once(&addr, &req).unwrap()
    };

    let cold = submit(1);
    let cold_v = parsed(&cold);
    assert_eq!(field(&cold_v, "status").as_str(), Some("ok"));
    assert_eq!(field(&cold_v, "cached").as_bool(), Some(false));

    // Same request again: a cache hit replaying the identical result.
    let hit = submit(1);
    assert_eq!(field(&parsed(&hit), "cached").as_bool(), Some(true));
    assert_eq!(result_bytes(&cold), result_bytes(&hit));

    // threads=2 hits the same entry (threads excluded from the key) —
    // legal because results are thread-count invariant.
    let two = submit(2);
    assert_eq!(field(&parsed(&two), "cached").as_bool(), Some(true));
    assert_eq!(result_bytes(&cold), result_bytes(&two));

    // The daemon's answer matches a direct library call, field by field
    // and graph byte by byte.
    let g = io::read_text(graph.as_bytes(), DedupPolicy::KeepFirst).unwrap();
    let config = ChameleonConfig {
        k: 2,
        epsilon: 0.2,
        num_world_samples: 60,
        trials: 1,
        num_threads: 1,
        ..ChameleonConfig::default()
    };
    let direct = Chameleon::new(config)
        .anonymize_cancellable(&g, Method::Me, 5, &CancelToken::new())
        .unwrap();
    let result = field(&cold_v, "result");
    assert_eq!(field(result, "sigma").as_f64(), Some(direct.sigma));
    assert_eq!(field(result, "eps_hat").as_f64(), Some(direct.eps_hat));
    let mut direct_text = Vec::new();
    io::write_text(&direct.graph, &mut direct_text).unwrap();
    assert_eq!(
        field(result, "graph").as_str().unwrap().as_bytes(),
        direct_text.as_slice(),
    );

    shutdown(&addr, handle);
}

#[test]
fn status_and_check_and_reliability_round_trip() {
    let graph = graph_text(40, 3);
    let (handle, addr) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });

    let status = request_once(&addr, r#"{"op":"status","id":"s1"}"#).unwrap();
    let v = parsed(&status);
    assert_eq!(field(&v, "id").as_str(), Some("s1"));
    let result = field(&v, "result");
    assert_eq!(field(result, "workers").as_u64(), Some(2));
    assert_eq!(field(result, "shutting_down").as_bool(), Some(false));
    assert!(result.get("cache").is_some());

    let check = request_once(
        &addr,
        &format!(
            "{{\"op\":\"check\",\"graph\":{},\"k\":2}}",
            chameleon_obs::json::string(&graph)
        ),
    )
    .unwrap();
    let v = parsed(&check);
    assert_eq!(field(&v, "status").as_str(), Some("ok"));
    assert!(field(field(&v, "result"), "eps_hat").as_f64().is_some());

    let rel_req = format!(
        "{{\"op\":\"reliability\",\"graph\":{},\"worlds\":80,\"pairs\":20,\"seed\":9}}",
        chameleon_obs::json::string(&graph)
    );
    let rel_a = request_once(&addr, &rel_req).unwrap();
    let rel_b = request_once(&addr, &rel_req).unwrap();
    assert_eq!(field(&parsed(&rel_b), "cached").as_bool(), Some(true));
    assert_eq!(result_bytes(&rel_a), result_bytes(&rel_b));

    shutdown(&addr, handle);
}

#[test]
fn bad_requests_get_structured_errors_and_do_not_kill_the_server() {
    let (handle, addr) = start(ServerConfig::default());

    let cases = [
        "not json at all",
        r#"{"op":"fry"}"#,
        r#"{"op":"obfuscate","graph":"0 1 0.5\n"}"#,
        r#"{"op":"check","graph":"0 1 not-a-prob\n","k":2}"#,
    ];
    for case in cases {
        let resp = request_once(&addr, case).unwrap();
        let v = parsed(&resp);
        assert_eq!(field(&v, "status").as_str(), Some("error"), "case {case:?}");
        assert!(field(&v, "error").as_str().is_some());
    }

    // Still serving after all that abuse.
    let status = request_once(&addr, r#"{"op":"status"}"#).unwrap();
    assert_eq!(field(&parsed(&status), "status").as_str(), Some("ok"));

    // Only the unparsable-graph case reached a worker; the others were
    // rejected at the protocol layer before queueing.
    let report = shutdown(&addr, handle);
    assert_eq!(report.jobs_failed, 1);
}

#[test]
fn full_queue_rejects_with_retry_after() {
    // One worker, queue of one: occupy the worker, fill the queue, and the
    // third submission must bounce with retry_after_ms.
    let (handle, addr) = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        cache_capacity: 0,
        ..ServerConfig::default()
    });
    // RSME at this size runs for hundreds of milliseconds in release (the
    // ensemble sampling and ERR scans dominate) — far longer than the
    // submission stagger below, so the worker is still busy with job 1
    // when jobs 2 and 3 arrive.
    let graph = graph_text(400, 7);
    let slow = |seed: u64| {
        format!(
            "{{\"op\":\"obfuscate\",\"graph\":{},\"k\":40,\"epsilon\":0.05,\
             \"method\":\"RSME\",\"worlds\":3000,\"trials\":2,\"seed\":{seed},\"threads\":1}}",
            chameleon_obs::json::string(&graph),
        )
    };

    let submits: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            let req = slow(100 + i);
            // Stagger so the first request owns the worker and the second
            // the queue slot before the third arrives.
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30 * i));
                request_once(&addr, &req).unwrap()
            })
        })
        .collect();
    let responses: Vec<String> = submits.into_iter().map(|t| t.join().unwrap()).collect();

    let rejected: Vec<&String> = responses
        .iter()
        .filter(|r| field(&parsed(r), "status").as_str() == Some("error"))
        .collect();
    assert_eq!(rejected.len(), 1, "exactly one rejection in {responses:?}");
    let v = parsed(rejected[0]);
    assert!(field(&v, "error").as_str().unwrap().contains("queue full"));
    assert!(field(&v, "retry_after_ms").as_u64().unwrap() > 0);

    let report = shutdown(&addr, handle);
    assert_eq!(report.jobs_completed, 2);
    assert_eq!(report.jobs_rejected, 1);
}

#[test]
fn timed_out_job_is_cancelled_and_the_worker_survives() {
    let (handle, addr) = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let graph = graph_text(120, 13);

    // A deadline far below the job's runtime: the cooperative token fires
    // at a σ-probe boundary and the job reports a timeout.
    let doomed = format!(
        "{{\"op\":\"obfuscate\",\"id\":\"doomed\",\"timeout_ms\":1,\"graph\":{},\
         \"k\":3,\"epsilon\":0.05,\"method\":\"RSME\",\"worlds\":500,\"trials\":3,\
         \"seed\":21,\"threads\":1}}",
        chameleon_obs::json::string(&graph),
    );
    let resp = request_once(&addr, &doomed).unwrap();
    let v = parsed(&resp);
    assert_eq!(field(&v, "id").as_str(), Some("doomed"));
    assert_eq!(field(&v, "status").as_str(), Some("error"));
    assert!(field(&v, "error").as_str().unwrap().contains("timeout"));

    // The sole worker is alive and takes the next job.
    let quick = format!(
        "{{\"op\":\"check\",\"graph\":{},\"k\":2}}",
        chameleon_obs::json::string(&graph)
    );
    let resp = request_once(&addr, &quick).unwrap();
    assert_eq!(field(&parsed(&resp), "status").as_str(), Some("ok"));

    let report = shutdown(&addr, handle);
    assert_eq!(report.jobs_timed_out, 1);
    assert_eq!(report.jobs_completed, 1);
}

#[test]
fn graceful_shutdown_drains_and_writes_the_metrics_snapshot() {
    let dir = std::env::temp_dir().join(format!(
        "chameleond-test-{}-{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").len(),
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics_path = dir.join("metrics.json");
    let (handle, addr) = start(ServerConfig {
        workers: 1,
        metrics_path: Some(metrics_path.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    });
    let graph = graph_text(80, 17);

    // Put a real job in flight, then immediately request shutdown from a
    // second connection: the job must complete, not be dropped.
    let job = format!(
        "{{\"op\":\"obfuscate\",\"graph\":{},\"k\":2,\"epsilon\":0.2,\"method\":\"ME\",\
         \"worlds\":200,\"trials\":1,\"seed\":33,\"threads\":0}}",
        chameleon_obs::json::string(&graph),
    );
    let worker_conn = {
        let addr = addr.clone();
        std::thread::spawn(move || request_once(&addr, &job).unwrap())
    };
    std::thread::sleep(std::time::Duration::from_millis(100));
    let report = shutdown(&addr, handle);

    let job_resp = worker_conn.join().unwrap();
    assert_eq!(field(&parsed(&job_resp), "status").as_str(), Some("ok"));
    assert_eq!(report.jobs_completed, 1);

    // New connections are refused (listener closed) or reset.
    assert!(request_once(&addr, r#"{"op":"status"}"#).is_err());

    // The final snapshot exists and is valid deterministic JSON.
    let snapshot = std::fs::read_to_string(&metrics_path).unwrap();
    let v = Json::parse(&snapshot).unwrap();
    if chameleon_obs::is_enabled() {
        assert!(
            v.get("counters").is_some(),
            "expected counters in {snapshot}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn submissions_during_shutdown_are_rejected() {
    let (handle, addr) = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    // Trigger shutdown and, while the accept loop may still be mid-poll,
    // push a job down a pre-existing connection.
    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    let resp = request_once(&addr, r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(field(&parsed(&resp), "status").as_str(), Some("ok"));
    let late = chameleon_server::roundtrip(
        &mut conn,
        r#"{"op":"check","graph":"nodes 2\n0 1 0.5\n","k":1}"#,
    );
    // Either the connection already died with the server, or the request
    // got a structured shutting-down rejection.
    if let Ok(line) = late {
        let v = parsed(&line);
        assert_eq!(field(&v, "status").as_str(), Some("error"));
        assert!(field(&v, "error")
            .as_str()
            .unwrap()
            .contains("shutting down"));
    }
    handle.join().unwrap();
}

const TINY_GRAPH: &str = "nodes 4\\n0 1 0.9\\n1 2 0.8\\n2 3 0.7\\n0 3 0.6\\n";

fn tiny_check(id: &str) -> String {
    format!("{{\"op\":\"check\",\"id\":\"{id}\",\"graph\":\"{TINY_GRAPH}\",\"k\":1}}")
}

#[test]
fn panicking_job_is_isolated_and_the_same_worker_serves_the_next_job() {
    // One worker, deterministic schedule: the very first execution
    // panics, everything after runs clean. The regression this pins: a
    // worker panic used to poison the queue/cache mutexes and take the
    // daemon down for good.
    let (handle, addr) = start(ServerConfig {
        workers: 1,
        cache_capacity: 0,
        faults: Some(FaultPlan::new(7).with_panics(1.0, 1)),
        ..ServerConfig::default()
    });

    let resp = request_once(&addr, &tiny_check("boom")).unwrap();
    let v = parsed(&resp);
    assert_eq!(field(&v, "id").as_str(), Some("boom"));
    assert_eq!(field(&v, "status").as_str(), Some("error"));
    assert_eq!(field(&v, "code").as_str(), Some("job_panicked"));
    assert!(field(&v, "error").as_str().unwrap().contains("panicked"));
    // Panics are transient by nature; the server marks them retryable.
    assert!(field(&v, "retry_after_ms").as_u64().unwrap() > 0);

    // The SAME worker (there is only one) now serves a normal job.
    let resp = request_once(&addr, &tiny_check("after")).unwrap();
    let v = parsed(&resp);
    assert_eq!(field(&v, "status").as_str(), Some("ok"));

    let report = shutdown(&addr, handle);
    assert_eq!(report.jobs_panicked, 1);
    assert_eq!(report.jobs_completed, 1);
}

#[test]
fn injected_cancel_is_retryable_and_distinct_from_a_timeout() {
    let (handle, addr) = start(ServerConfig {
        workers: 1,
        cache_capacity: 0,
        faults: Some(FaultPlan::new(3).with_cancels(1.0, 1)),
        ..ServerConfig::default()
    });

    let resp = request_once(&addr, &tiny_check("trip")).unwrap();
    let v = parsed(&resp);
    assert_eq!(field(&v, "status").as_str(), Some("error"));
    // An explicit cancel-token trip, not a deadline: code "cancelled"
    // with a retry hint, where a real timeout answers "timeout" without.
    assert_eq!(field(&v, "code").as_str(), Some("cancelled"));
    assert!(field(&v, "retry_after_ms").as_u64().unwrap() > 0);

    let resp = request_once(&addr, &tiny_check("ok")).unwrap();
    assert_eq!(field(&parsed(&resp), "status").as_str(), Some("ok"));

    let report = shutdown(&addr, handle);
    assert_eq!(report.jobs_cancelled, 1);
    assert_eq!(report.jobs_timed_out, 0);
    assert_eq!(report.jobs_completed, 1);
}

#[test]
fn oversized_request_line_gets_a_structured_error_and_the_connection_closes() {
    let (handle, addr) = start(ServerConfig {
        max_request_bytes: 1024,
        ..ServerConfig::default()
    });

    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    // 4 KiB against a 1 KiB cap; the reader must refuse without waiting
    // for the newline (none is ever sent on the abusive path).
    let huge = format!("{{\"op\":\"check\",\"graph\":\"{}\"", "x".repeat(4096));
    conn.write_all(huge.as_bytes()).unwrap();
    conn.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = parsed(line.trim_end());
    assert_eq!(field(&v, "status").as_str(), Some("error"));
    assert_eq!(field(&v, "code").as_str(), Some("request_too_large"));
    assert!(field(&v, "error").as_str().unwrap().contains("1024"));
    // The stream cannot be resynced mid-line, so the server closes it.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "expected EOF");

    // The daemon itself is unaffected.
    let status = request_once(&addr, r#"{"op":"status"}"#).unwrap();
    assert_eq!(field(&parsed(&status), "status").as_str(), Some("ok"));
    shutdown(&addr, handle);
}

#[test]
fn slowloris_client_gets_a_read_timeout_error() {
    let (handle, addr) = start(ServerConfig {
        read_timeout_ms: 150,
        ..ServerConfig::default()
    });

    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    // Start a line, then stall: the per-line deadline (armed at the first
    // byte) must fire and answer a structured read_timeout error.
    conn.write_all(b"{\"op\":\"st").unwrap();
    conn.flush().unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = parsed(line.trim_end());
    assert_eq!(field(&v, "status").as_str(), Some("error"));
    assert_eq!(field(&v, "code").as_str(), Some("read_timeout"));
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "expected EOF");

    let status = request_once(&addr, r#"{"op":"status"}"#).unwrap();
    assert_eq!(field(&parsed(&status), "status").as_str(), Some("ok"));
    shutdown(&addr, handle);
}

#[test]
fn graceful_shutdown_completes_with_a_stalled_client_attached() {
    let (handle, addr) = start(ServerConfig {
        workers: 1,
        // No read deadline at all: only the shutdown poll can free the
        // connection thread from the half-sent line.
        read_timeout_ms: 0,
        ..ServerConfig::default()
    });

    // A client that starts a request line and then goes silent forever.
    let mut stalled = std::net::TcpStream::connect(&addr).unwrap();
    stalled.write_all(b"{\"op\":\"status\"").unwrap();
    stalled.flush().unwrap();
    // And one that is connected but fully idle.
    let _idle = std::net::TcpStream::connect(&addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));

    let begun = std::time::Instant::now();
    let report = shutdown(&addr, handle);
    // The drain must not wait on the stalled/idle clients: connection
    // threads poll the shutdown flag and unwind within the bounded wait.
    assert!(
        begun.elapsed() < std::time::Duration::from_secs(5),
        "shutdown took {:?} with stalled clients attached",
        begun.elapsed()
    );
    assert_eq!(report.jobs_completed, 0);
}

#[test]
fn connection_limit_rejects_excess_clients_with_server_busy() {
    let (handle, addr) = start(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });

    // Occupy the single slot with a connection the server has accepted
    // (prove it by round-tripping a request on it).
    let mut first = std::net::TcpStream::connect(&addr).unwrap();
    let resp = chameleon_server::roundtrip(&mut first, r#"{"op":"status"}"#).unwrap();
    assert_eq!(field(&parsed(&resp), "status").as_str(), Some("ok"));

    // The next client is turned away at the door with a structured,
    // retryable server_busy line.
    let second = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(second);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = parsed(line.trim_end());
    assert_eq!(field(&v, "code").as_str(), Some("server_busy"));
    assert!(field(&v, "retry_after_ms").as_u64().unwrap() > 0);
    drop(reader);

    // Releasing the slot lets new clients in again.
    drop(first);
    std::thread::sleep(std::time::Duration::from_millis(100));
    let status = request_once(&addr, r#"{"op":"status"}"#).unwrap();
    assert_eq!(field(&parsed(&status), "status").as_str(), Some("ok"));
    shutdown(&addr, handle);
}
