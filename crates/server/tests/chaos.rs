//! Deterministic fault-injection soak: the daemon is driven through a
//! seeded schedule of worker panics, cancel-token trips, queue-full
//! storms and abusive client I/O, and must come out of it (a) alive and
//! (b) producing results *byte-identical* to a fault-free run.
//!
//! Why byte-identical is even possible: injected faults only remove or
//! delay work — a panicked or cancelled execution computes nothing and
//! caches nothing — and never feed into a job's RNG streams. A job that
//! eventually runs to completion therefore takes exactly the fault-free
//! code path through the pipeline. The chaos schedule itself is a pure
//! function of the plan seed (`faults::decide`), so the whole soak is
//! reproducible, not a flaky stress test.

use chameleon_obs::json::Json;
use chameleon_server::{
    request_once, request_with_retry, FaultPlan, RetryPolicy, Server, ServerConfig, ServerHandle,
};
use chameleon_ugraph::io;
use std::io::{BufRead, BufReader, Write};

fn graph_text(nodes: usize, seed: u64) -> String {
    let g = chameleon_datasets::dblp_like(nodes, seed);
    let mut buf = Vec::new();
    io::write_text(&g, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn start(config: ServerConfig) -> (ServerHandle, String) {
    let handle = Server::spawn(config).unwrap();
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn field<'a>(v: &'a Json, key: &str) -> &'a Json {
    v.get(key)
        .unwrap_or_else(|| panic!("response missing {key:?}: {v:?}"))
}

fn result_bytes(line: &str) -> String {
    let v = Json::parse(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"));
    assert_eq!(
        field(&v, "status").as_str(),
        Some("ok"),
        "job did not converge: {line}"
    );
    field(&v, "result").render()
}

/// The soak's job mix: cheap but real work with distinct cache keys.
fn job_requests() -> Vec<String> {
    let graph = chameleon_obs::json::string(&graph_text(30, 2));
    let mut reqs = Vec::new();
    for k in 1..=4u64 {
        reqs.push(format!(
            "{{\"op\":\"check\",\"id\":\"chk{k}\",\"graph\":{graph},\"k\":{k}}}"
        ));
    }
    for seed in [5u64, 6, 7, 8] {
        reqs.push(format!(
            "{{\"op\":\"reliability\",\"id\":\"rel{seed}\",\"graph\":{graph},\
             \"worlds\":40,\"pairs\":10,\"seed\":{seed},\"threads\":1}}"
        ));
    }
    reqs
}

/// Runs every request against `addr` with the retry client, returning the
/// rendered result bytes in request order.
fn run_jobs(addr: &str, policy: &RetryPolicy) -> Vec<String> {
    job_requests()
        .iter()
        .map(|req| result_bytes(&request_with_retry(addr, req, policy).unwrap()))
        .collect()
}

#[test]
fn soak_with_faults_on_matches_faults_off_byte_for_byte() {
    let policy = RetryPolicy {
        max_retries: 12,
        base_delay_ms: 10,
        max_delay_ms: 500,
        seed: 99,
        ..RetryPolicy::default()
    };

    // Baseline: no faults.
    let (handle, addr) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let baseline = run_jobs(&addr, &policy);
    let resp = request_once(&addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(resp.contains("\"status\":\"ok\""));
    handle.join().unwrap();

    // Chaos run: the first 3 executions panic, the next 3 are cancelled
    // (rate 1.0 + budget = exact deterministic prefix schedule), a tiny
    // queue forces queue-full rejections, and abusive clients hammer the
    // connection layer while the real jobs run.
    let (handle, addr) = start(ServerConfig {
        workers: 2,
        queue_depth: 2,
        max_request_bytes: 64 * 1024,
        read_timeout_ms: 200,
        faults: Some(
            FaultPlan::new(2026)
                .with_panics(1.0, 3)
                .with_cancels(1.0, 3),
        ),
        ..ServerConfig::default()
    });

    let abusers: Vec<_> = (0..3u8)
        .map(|kind| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                for _ in 0..4 {
                    let Ok(mut conn) = std::net::TcpStream::connect(&addr) else {
                        continue;
                    };
                    match kind {
                        // Junk bytes (invalid UTF-8 included) + newline.
                        0 => {
                            let _ = conn.write_all(b"\xff\xfe{{{ junk\n");
                            let mut line = String::new();
                            let _ = BufReader::new(&conn).read_line(&mut line);
                        }
                        // Oversized line against the 64 KiB cap.
                        1 => {
                            let _ = conn.write_all(&vec![b'x'; 128 * 1024]);
                            let _ = conn.write_all(b"\n");
                            let mut line = String::new();
                            let _ = BufReader::new(&conn).read_line(&mut line);
                        }
                        // Truncated request: half a line, then vanish.
                        _ => {
                            let _ = conn.write_all(b"{\"op\":\"chec");
                        }
                    }
                }
            })
        })
        .collect();

    let chaotic = run_jobs(&addr, &policy);
    for t in abusers {
        t.join().unwrap();
    }

    assert_eq!(
        baseline, chaotic,
        "results diverged between faults-off and faults-on runs"
    );

    // The injected faults actually happened and were survived.
    let status = request_once(&addr, r#"{"op":"status"}"#).unwrap();
    let v = Json::parse(&status).unwrap();
    let faults = field(field(&v, "result"), "faults");
    assert_eq!(field(faults, "injected_panics").as_u64(), Some(3));
    assert_eq!(field(faults, "injected_cancels").as_u64(), Some(3));

    let resp = request_once(&addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(resp.contains("\"status\":\"ok\""));
    let report = handle.join().unwrap();
    assert_eq!(report.jobs_panicked, 3);
    assert_eq!(report.jobs_cancelled, 3);
    // Every submitted job converged; the chaos shows up only in the
    // fault/retry accounting, never in the payloads.
    assert!(report.jobs_completed >= job_requests().len() as u64);
}

#[test]
fn reactor_faults_leave_responses_byte_identical() {
    let policy = RetryPolicy {
        max_retries: 12,
        base_delay_ms: 10,
        max_delay_ms: 500,
        seed: 7,
        ..RetryPolicy::default()
    };

    // Baseline: no faults.
    let (handle, addr) = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let baseline = run_jobs(&addr, &policy);
    let resp = request_once(&addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(resp.contains("\"status\":\"ok\""));
    handle.join().unwrap();

    // Reactor chaos: the first 4 read-readiness events are deferred a poll
    // tick and the first 6 socket writes are truncated to a single byte.
    // Both faults reshuffle *when* bytes move through the event loop, never
    // *which* bytes move — so every payload must come back unchanged.
    let (handle, addr) = start(ServerConfig {
        workers: 2,
        faults: Some(
            FaultPlan::new(31)
                .with_deferred_ready(1.0, 4)
                .with_short_writes(1.0, 6),
        ),
        ..ServerConfig::default()
    });
    let chaotic = run_jobs(&addr, &policy);
    assert_eq!(baseline, chaotic, "reactor faults changed response bytes");

    // Every budgeted fault actually fired (rate 1.0 => exact prefix).
    let status = request_once(&addr, r#"{"op":"status"}"#).unwrap();
    let v = Json::parse(&status).unwrap();
    let faults = field(field(&v, "result"), "faults");
    assert_eq!(field(faults, "injected_defers").as_u64(), Some(4));
    assert_eq!(field(faults, "injected_short_writes").as_u64(), Some(6));

    let resp = request_once(&addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(resp.contains("\"status\":\"ok\""));
    handle.join().unwrap();
}

#[test]
fn queue_full_storm_converges_under_the_retry_client() {
    // One worker, queue of one: concurrent submissions are guaranteed to
    // bounce with queue_full + retry_after_ms; the seeded-backoff retry
    // client must get every one of them through.
    let (handle, addr) = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        cache_capacity: 0,
        ..ServerConfig::default()
    });
    let graph = chameleon_obs::json::string(&graph_text(25, 4));

    let clients: Vec<_> = (0..6u64)
        .map(|i| {
            let addr = addr.clone();
            let req = format!(
                "{{\"op\":\"reliability\",\"graph\":{graph},\"worlds\":30,\
                 \"pairs\":8,\"seed\":{i},\"threads\":1}}"
            );
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    max_retries: 40,
                    base_delay_ms: 5,
                    max_delay_ms: 200,
                    seed: i,
                    ..RetryPolicy::default()
                };
                request_with_retry(&addr, &req, &policy).unwrap()
            })
        })
        .collect();
    for client in clients {
        let line = client.join().unwrap();
        assert!(
            line.contains("\"status\":\"ok\""),
            "storm client failed: {line}"
        );
    }

    let resp = request_once(&addr, r#"{"op":"shutdown"}"#).unwrap();
    assert!(resp.contains("\"status\":\"ok\""));
    let report = handle.join().unwrap();
    assert_eq!(report.jobs_completed, 6);
}
