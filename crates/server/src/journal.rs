//! Write-ahead journal of job lifecycles (DESIGN.md §11).
//!
//! The journal makes accepted work durable: every job transition is
//! appended as one checksummed record *before* the transition is
//! acknowledged, so a crashed daemon can replay the log, re-enqueue
//! accepted-but-incomplete jobs in their original order, rehydrate the
//! result cache from `completed` records, and resume half-finished GenObf
//! searches from their last `checkpoint` record.
//!
//! # On-disk format
//!
//! A journal directory holds numbered segments `seg-00000000.wal`,
//! `seg-00000001.wal`, … Each segment is a sequence of framed records:
//!
//! ```text
//! record  = len:u32-le  checksum:u64-le  payload[len]
//! payload = one JSON object, e.g.
//!   {"kind":"accepted","v":1,"seq":3,"op":"obfuscate","key":"…",
//!    "timeout_ms":5000,"spec":{…full request, graph inline…}}
//!   {"kind":"started","v":1,"seq":3}
//!   {"kind":"checkpoint","v":1,"seq":3,"data":"…opaque checkpoint…"}
//!   {"kind":"completed","v":1,"seq":3,"key":"…","digest":"…",
//!    "result":"…rendered result JSON…"}   (result absent for cache hits)
//!   {"kind":"failed","v":1,"seq":3,"code":"job_failed","error":"…"}
//!   {"kind":"cancelled","v":1,"seq":3}
//! ```
//!
//! The checksum is FNV-1a over the payload bytes. Records are
//! self-contained (the `completed` record carries its cache key), so
//! replay state is a pure fold over the records in segment order.
//!
//! # Corruption tolerance
//!
//! A crash can truncate the tail of the newest segment mid-record, and
//! storage can flip bits. Replay **never panics** on either: a framing
//! error (short header, short payload, absurd length) or a checksum
//! mismatch invalidates the rest of that segment — the corrupt suffix is
//! dropped and counted — while a record whose checksum passes but whose
//! payload is semantically malformed is skipped individually (the frame
//! boundary is still trustworthy). Both paths feed
//! `server.journal.records_dropped`.
//!
//! # Compaction
//!
//! On clean shutdown the daemon calls [`Journal::compact`]: segments that
//! no longer contain any *open* (accepted, not yet terminal) job are
//! deleted after a final flush + fsync, so a clean stop leaves a minimal
//! log and a clean restart replays zero jobs.

use crate::job::JobSpec;
use crate::protocol::{self, Request};
use chameleon_obs::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Record-format version; bumped when the payload shape changes.
const RECORD_VERSION: u64 = 1;

/// Frame header: `u32` length + `u64` FNV-1a checksum.
const HEADER_BYTES: usize = 12;

/// Sanity cap on one record (a graph payload some orders of magnitude
/// beyond anything the request size limit admits). A length field above
/// this is treated as corruption, not an allocation request.
const MAX_RECORD_BYTES: u32 = 256 * 1024 * 1024;

/// Default segment-rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// How often `Interval`-mode journals are flushed to disk (driven by the
/// reactor tick calling [`Journal::maybe_sync`]).
const SYNC_INTERVAL: Duration = Duration::from_millis(200);

/// When appended records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalSync {
    /// fsync after every append: no acknowledged record is ever lost, at
    /// a per-append latency cost.
    Always,
    /// Buffer appends and flush + fsync on the reactor tick (roughly
    /// every 200 ms): bounded loss window, near-zero append overhead.
    Interval,
}

impl std::str::FromStr for JournalSync {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(JournalSync::Always),
            "interval" => Ok(JournalSync::Interval),
            other => Err(format!(
                "journal sync must be always|interval, got {other:?}"
            )),
        }
    }
}

/// One accepted-but-incomplete job recovered by replay.
#[derive(Debug, Clone)]
pub struct ReplayJob {
    /// The job's journal sequence number (reused for its remaining
    /// lifecycle records).
    pub seq: u64,
    /// What to compute.
    pub spec: JobSpec,
    /// The per-job timeout the original request carried.
    pub timeout_ms: Option<u64>,
    /// Latest checkpoint recorded for the job, if any (opaque to the
    /// journal; `server::job` feeds it to the search).
    pub checkpoint: Option<String>,
}

/// Everything replay recovered from an existing journal directory.
#[derive(Debug, Default)]
pub struct ReplaySummary {
    /// Accepted-but-incomplete jobs, in original acceptance order.
    pub jobs: Vec<ReplayJob>,
    /// `(cache key, rendered result)` pairs from `completed` records, in
    /// record order — rehydrates the result cache so repeated requests
    /// stay byte-identical across the restart.
    pub completed: Vec<(String, String)>,
    /// Records decoded successfully.
    pub records_read: u64,
    /// Corrupt or malformed records dropped (truncated tails, checksum
    /// mismatches, undecodable payloads).
    pub records_dropped: u64,
    /// Segments scanned.
    pub segments_scanned: u64,
}

/// Point-in-time journal statistics (for `status`).
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalStats {
    /// Jobs accepted but not yet terminal.
    pub open_jobs: usize,
    /// Live segment files (including the one being written).
    pub segments: u64,
    /// Records appended since open.
    pub appends: u64,
    /// fsyncs issued since open.
    pub syncs: u64,
}

/// Per-job replay state, keyed by sequence number.
#[derive(Debug, Default)]
struct SeqState {
    accepted: Option<(JobSpec, Option<u64>)>,
    checkpoint: Option<String>,
    terminal: bool,
    order: u64,
}

/// The append side of the write-ahead log. One instance per daemon,
/// behind a [`crate::sync::RecoverableMutex`].
pub struct Journal {
    dir: PathBuf,
    sync: JournalSync,
    segment_bytes: u64,
    writer: BufWriter<File>,
    seg_index: u64,
    written: u64,
    next_seq: u64,
    dirty: bool,
    last_sync: Instant,
    appends: u64,
    syncs: u64,
    /// Open (non-terminal) jobs → index of the segment holding their
    /// `accepted` record; drives compaction.
    open_jobs: BTreeMap<u64, u64>,
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, replaying any
    /// existing segments first. Appends go to a fresh segment — never to
    /// a possibly-truncated tail.
    ///
    /// # Errors
    /// I/O errors creating the directory or the new segment. Corrupt
    /// *content* is never an error (see module docs).
    pub fn open(
        dir: &Path,
        sync: JournalSync,
        segment_bytes: u64,
    ) -> io::Result<(Journal, ReplaySummary)> {
        fs::create_dir_all(dir)?;
        let mut summary = ReplaySummary::default();
        let mut states: BTreeMap<u64, SeqState> = BTreeMap::new();
        let mut open_jobs: BTreeMap<u64, u64> = BTreeMap::new();
        let mut max_seg: Option<u64> = None;
        let mut max_seq: Option<u64> = None;
        let mut order = 0u64;
        for (seg, path) in segment_files(dir)? {
            max_seg = Some(max_seg.map_or(seg, |m: u64| m.max(seg)));
            summary.segments_scanned += 1;
            let bytes = fs::read(&path)?;
            let mut scan = ScanRecords::new(&bytes);
            while let Some(payload) = scan.next() {
                match apply_record(payload, &mut states, &mut order) {
                    Ok(applied) => {
                        summary.records_read += 1;
                        let seq = match applied {
                            Applied::Accepted(seq) => {
                                open_jobs.insert(seq, seg);
                                seq
                            }
                            Applied::Terminal(seq, completed) => {
                                open_jobs.remove(&seq);
                                if let Some(pair) = completed {
                                    summary.completed.push(pair);
                                }
                                seq
                            }
                            Applied::Progress(seq) => seq,
                        };
                        max_seq = Some(max_seq.map_or(seq, |m: u64| m.max(seq)));
                    }
                    Err(_) => summary.records_dropped += 1,
                }
            }
            summary.records_dropped += scan.dropped;
        }
        let mut ordered: Vec<(u64, u64, SeqState)> = states
            .into_iter()
            .filter(|(_, st)| !st.terminal && st.accepted.is_some())
            .map(|(seq, st)| (st.order, seq, st))
            .collect();
        ordered.sort_by_key(|(order, _, _)| *order);
        for (_, seq, st) in ordered {
            let (spec, timeout_ms) = st.accepted.expect("filtered on accepted");
            summary.jobs.push(ReplayJob {
                seq,
                spec,
                timeout_ms,
                checkpoint: st.checkpoint,
            });
        }
        // New sequence numbers must clear every seq ever journaled —
        // terminal ones included, or a fresh job could collide with an
        // old `completed` record and replay as already-done.
        let next_seq = max_seq.map_or(0, |m| m + 1);
        let seg_index = max_seg.map_or(0, |m| m + 1);
        let writer = open_segment(dir, seg_index)?;
        Ok((
            Journal {
                dir: dir.to_path_buf(),
                sync,
                segment_bytes: segment_bytes.max(4096),
                writer,
                seg_index,
                written: 0,
                next_seq,
                dirty: false,
                last_sync: Instant::now(),
                appends: 0,
                syncs: 0,
                open_jobs,
            },
            summary,
        ))
    }

    /// Records acceptance of a job, returning its sequence number. Under
    /// `JournalSync::Always` the record is on disk when this returns.
    pub fn accepted(&mut self, spec: &JobSpec, timeout_ms: Option<u64>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut payload = String::with_capacity(256);
        let _ = write!(
            payload,
            "{{\"kind\":\"accepted\",\"v\":{RECORD_VERSION},\"seq\":{seq},\"op\":\"{}\",\"key\":{}",
            spec.op(),
            json::string(&spec.cache_key()),
        );
        if let Some(t) = timeout_ms {
            let _ = write!(payload, ",\"timeout_ms\":{t}");
        }
        let _ = write!(payload, ",\"spec\":{}}}", encode_spec(spec));
        self.append(&payload);
        self.open_jobs.insert(seq, self.seg_index);
        seq
    }

    /// Records that a worker picked the job up.
    pub fn started(&mut self, seq: u64) {
        self.append(&format!(
            "{{\"kind\":\"started\",\"v\":{RECORD_VERSION},\"seq\":{seq}}}"
        ));
    }

    /// Records a search checkpoint (opaque payload from the durability
    /// sink).
    pub fn checkpoint(&mut self, seq: u64, data: &str) {
        self.append(&format!(
            "{{\"kind\":\"checkpoint\",\"v\":{RECORD_VERSION},\"seq\":{seq},\"data\":{}}}",
            json::string(data)
        ));
        chameleon_obs::counter!("server.journal.checkpoints").add(1);
    }

    /// Records successful completion. `result` is `None` for cache hits —
    /// the journal already holds (or never needed) the bytes.
    pub fn completed(&mut self, seq: u64, key: &str, result: Option<&str>) {
        let mut payload = String::with_capacity(result.map_or(96, |r| r.len() + 128));
        let _ = write!(
            payload,
            "{{\"kind\":\"completed\",\"v\":{RECORD_VERSION},\"seq\":{seq},\"key\":{}",
            json::string(key)
        );
        if let Some(result) = result {
            let _ = write!(
                payload,
                ",\"digest\":\"{:016x}\",\"result\":{}",
                crate::cache::fnv1a64(result.as_bytes()),
                json::string(result)
            );
        }
        payload.push('}');
        self.append(&payload);
        self.open_jobs.remove(&seq);
    }

    /// Records failure (the job ran and errored, or could not be
    /// re-enqueued on recovery).
    pub fn failed(&mut self, seq: u64, code: &str, error: &str) {
        self.append(&format!(
            "{{\"kind\":\"failed\",\"v\":{RECORD_VERSION},\"seq\":{seq},\"code\":{},\"error\":{}}}",
            json::string(code),
            json::string(error)
        ));
        self.open_jobs.remove(&seq);
    }

    /// Records cancellation (deadline, explicit cancel, or a recovery
    /// policy that chose not to re-run the job).
    pub fn cancelled(&mut self, seq: u64) {
        self.append(&format!(
            "{{\"kind\":\"cancelled\",\"v\":{RECORD_VERSION},\"seq\":{seq}}}"
        ));
        self.open_jobs.remove(&seq);
    }

    fn append(&mut self, payload: &str) {
        let bytes = payload.as_bytes();
        let mut frame = Vec::with_capacity(HEADER_BYTES + bytes.len());
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crate::cache::fnv1a64(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        if let Err(e) = self.writer.write_all(&frame) {
            chameleon_obs::counter!("server.journal.append_errors").add(1);
            eprintln!("journal: append failed: {e}");
            return;
        }
        self.written += frame.len() as u64;
        self.appends += 1;
        self.dirty = true;
        chameleon_obs::counter!("server.journal.appends").add(1);
        if self.sync == JournalSync::Always {
            self.sync_now();
        }
        if self.written >= self.segment_bytes {
            self.rotate();
        }
    }

    fn rotate(&mut self) {
        self.sync_now();
        match open_segment(&self.dir, self.seg_index + 1) {
            Ok(writer) => {
                self.seg_index += 1;
                self.writer = writer;
                self.written = 0;
                chameleon_obs::counter!("server.journal.rotations").add(1);
            }
            Err(e) => {
                chameleon_obs::counter!("server.journal.append_errors").add(1);
                eprintln!("journal: segment rotation failed: {e}");
            }
        }
    }

    /// Flushes buffered records and fsyncs the segment.
    pub fn sync_now(&mut self) {
        if !self.dirty {
            return;
        }
        let flushed = self
            .writer
            .flush()
            .and_then(|()| self.writer.get_ref().sync_data());
        match flushed {
            Ok(()) => {
                self.dirty = false;
                self.syncs += 1;
                chameleon_obs::counter!("server.journal.syncs").add(1);
            }
            Err(e) => {
                chameleon_obs::counter!("server.journal.append_errors").add(1);
                eprintln!("journal: sync failed: {e}");
            }
        }
    }

    /// Interval-mode housekeeping: flush + fsync when the last sync is
    /// older than the interval. Called from the reactor tick; a no-op
    /// when clean or in `Always` mode.
    pub fn maybe_sync(&mut self) {
        if self.dirty && self.last_sync.elapsed() >= SYNC_INTERVAL {
            self.sync_now();
            self.last_sync = Instant::now();
        }
    }

    /// Final flush + fsync, then deletes every segment that holds no open
    /// job's `accepted` record. Returns the number of segments removed.
    /// Called on clean shutdown so a clean restart replays nothing.
    pub fn compact(&mut self) -> u64 {
        self.sync_now();
        let min_keep = self
            .open_jobs
            .values()
            .copied()
            .min()
            .unwrap_or(self.seg_index)
            .min(self.seg_index);
        let mut removed = 0;
        if let Ok(segments) = segment_files(&self.dir) {
            for (seg, path) in segments {
                if seg < min_keep && fs::remove_file(&path).is_ok() {
                    removed += 1;
                }
            }
        }
        if removed > 0 {
            chameleon_obs::counter!("server.journal.compacted_segments").add(removed);
            // Make the deletions themselves durable (best-effort: not
            // every filesystem supports fsync on a directory handle).
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        removed
    }

    /// Current statistics for `status` responses.
    pub fn stats(&self) -> JournalStats {
        let segments = segment_files(&self.dir).map_or(0, |v| v.len() as u64);
        JournalStats {
            open_jobs: self.open_jobs.len(),
            segments,
            appends: self.appends,
            syncs: self.syncs,
        }
    }
}

/// What applying one replayed record did to the state fold.
enum Applied {
    Accepted(u64),
    Terminal(u64, Option<(String, String)>),
    Progress(u64),
}

fn apply_record(
    payload: &[u8],
    states: &mut BTreeMap<u64, SeqState>,
    order: &mut u64,
) -> Result<Applied, String> {
    let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
    let v = Json::parse(text).map_err(|e| e.to_string())?;
    let version = v.get("v").and_then(Json::as_u64).ok_or("missing version")?;
    if version != RECORD_VERSION {
        return Err(format!("unsupported record version {version}"));
    }
    let kind = v.get("kind").and_then(Json::as_str).ok_or("missing kind")?;
    let seq = v.get("seq").and_then(Json::as_u64).ok_or("missing seq")?;
    match kind {
        "accepted" => {
            let spec = decode_spec(&v)?;
            let timeout_ms = v.get("timeout_ms").and_then(Json::as_u64);
            *order += 1;
            let st = states.entry(seq).or_default();
            st.accepted = Some((spec, timeout_ms));
            st.order = *order;
            Ok(Applied::Accepted(seq))
        }
        "started" => Ok(Applied::Progress(seq)),
        "checkpoint" => {
            let data = v
                .get("data")
                .and_then(Json::as_str)
                .ok_or("checkpoint record missing data")?;
            states.entry(seq).or_default().checkpoint = Some(data.to_string());
            Ok(Applied::Progress(seq))
        }
        "completed" => {
            let key = v
                .get("key")
                .and_then(Json::as_str)
                .ok_or("completed record missing key")?;
            states.entry(seq).or_default().terminal = true;
            // Result bytes are optional (cache hits); when present they
            // rehydrate the cache even if the accepted record was lost —
            // records are self-contained.
            let completed = v
                .get("result")
                .and_then(Json::as_str)
                .map(|r| (key.to_string(), r.to_string()));
            Ok(Applied::Terminal(seq, completed))
        }
        "failed" | "cancelled" => {
            states.entry(seq).or_default().terminal = true;
            Ok(Applied::Terminal(seq, None))
        }
        other => Err(format!("unknown record kind {other:?}")),
    }
}

/// Scanner over the valid record payloads of one segment's bytes. Stops
/// at the first framing or checksum error (dropping the corrupt suffix)
/// and counts what it dropped in `dropped`.
struct ScanRecords<'a> {
    bytes: &'a [u8],
    pos: usize,
    dropped: u64,
    dead: bool,
}

impl<'a> ScanRecords<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            dropped: 0,
            dead: false,
        }
    }

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.dead || self.pos == self.bytes.len() {
            return None;
        }
        let rest = &self.bytes[self.pos..];
        if rest.len() < HEADER_BYTES {
            self.dropped += 1;
            self.dead = true;
            return None;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        if len as u32 > MAX_RECORD_BYTES || rest.len() < HEADER_BYTES + len {
            self.dropped += 1;
            self.dead = true;
            return None;
        }
        let payload = &rest[HEADER_BYTES..HEADER_BYTES + len];
        if crate::cache::fnv1a64(payload) != checksum {
            self.dropped += 1;
            self.dead = true;
            return None;
        }
        self.pos += HEADER_BYTES + len;
        Some(payload)
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:08}.wal"))
}

fn open_segment(dir: &Path, index: u64) -> io::Result<BufWriter<File>> {
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(segment_path(dir, index))?;
    Ok(BufWriter::new(file))
}

/// Journal segments in `dir`, sorted by index.
fn segment_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(index) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".wal"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((index, entry.path()));
    }
    out.sort_by_key(|(index, _)| *index);
    Ok(out)
}

/// Renders a [`JobSpec`] as the wire-protocol job object it came from —
/// decode reuses [`protocol::parse_request`], so journal replay and the
/// network path share one parser (same defaults, same validation).
fn encode_spec(spec: &JobSpec) -> String {
    let mut out = String::with_capacity(160);
    match spec {
        JobSpec::Obfuscate {
            graph,
            k,
            epsilon,
            method,
            worlds,
            trials,
            threads,
            strip_worlds,
            seed,
        } => {
            let _ = write!(
                out,
                "{{\"op\":\"obfuscate\",\"graph\":{},\"k\":{k},\"epsilon\":{},\"method\":\"{}\",\
                 \"worlds\":{worlds},\"trials\":{trials},\"threads\":{threads},\
                 \"strip_worlds\":{strip_worlds},\"seed\":{seed}}}",
                json::string(graph),
                json::number(*epsilon),
                method.name(),
            );
        }
        JobSpec::Check {
            graph,
            k,
            epsilon,
            tolerance,
        } => {
            let _ = write!(
                out,
                "{{\"op\":\"check\",\"graph\":{},\"k\":{k},\"epsilon\":{},\"tolerance\":{tolerance}}}",
                json::string(graph),
                json::number(*epsilon),
            );
        }
        JobSpec::Reliability {
            graph,
            worlds,
            pairs,
            threads,
            seed,
        } => {
            let _ = write!(
                out,
                "{{\"op\":\"reliability\",\"graph\":{},\"worlds\":{worlds},\"pairs\":{pairs},\
                 \"threads\":{threads},\"seed\":{seed}}}",
                json::string(graph),
            );
        }
    }
    out
}

fn decode_spec(record: &Json) -> Result<JobSpec, String> {
    let spec = record.get("spec").ok_or("accepted record missing spec")?;
    let line = spec.render();
    match protocol::parse_request(&line) {
        Ok(Request::Job(job)) => Ok(job.spec),
        Ok(_) => Err("accepted record spec is not a job".into()),
        Err((_, msg)) => Err(format!("accepted record spec: {msg}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::AnonymizeMethod;
    use chameleon_core::Method;

    fn unique_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "chameleon-journal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn obf_spec(seed: u64) -> JobSpec {
        JobSpec::Obfuscate {
            graph: "nodes 4\n0 1 0.5\n1 2 0.25\n2 3 0.75\n".into(),
            k: 2,
            epsilon: 0.125,
            method: AnonymizeMethod::Chameleon(Method::Me),
            worlds: 50,
            trials: 1,
            threads: 1,
            strip_worlds: 0,
            seed,
        }
    }

    fn open_fresh(dir: &Path) -> (Journal, ReplaySummary) {
        Journal::open(dir, JournalSync::Always, DEFAULT_SEGMENT_BYTES).unwrap()
    }

    #[test]
    fn lifecycle_round_trips_through_replay() {
        let dir = unique_dir("roundtrip");
        {
            let (mut j, summary) = open_fresh(&dir);
            assert!(summary.jobs.is_empty());
            let a = j.accepted(&obf_spec(1), Some(5000));
            let b = j.accepted(&obf_spec(2), None);
            let c = j.accepted(
                &JobSpec::Check {
                    graph: "0 1 0.5\n".into(),
                    k: 2,
                    epsilon: 0.0,
                    tolerance: 1,
                },
                None,
            );
            j.started(a);
            j.checkpoint(a, "cp-1");
            j.checkpoint(a, "cp-2");
            j.completed(b, "key-b", Some("{\"x\":1}"));
            assert_eq!((a, b, c), (0, 1, 2));
        }
        let (j, summary) = open_fresh(&dir);
        assert_eq!(summary.records_dropped, 0);
        assert_eq!(summary.jobs.len(), 2, "b completed, a and c still open");
        assert_eq!(summary.jobs[0].seq, 0);
        assert_eq!(summary.jobs[0].timeout_ms, Some(5000));
        assert_eq!(summary.jobs[0].checkpoint.as_deref(), Some("cp-2"));
        assert_eq!(summary.jobs[1].seq, 2);
        assert!(summary.jobs[1].checkpoint.is_none());
        assert_eq!(
            summary.completed,
            vec![("key-b".to_string(), "{\"x\":1}".to_string())]
        );
        // Replayed specs decode to the same cache key (same computation).
        assert_eq!(summary.jobs[0].spec.cache_key(), obf_spec(1).cache_key());
        // Sequence numbers continue past everything seen.
        assert_eq!(j.stats().open_jobs, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn new_sequence_numbers_never_collide_after_replay() {
        let dir = unique_dir("seq");
        {
            let (mut j, _) = open_fresh(&dir);
            j.accepted(&obf_spec(1), None);
            j.accepted(&obf_spec(2), None);
        }
        let (mut j, summary) = open_fresh(&dir);
        let next = j.accepted(&obf_spec(3), None);
        assert!(summary.jobs.iter().all(|job| job.seq != next));
        assert_eq!(next, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_at_the_byte_threshold() {
        let dir = unique_dir("rotate");
        let (mut j, _) = Journal::open(&dir, JournalSync::Always, 4096).unwrap();
        for i in 0..40 {
            j.accepted(&obf_spec(i), None);
        }
        let stats = j.stats();
        assert!(stats.segments > 1, "expected rotation, got {stats:?}");
        drop(j);
        let (_, summary) = open_fresh(&dir);
        assert_eq!(summary.jobs.len(), 40);
        assert_eq!(summary.records_dropped, 0);
        // Order survives rotation.
        let keys: Vec<String> = summary.jobs.iter().map(|r| r.spec.cache_key()).collect();
        let want: Vec<String> = (0..40).map(|i| obf_spec(i).cache_key()).collect();
        assert_eq!(keys, want);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_at_every_offset_never_panics() {
        let dir = unique_dir("truncate");
        {
            let (mut j, _) = open_fresh(&dir);
            let a = j.accepted(&obf_spec(1), None);
            j.checkpoint(a, "cp");
            j.completed(a, "k", Some("{}"));
        }
        let seg = segment_files(&dir).unwrap()[0].1.clone();
        let full = fs::read(&seg).unwrap();
        // Offsets that fall exactly between records: a cut there is a
        // clean (shorter) journal, not corruption.
        let mut boundaries = vec![0usize];
        {
            let mut pos = 0usize;
            while pos + HEADER_BYTES <= full.len() {
                let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
                pos += HEADER_BYTES + len;
                boundaries.push(pos);
            }
        }
        for cut in 0..full.len() {
            fs::write(&seg, &full[..cut]).unwrap();
            let (_, summary) = open_fresh(&dir);
            // Whatever survives is a valid prefix; nothing panics, and a
            // mid-record cut is detected and counted.
            if !boundaries.contains(&cut) {
                assert!(summary.records_dropped >= 1, "cut={cut}");
            }
            // Remove the scratch segment the open created.
            for (seg_idx, path) in segment_files(&dir).unwrap() {
                if seg_idx != 0 {
                    fs::remove_file(path).unwrap();
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_are_dropped_not_panicked() {
        let dir = unique_dir("bitflip");
        {
            let (mut j, _) = open_fresh(&dir);
            let a = j.accepted(&obf_spec(1), None);
            j.completed(a, "k", Some("{\"y\":2}"));
        }
        let seg = segment_files(&dir).unwrap()[0].1.clone();
        let full = fs::read(&seg).unwrap();
        // Flip one bit at a sweep of offsets (every byte is too slow with
        // a fresh replay per flip; stride covers headers and payloads).
        for offset in (0..full.len()).step_by(7) {
            let mut corrupt = full.clone();
            corrupt[offset] ^= 0x10;
            fs::write(&seg, &corrupt).unwrap();
            let (_, summary) = open_fresh(&dir);
            assert!(
                summary.records_dropped >= 1 || summary.records_read >= 1,
                "offset={offset}"
            );
            for (seg_idx, path) in segment_files(&dir).unwrap() {
                if seg_idx != 0 {
                    fs::remove_file(path).unwrap();
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn valid_checksum_bad_payload_is_skipped_not_fatal() {
        let dir = unique_dir("semantic");
        {
            let (mut j, _) = open_fresh(&dir);
            // A frame whose checksum passes but whose payload is garbage
            // JSON: later records must still replay.
            j.append("this is not json");
            j.accepted(&obf_spec(9), None);
        }
        let (_, summary) = open_fresh(&dir);
        assert_eq!(summary.records_dropped, 1);
        assert_eq!(summary.jobs.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_unknown_files_are_tolerated() {
        let dir = unique_dir("empty");
        fs::create_dir_all(&dir).unwrap();
        fs::write(segment_path(&dir, 3), b"").unwrap();
        fs::write(dir.join("notes.txt"), b"ignored").unwrap();
        let (j, summary) = open_fresh(&dir);
        assert_eq!(summary.records_dropped, 0);
        assert!(summary.jobs.is_empty());
        // New segment opens past the stray index.
        assert_eq!(j.seg_index, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_for_unknown_seq_still_rehydrates_cache() {
        let dir = unique_dir("selfcontained");
        {
            let (mut j, _) = open_fresh(&dir);
            j.completed(77, "orphan-key", Some("{\"z\":3}"));
        }
        let (_, summary) = open_fresh(&dir);
        assert_eq!(
            summary.completed,
            vec![("orphan-key".to_string(), "{\"z\":3}".to_string())]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_only_fully_terminal_segments() {
        let dir = unique_dir("compact");
        let (mut j, _) = Journal::open(&dir, JournalSync::Always, 4096).unwrap();
        let mut seqs = Vec::new();
        for i in 0..30 {
            seqs.push(j.accepted(&obf_spec(i), None));
        }
        assert!(j.stats().segments > 2);
        // Complete everything except the last accepted job: every segment
        // before the one holding its accepted record is deletable.
        let keep = *seqs.last().unwrap();
        let keep_seg = *j.open_jobs.get(&keep).unwrap();
        for &s in &seqs[..seqs.len() - 1] {
            j.completed(s, "k", None);
        }
        let removed = j.compact();
        assert!(removed >= 1);
        let remaining = segment_files(&dir).unwrap();
        assert!(remaining.iter().all(|(idx, _)| *idx >= keep_seg));
        // Replay still finds the open job.
        drop(j);
        let (_, summary) = open_fresh(&dir);
        assert_eq!(summary.jobs.len(), 1);
        assert_eq!(summary.jobs[0].seq, keep);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_after_all_jobs_complete_leaves_no_old_segments() {
        let dir = unique_dir("compact-clean");
        let (mut j, _) = Journal::open(&dir, JournalSync::Always, 4096).unwrap();
        for i in 0..30 {
            let s = j.accepted(&obf_spec(i), None);
            j.completed(s, "k", None);
        }
        j.compact();
        let remaining = segment_files(&dir).unwrap();
        assert!(
            remaining.iter().all(|(idx, _)| *idx == j.seg_index),
            "only the live segment remains: {remaining:?}"
        );
        drop(j);
        let (_, summary) = open_fresh(&dir);
        assert!(summary.jobs.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interval_mode_defers_syncs_to_maybe_sync() {
        let dir = unique_dir("interval");
        let (mut j, _) = Journal::open(&dir, JournalSync::Interval, DEFAULT_SEGMENT_BYTES).unwrap();
        j.accepted(&obf_spec(1), None);
        assert_eq!(j.stats().syncs, 0, "interval mode must not sync inline");
        j.sync_now();
        assert_eq!(j.stats().syncs, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_mode_parses() {
        assert_eq!("always".parse::<JournalSync>(), Ok(JournalSync::Always));
        assert_eq!("interval".parse::<JournalSync>(), Ok(JournalSync::Interval));
        assert!("sometimes".parse::<JournalSync>().is_err());
    }

    #[test]
    fn spec_encoding_round_trips_every_variant() {
        let specs = [
            obf_spec(7),
            JobSpec::Check {
                graph: "0 1 0.5\n".into(),
                k: 3,
                epsilon: 0.25,
                tolerance: 2,
            },
            JobSpec::Reliability {
                graph: "0 1 0.5\n1 2 0.5\n".into(),
                worlds: 77,
                pairs: 11,
                threads: 2,
                seed: 123,
            },
        ];
        for spec in specs {
            let encoded = encode_spec(&spec);
            let record = Json::parse(&format!("{{\"spec\":{encoded}}}")).unwrap();
            let decoded = decode_spec(&record).unwrap();
            assert_eq!(decoded.cache_key(), spec.cache_key());
            assert_eq!(decoded.op(), spec.op());
        }
    }
}
