//! C10K soak driver: one process drives thousands of concurrent
//! loopback connections against a chameleond poll reactor and verifies
//! every reply **byte-for-byte** against locally computed results.
//!
//! The client mix deliberately mirrors production abuse, seeded and
//! deterministic (connection index → behaviour, so a failing run replays
//! exactly):
//!
//! * **pipelined** (40%) — every job plus one id-tagged junk line written
//!   in a single burst before any reply is read;
//! * **batch** (30%) — all jobs as one `batch` request line (one queue
//!   slot server-side, replies under derived `id#index` ids);
//! * **single** (15%) — strict request→reply lockstep;
//! * **slowloris** (10%) — one request dribbled in 7-byte fragments
//!   across hundreds of poll ticks;
//! * **abrupt-close** (5%) — half a request line, then the socket
//!   vanishes.
//!
//! Verification: each job's expected `result` object is computed in this
//! process via the same [`chameleon_server::JobSpec::execute`] path the
//! CLI uses, and every server reply — including reassembled chunked
//! responses — must match it byte-for-byte. `queue_full` rejections are
//! retried (that is backpressure, not failure); any payload mismatch,
//! missing reply, or unexpected disconnect fails the run (exit 1).
//!
//! The whole client side is one nonblocking event loop over the same
//! [`chameleon_server::reactor::PollSet`] the daemon uses, so thousands
//! of concurrent connections cost thousands of sockets, not threads.
//!
//! Usage:
//!   c10k_soak [--connections 2000] [--addr host:port] [--seed 2026]
//!             [--out c10k_metrics.json] [--deadline-s 180]
//!             [--workers 2] [--queue-depth 4096] [--shutdown]
//!
//! Without `--addr` a server is spawned in-process (and always shut down
//! at the end); with `--addr` an external chameleond is targeted and
//! `--shutdown` controls whether the soak sends the final shutdown op.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

use chameleon_core::CancelToken;
use chameleon_obs::json::{self, Json};
use chameleon_server::reactor::{PollSet, POLLIN, POLLOUT};
use chameleon_server::{parse_request, request_once, Request, Server, ServerConfig};

/// New connections opened per event-loop pass: ramps the storm up fast
/// without a thundering-herd connect burst against the accept backlog.
const OPEN_PER_PASS: usize = 64;
/// Slowloris fragment size and inter-fragment pacing. Small enough that
/// a request spans hundreds of poll ticks, fast enough to finish far
/// inside the server's read deadline.
const SLOWLORIS_FRAG: usize = 7;
const SLOWLORIS_DELAY: Duration = Duration::from_millis(4);
/// Cap on `queue_full` retries for one request id before the run fails.
const MAX_RETRIES: u32 = 200;

/// Deterministic soak graph: a ring plus every-third-node chords with
/// xorshift-derived probabilities. No dataset crate (bins cannot see
/// dev-dependencies); the structure only needs to be nontrivial and
/// reproducible from the seed.
fn graph_text(nodes: usize, seed: u64) -> String {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut s = format!("nodes {nodes}\n");
    for i in 0..nodes {
        let p = 0.25 + (next() % 500) as f64 / 1000.0;
        let _ = writeln!(s, "{} {} {:.3}", i, (i + 1) % nodes, p);
    }
    for i in (0..nodes.saturating_sub(2)).step_by(3) {
        let p = 0.25 + (next() % 500) as f64 / 1000.0;
        let _ = writeln!(s, "{} {} {:.3}", i, i + 2, p);
    }
    s
}

/// The soak's job bodies (no `id` field — ids are spliced per client).
/// Cheap real work with distinct cache keys; the last job's result is
/// large enough that its `chunk_bytes` request forces chunked framing.
fn job_bodies(seed: u64) -> Vec<String> {
    let graph = json::string(&graph_text(30, seed));
    let mut bodies = Vec::new();
    for k in 2..=5u64 {
        bodies.push(format!("{{\"op\":\"check\",\"graph\":{graph},\"k\":{k}}}"));
    }
    for s in 5..=8u64 {
        bodies.push(format!(
            "{{\"op\":\"reliability\",\"graph\":{graph},\"worlds\":40,\"pairs\":10,\
             \"seed\":{s},\"threads\":1}}"
        ));
    }
    // The obfuscate result embeds the anonymized graph's edge-list text,
    // comfortably past CHUNK_FLOOR — its `chunk_bytes` request makes every
    // client kind exercise chunked framing and reassembly.
    bodies.push(format!(
        "{{\"op\":\"obfuscate\",\"graph\":{graph},\"k\":2,\"epsilon\":0.3,\
         \"method\":\"RSME\",\"worlds\":30,\"trials\":3,\"seed\":11,\"threads\":1,\
         \"chunk_bytes\":64}}"
    ));
    bodies
}

/// Splices `"id":...` into a job body right after the opening brace.
fn with_id(body: &str, id: &str) -> String {
    format!("{{\"id\":{},{}", json::string(id), &body[1..])
}

/// What a given request id must come back as.
enum Want {
    /// Canonical render of the `result` object.
    Result(usize),
    /// A structured error with this `code`.
    Code(&'static str),
}

struct Expect {
    /// Single-request line (with id) used to re-submit on `queue_full`.
    line: String,
    want: Want,
    retries: u32,
}

/// One pending write: `bytes` go out once `after_replies` replies have
/// arrived on this connection and `delay` has elapsed since the previous
/// step finished.
struct Step {
    bytes: Vec<u8>,
    after_replies: usize,
    delay: Duration,
}

struct Conn {
    stream: TcpStream,
    steps: Vec<Step>,
    step: usize,
    step_written: usize,
    next_write_at: Instant,
    close_after_write: bool,
    expect: HashMap<String, Expect>,
    replies_needed: usize,
    replies_got: usize,
    rbuf: Vec<u8>,
    /// Partially reassembled chunked responses, keyed by id.
    chunks: HashMap<String, String>,
}

impl Conn {
    fn write_pending(&self) -> bool {
        self.step < self.steps.len()
    }

    fn write_gated_open(&self, now: Instant) -> bool {
        self.write_pending()
            && self.replies_got >= self.steps[self.step].after_replies
            && now >= self.next_write_at
    }

    fn done(&self) -> bool {
        !self.write_pending() && self.replies_got >= self.replies_needed
    }
}

struct Totals {
    opened: usize,
    completed: usize,
    replies_verified: u64,
    chunk_frames: u64,
    retries: u64,
    failures: Vec<String>,
}

impl Totals {
    fn fail(&mut self, msg: String) {
        if self.failures.len() < 16 {
            self.failures.push(msg);
        } else if self.failures.len() == 16 {
            self.failures.push("... further failures suppressed".into());
        }
    }
}

/// Builds the deterministic client for connection `idx`.
fn build_conn(idx: usize, stream: TcpStream, bodies: &[String], now: Instant) -> Conn {
    let mut conn = Conn {
        stream,
        steps: Vec::new(),
        step: 0,
        step_written: 0,
        next_write_at: now,
        close_after_write: false,
        expect: HashMap::new(),
        replies_needed: 0,
        replies_got: 0,
        rbuf: Vec::new(),
        chunks: HashMap::new(),
    };
    let kind = idx % 20;
    let expect_ok = |conn: &mut Conn, id: String, job: usize| {
        conn.expect.insert(
            id.clone(),
            Expect {
                line: with_id(&bodies[job], &id),
                want: Want::Result(job),
                retries: 0,
            },
        );
        conn.replies_needed += 1;
    };
    match kind {
        // Pipelined burst: every job plus one junk line, one write.
        0..=7 => {
            let mut burst = String::new();
            for (job, body) in bodies.iter().enumerate() {
                let id = format!("c{idx}.{job}");
                let _ = writeln!(burst, "{}", with_id(body, &id));
                expect_ok(&mut conn, id, job);
            }
            let junk_id = format!("c{idx}.junk");
            let _ = writeln!(
                burst,
                "{{\"op\":\"bogus\",\"id\":{}}}",
                json::string(&junk_id)
            );
            conn.expect.insert(
                junk_id,
                Expect {
                    line: String::new(),
                    want: Want::Code("bad_request"),
                    retries: 0,
                },
            );
            conn.replies_needed += 1;
            conn.steps.push(Step {
                bytes: burst.into_bytes(),
                after_replies: 0,
                delay: Duration::ZERO,
            });
        }
        // Batch: all jobs as one request line, derived element ids.
        8..=13 => {
            let mut line = format!("{{\"op\":\"batch\",\"id\":\"c{idx}\",\"requests\":[");
            for (job, body) in bodies.iter().enumerate() {
                if job > 0 {
                    line.push(',');
                }
                line.push_str(body);
                expect_ok(&mut conn, format!("c{idx}#{job}"), job);
            }
            line.push_str("]}\n");
            conn.steps.push(Step {
                bytes: line.into_bytes(),
                after_replies: 0,
                delay: Duration::ZERO,
            });
        }
        // Lockstep singles: three jobs, each gated on the previous reply.
        14..=16 => {
            for n in 0..3 {
                let job = (idx + n) % bodies.len();
                let id = format!("c{idx}.s{n}");
                let mut line = with_id(&bodies[job], &id);
                line.push('\n');
                expect_ok(&mut conn, id, job);
                conn.steps.push(Step {
                    bytes: line.into_bytes(),
                    after_replies: n,
                    delay: Duration::ZERO,
                });
            }
        }
        // Slowloris: one request dribbled in tiny paced fragments.
        17 | 18 => {
            let job = idx % bodies.len();
            let id = format!("c{idx}.slow");
            let mut line = with_id(&bodies[job], &id);
            line.push('\n');
            expect_ok(&mut conn, id, job);
            for frag in line.as_bytes().chunks(SLOWLORIS_FRAG) {
                conn.steps.push(Step {
                    bytes: frag.to_vec(),
                    after_replies: 0,
                    delay: SLOWLORIS_DELAY,
                });
            }
        }
        // Abrupt close: half a request line, then vanish mid-frame.
        _ => {
            let half = bodies[0].len() / 2;
            conn.steps.push(Step {
                bytes: bodies[0].as_bytes()[..half].to_vec(),
                after_replies: 0,
                delay: Duration::ZERO,
            });
            conn.close_after_write = true;
        }
    }
    conn
}

/// Handles one complete reply line; returns false on verification failure.
fn handle_line(conn: &mut Conn, line: &str, expected: &[String], totals: &mut Totals) {
    let v = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            totals.fail(format!("unparsable reply {line:?}: {e}"));
            conn.replies_got += 1;
            return;
        }
    };
    // Chunk frame: accumulate; a `last` frame reassembles into the full
    // unchunked reply line and is handled like any other.
    if v.get("status").and_then(Json::as_str) == Some("chunk") {
        totals.chunk_frames += 1;
        let Some(id) = v.get("id").and_then(Json::as_str).map(String::from) else {
            totals.fail(format!("chunk frame without id: {line}"));
            return;
        };
        let data = v.get("data").and_then(Json::as_str).unwrap_or_default();
        conn.chunks.entry(id.clone()).or_default().push_str(data);
        if v.get("last").and_then(Json::as_bool) == Some(true) {
            let full = conn.chunks.remove(&id).unwrap_or_default();
            handle_line(conn, &full, expected, totals);
        }
        return;
    }
    let Some(id) = v.get("id").and_then(Json::as_str).map(String::from) else {
        totals.fail(format!("reply without id: {line}"));
        conn.replies_got += 1;
        return;
    };
    let Some(exp) = conn.expect.get_mut(&id) else {
        totals.fail(format!("reply for unknown id {id:?}: {line}"));
        conn.replies_got += 1;
        return;
    };
    let status = v.get("status").and_then(Json::as_str).unwrap_or_default();
    // Backpressure is not failure: re-submit this id after the hinted
    // delay, as a real client would.
    if status == "error" && v.get("retry_after_ms").is_some() && !exp.line.is_empty() {
        exp.retries += 1;
        if exp.retries > MAX_RETRIES {
            totals.fail(format!("id {id:?} exceeded {MAX_RETRIES} retries"));
            conn.replies_got += 1;
            return;
        }
        totals.retries += 1;
        let retry_ms = v.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(50);
        let mut bytes = exp.line.clone().into_bytes();
        bytes.push(b'\n');
        let after = conn.replies_got;
        conn.steps.push(Step {
            bytes,
            after_replies: after,
            delay: Duration::from_millis(retry_ms.min(500)),
        });
        return;
    }
    match &exp.want {
        Want::Result(job) => {
            if status != "ok" {
                totals.fail(format!("id {id:?}: expected ok, got {line}"));
            } else {
                let got = v.get("result").map(Json::render).unwrap_or_default();
                if got != expected[*job] {
                    totals.fail(format!(
                        "id {id:?}: result diverged from local compute\n  local:  {}\n  server: {got}",
                        expected[*job]
                    ));
                } else {
                    totals.replies_verified += 1;
                }
            }
        }
        Want::Code(code) => {
            let got_code = v.get("code").and_then(Json::as_str).unwrap_or_default();
            if status != "error" || got_code != *code {
                totals.fail(format!("id {id:?}: expected error code {code}, got {line}"));
            } else {
                totals.replies_verified += 1;
            }
        }
    }
    conn.replies_got += 1;
}

struct Args(Vec<String>);

impl Args {
    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.0
            .iter()
            .position(|a| a == &format!("--{name}"))
            .and_then(|i| self.0.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn get_opt(&self, name: &str) -> Option<String> {
        self.0
            .iter()
            .position(|a| a == &format!("--{name}"))
            .and_then(|i| self.0.get(i + 1))
            .cloned()
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == &format!("--{name}"))
    }
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    let connections: usize = args.get("connections", 2000);
    let seed: u64 = args.get("seed", 2026);
    let out: String = args.get("out", "c10k_metrics.json".to_string());
    let deadline = Duration::from_secs(args.get("deadline-s", 180));
    let external = args.get_opt("addr");
    let shutdown = external.is_none() || args.has("shutdown");

    // Local ground truth: the same execute path the CLI uses, rendered
    // through the same canonical encoder.
    let bodies = job_bodies(seed);
    let cancel = CancelToken::new();
    let expected: Vec<String> = bodies
        .iter()
        .map(|body| {
            let req = parse_request(body).expect("soak job body must parse");
            let Request::Job(job) = req else {
                panic!("soak job body is not a job request")
            };
            let result = job.spec.execute(&cancel).expect("local execute");
            Json::parse(&result).expect("local result parses").render()
        })
        .collect();

    let (handle, addr) = match &external {
        Some(addr) => (None, addr.clone()),
        None => {
            let handle = Server::spawn(ServerConfig {
                workers: args.get("workers", 2),
                queue_depth: args.get("queue-depth", 4096),
                max_connections: connections + 64,
                ..ServerConfig::default()
            })
            .expect("spawn in-process chameleond");
            let addr = handle.addr().to_string();
            (Some(handle), addr)
        }
    };

    // Prime the result cache so the storm measures the connection layer,
    // not 2000 redundant first computations of the same eight jobs.
    for body in &bodies {
        let resp = request_once(&addr, body).expect("prime job");
        assert!(resp.contains("\"status\":\"ok\""), "prime failed: {resp}");
    }

    eprintln!("c10k_soak: {connections} connections against {addr}");
    let begun = Instant::now();
    let mut totals = Totals {
        opened: 0,
        completed: 0,
        replies_verified: 0,
        chunk_frames: 0,
        retries: 0,
        failures: Vec::new(),
    };
    let mut conns: Vec<Option<Conn>> = Vec::with_capacity(connections);
    let mut poll = PollSet::new();
    let mut slots: Vec<(usize, usize)> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut live = 0usize;

    while live > 0 || totals.opened < connections {
        let now = Instant::now();
        if now.duration_since(begun) > deadline {
            totals.fail(format!(
                "soak deadline exceeded with {} of {} connections incomplete",
                totals.opened - totals.completed,
                connections
            ));
            break;
        }
        // Ramp: open a bounded number of new connections per pass.
        for _ in 0..OPEN_PER_PASS {
            if totals.opened >= connections {
                break;
            }
            let stream = match TcpStream::connect(&addr) {
                Ok(s) => s,
                Err(e) => {
                    totals.fail(format!("connect {} failed: {e}", totals.opened));
                    totals.opened += 1;
                    continue;
                }
            };
            stream.set_nonblocking(true).expect("nonblocking");
            stream.set_nodelay(true).expect("nodelay");
            let conn = build_conn(totals.opened, stream, &bodies, now);
            totals.opened += 1;
            live += 1;
            if let Some(free) = conns.iter().position(Option::is_none) {
                conns[free] = Some(conn);
            } else {
                conns.push(Some(conn));
            }
        }

        poll.clear();
        slots.clear();
        let mut min_delay: Option<Duration> = None;
        for (i, slot) in conns.iter().enumerate() {
            let Some(conn) = slot else { continue };
            let mut events = 0i16;
            if conn.replies_got < conn.replies_needed {
                events |= POLLIN;
            }
            if conn.write_gated_open(now) {
                events |= POLLOUT;
            } else if conn.write_pending() && conn.next_write_at > now {
                let wait = conn.next_write_at - now;
                min_delay = Some(min_delay.map_or(wait, |d| d.min(wait)));
            }
            if events != 0 {
                slots.push((i, poll.register(conn.stream.as_raw_fd(), events)));
            }
        }
        if poll.is_empty() {
            if let Some(d) = min_delay {
                std::thread::sleep(d.min(Duration::from_millis(20)));
            }
            continue;
        }
        let timeout = min_delay.unwrap_or(Duration::from_millis(50));
        poll.poll(Some(timeout.min(Duration::from_millis(50))))
            .expect("client poll");

        for &(i, slot) in &slots {
            let ready_read = poll.revents(slot).readable();
            let ready_write = poll.revents(slot).writable();
            let conn = conns[i].as_mut().expect("registered conn is live");
            // `remove` tears the connection down after both directions are
            // serviced; `clean` marks it a successful completion.
            let mut remove = false;
            let mut clean = false;
            if ready_write && conn.write_gated_open(Instant::now()) {
                let step = &conn.steps[conn.step];
                match (&conn.stream).write(&step.bytes[conn.step_written..]) {
                    Ok(n) => {
                        conn.step_written += n;
                        if conn.step_written >= step.bytes.len() {
                            conn.step += 1;
                            conn.step_written = 0;
                            let delay = conn
                                .steps
                                .get(conn.step)
                                .map_or(Duration::ZERO, |s| s.delay);
                            conn.next_write_at = Instant::now() + delay;
                            if !conn.write_pending() && conn.close_after_write {
                                remove = true;
                                clean = true;
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(e) => {
                        totals.fail(format!("conn write failed: {e}"));
                        remove = true;
                    }
                }
            }
            if ready_read && !remove {
                loop {
                    match (&conn.stream).read(&mut scratch) {
                        Ok(0) => {
                            if conn.replies_got < conn.replies_needed {
                                totals.fail(format!(
                                    "server closed with {} replies outstanding",
                                    conn.replies_needed - conn.replies_got
                                ));
                            } else {
                                clean = true;
                            }
                            remove = true;
                            break;
                        }
                        Ok(n) => {
                            conn.rbuf.extend_from_slice(&scratch[..n]);
                            while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
                                let line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
                                let text =
                                    String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                                handle_line(conn, &text, &expected, &mut totals);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) => {
                            totals.fail(format!("conn read failed: {e}"));
                            remove = true;
                            break;
                        }
                    }
                }
            }
            if !remove && conn.done() {
                remove = true;
                clean = true;
            }
            if remove {
                conns[i] = None;
                live -= 1;
                if clean {
                    totals.completed += 1;
                }
            }
        }
    }
    let elapsed = begun.elapsed();
    let _ = live;

    // Final accounting straight from the server, then optional shutdown.
    let status = request_once(&addr, "{\"op\":\"status\"}")
        .ok()
        .and_then(|line| Json::parse(&line).ok())
        .and_then(|v| v.get("result").map(Json::render))
        .unwrap_or_else(|| "null".to_string());
    if shutdown {
        let _ = request_once(&addr, "{\"op\":\"shutdown\"}");
    }
    if let Some(handle) = handle {
        let _ = handle.join();
    }

    let mut doc = String::from("{\n");
    let _ = writeln!(doc, "  \"connections\": {},", connections);
    let _ = writeln!(doc, "  \"completed\": {},", totals.completed);
    let _ = writeln!(doc, "  \"replies_verified\": {},", totals.replies_verified);
    let _ = writeln!(doc, "  \"chunk_frames\": {},", totals.chunk_frames);
    let _ = writeln!(doc, "  \"queue_full_retries\": {},", totals.retries);
    let _ = writeln!(doc, "  \"failures\": {},", totals.failures.len());
    let _ = writeln!(doc, "  \"elapsed_s\": {:.3},", elapsed.as_secs_f64());
    let _ = writeln!(doc, "  \"server_status\": {status}");
    doc.push_str("}\n");
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("warning: could not write {out}: {e}");
    }
    eprintln!(
        "c10k_soak: {} conns completed, {} replies verified ({} chunk frames, {} retries) \
         in {:.2}s",
        totals.completed,
        totals.replies_verified,
        totals.chunk_frames,
        totals.retries,
        elapsed.as_secs_f64()
    );
    if !totals.failures.is_empty() {
        eprintln!("c10k_soak FAILED:");
        for f in &totals.failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("c10k_soak passed");
}
