//! Standalone gateway binary. `chameleon gate` (the CLI subcommand) is
//! the same runtime with the workspace-wide flag conventions; this thin
//! entry point exists so the gateway tier can be deployed without the
//! full CLI.

use chameleon_server::{Gateway, GatewayConfig};

const USAGE: &str = "\
chameleon-gate - consistent-hashing gateway for chameleond backends

USAGE:
    chameleon_gate --backends <addr,addr,...>
                   [--host <addr>] [--port <port>] [--forwarders <n>]
                   [--queue-depth <n>] [--replicas <n>]
                   [--health-interval-ms <ms>] [--io-retries <n>]
                   [--retry-base-ms <ms>] [--retry-seed <n>]
                   [--max-request-bytes <n>] [--max-connections <n>]
                   [--max-batch <n>] [--metrics <path>]

OPTIONS:
    --backends <list>   Comma-separated chameleond addresses (required)
    --host <addr>       Bind address           [default: 127.0.0.1]
    --port <port>       Bind port (0 = any)    [default: 7789]
    --forwarders <n>    Forwarder threads (0 = 2x backends, min 4)
                        [default: 0]
    --queue-depth <n>   Bounded forward queue size [default: 64]
    --replicas <n>      Virtual nodes per backend on the hash ring
                        [default: 64]
    --health-interval-ms <ms>  Backend status-probe interval; 0 disables
                        the health thread      [default: 500]
    --io-retries <n>    Connect/I-O retries per backend before it is
                        declared dead and the job re-driven [default: 3]
    --retry-base-ms <ms>  Base backoff delay for I/O retries [default: 50]
    --retry-seed <n>    Seed for the jittered backoff schedule [default: 0]
    --max-request-bytes <n>   Request-line byte cap  [default: 16777216]
    --max-connections <n>     Open-connection cap    [default: 256]
    --max-batch <n>     Elements allowed in one batch request; mirror the
                        backends' --max-batch  [default: 1024]
    --metrics <path>    Write final metrics snapshot here on shutdown

Jobs are routed by the FNV-1a digest of their graph text over a
consistent-hash ring, so repeated work on one graph hits one backend's
result cache. A backend that fails past the retry budget is marked dead
and its jobs re-driven to the ring successor; results are byte-identical
regardless of placement (DESIGN.md \u{a7}13).
Send {\"op\":\"shutdown\"} for a graceful drain-and-exit (the gateway
only; backends keep running).
";

fn parse_args(args: &[String]) -> Result<GatewayConfig, String> {
    let mut host = "127.0.0.1".to_string();
    let mut port = 7789u16;
    let mut config = GatewayConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument {flag:?}"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        let bad = |_| format!("invalid value {value:?} for --{name}");
        match name {
            "backends" => {
                config.backends = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "host" => host = value.clone(),
            "port" => port = value.parse().map_err(bad)?,
            "forwarders" => config.forwarders = value.parse().map_err(bad)?,
            "queue-depth" => config.queue_depth = value.parse().map_err(bad)?,
            "replicas" => config.replicas = value.parse().map_err(bad)?,
            "health-interval-ms" => config.health_interval_ms = value.parse().map_err(bad)?,
            "io-retries" => config.retry.io_retries = value.parse().map_err(bad)?,
            "retry-base-ms" => config.retry.base_delay_ms = value.parse().map_err(bad)?,
            "retry-seed" => config.retry.seed = value.parse().map_err(bad)?,
            "max-request-bytes" => config.max_request_bytes = value.parse().map_err(bad)?,
            "max-connections" => config.max_connections = value.parse().map_err(bad)?,
            "max-batch" => config.max_batch = value.parse().map_err(bad)?,
            "metrics" => config.metrics_path = Some(value.clone()),
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    if config.backends.is_empty() {
        return Err("--backends requires at least one address".into());
    }
    config.addr = format!("{host}:{port}");
    Ok(config)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `chameleon_gate --help` for usage");
            std::process::exit(2);
        }
    };
    let gateway = match Gateway::bind(config) {
        Ok(gateway) => gateway,
        Err(e) => {
            eprintln!("error: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("chameleon-gate listening on {}", gateway.local_addr());
    match gateway.run() {
        Ok(report) => {
            eprintln!(
                "chameleon-gate: drained and stopped ({} forwarded, {} redriven, \
                 {} no-backend errors, {} rejected)",
                report.forwarded, report.redriven, report.no_backend_errors, report.rejected,
            );
        }
        Err(e) => {
            eprintln!("error: gateway failed: {e}");
            std::process::exit(1);
        }
    }
}
