//! Standalone daemon binary. `chameleon serve` (the CLI subcommand) is the
//! same runtime with the workspace-wide flag conventions; this thin entry
//! point exists so the service can be deployed without the full CLI.

use chameleon_server::{JournalSync, Server, ServerConfig};

const USAGE: &str = "\
chameleond - Chameleon anonymization job service

USAGE:
    chameleond [--host <addr>] [--port <port>] [--workers <n>]
               [--queue-depth <n>] [--cache <entries>]
               [--timeout-ms <ms>] [--metrics <path>]
               [--max-request-bytes <n>] [--read-timeout-ms <ms>]
               [--max-connections <n>] [--max-batch <n>]
               [--journal-dir <dir>] [--journal-sync <always|interval>]
               [--journal-segment-bytes <n>] [--resume]

OPTIONS:
    --host <addr>       Bind address           [default: 127.0.0.1]
    --port <port>       Bind port (0 = any)    [default: 7788]
    --workers <n>       Worker threads (0 = all cores)  [default: 0]
    --queue-depth <n>   Bounded job queue size [default: 64]
    --cache <entries>   Result cache capacity  [default: 256]
    --timeout-ms <ms>   Default per-job budget [default: 300000]
    --metrics <path>    Write final metrics snapshot here on shutdown
    --max-request-bytes <n>   Request-line byte cap  [default: 16777216]
    --read-timeout-ms <ms>    Per-line read deadline once the first byte
                              arrived; 0 disables   [default: 30000]
    --max-connections <n>     Open-connection cap; 0 = unlimited
                              [default: 256]
    --max-batch <n>           Elements allowed in one batch request;
                              0 = unlimited    [default: 1024]
    --journal-dir <dir>       Write-ahead job journal directory; enables
                              durable jobs (DESIGN.md \u{a7}11)
    --journal-sync <policy>   Journal fsync policy: always | interval
                              [default: interval]
    --journal-segment-bytes <n>  Journal segment rotation threshold
                              [default: 8388608]
    --resume                  Re-enqueue incomplete journaled jobs at
                              startup instead of cancelling them

The wire protocol is newline-delimited JSON (pipelined; supports batch
submission and chunked responses); see DESIGN.md \u{a7}7 and \u{a7}9.
Send {\"op\":\"shutdown\"} for a graceful drain-and-exit.
";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut host = "127.0.0.1".to_string();
    let mut port = 7788u16;
    let mut config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument {flag:?}"));
        };
        // Valueless flags must not consume the next argument.
        if name == "resume" {
            config.resume = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        let bad = |_| format!("invalid value {value:?} for --{name}");
        match name {
            "host" => host = value.clone(),
            "port" => port = value.parse().map_err(bad)?,
            "workers" => config.workers = value.parse().map_err(bad)?,
            "queue-depth" => config.queue_depth = value.parse().map_err(bad)?,
            "cache" => config.cache_capacity = value.parse().map_err(bad)?,
            "timeout-ms" => config.default_timeout_ms = value.parse().map_err(bad)?,
            "metrics" => config.metrics_path = Some(value.clone()),
            "max-request-bytes" => config.max_request_bytes = value.parse().map_err(bad)?,
            "read-timeout-ms" => config.read_timeout_ms = value.parse().map_err(bad)?,
            "max-connections" => config.max_connections = value.parse().map_err(bad)?,
            "max-batch" => config.max_batch = value.parse().map_err(bad)?,
            "journal-dir" => config.journal_dir = Some(value.clone()),
            "journal-sync" => {
                config.journal_sync = value
                    .parse::<JournalSync>()
                    .map_err(|_| format!("invalid value {value:?} for --journal-sync"))?;
            }
            "journal-segment-bytes" => config.journal_segment_bytes = value.parse().map_err(bad)?,
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    config.addr = format!("{host}:{port}");
    Ok(config)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `chameleond --help` for usage");
            std::process::exit(2);
        }
    };
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("chameleond listening on {}", server.local_addr());
    match server.run() {
        Ok(report) => {
            eprintln!(
                "chameleond: drained and stopped ({} completed, {} failed, {} rejected, \
                 {} timed out, {} panicked, {} cancelled)",
                report.jobs_completed,
                report.jobs_failed,
                report.jobs_rejected,
                report.jobs_timed_out,
                report.jobs_panicked,
                report.jobs_cancelled,
            );
        }
        Err(e) => {
            eprintln!("error: server failed: {e}");
            std::process::exit(1);
        }
    }
}
