//! Job specifications: what a request asks the worker pool to compute,
//! how the answer is cached, and how it is rendered.
//!
//! Every job carries its graph inline as edge-list text (the format of
//! `chameleon_ugraph::io`), is parameterized exactly like the matching CLI
//! subcommand (same defaults, applied before cache-key derivation), and
//! renders its result as a deterministic JSON object with a fixed field
//! order — the unit of byte-identical replay for cache hits.

use crate::cache::fnv1a64;
use chameleon_baseline::RepAn;
use chameleon_core::{
    anonymity_check, anonymity_check_tolerant, AdversaryKnowledge, CancelToken, Chameleon,
    ChameleonConfig, ChameleonError, CheckpointHook, Method, SearchCheckpoint,
};
use chameleon_obs::json;
use chameleon_reliability::{sample_distinct_pairs, WorldEnsemble};
use chameleon_stats::{parallel, SeedSequence};
use chameleon_ugraph::builder::DedupPolicy;
use chameleon_ugraph::{io, UncertainGraph};
use std::fmt::Write as _;
use std::sync::Arc;

/// Which anonymizer an `obfuscate` job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnonymizeMethod {
    /// A Chameleon variant (RSME / RS / ME).
    Chameleon(Method),
    /// The Rep-An baseline.
    RepAn,
}

impl AnonymizeMethod {
    /// Canonical uppercase name (used in cache keys and results).
    pub fn name(&self) -> &'static str {
        match self {
            AnonymizeMethod::Chameleon(m) => m.name(),
            AnonymizeMethod::RepAn => "REPAN",
        }
    }

    /// Parses a method name as the CLI does (`REPAN` or a Method variant).
    ///
    /// # Errors
    /// Returns the parse failure for unknown names.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s.eq_ignore_ascii_case("repan") {
            Ok(AnonymizeMethod::RepAn)
        } else {
            s.parse::<Method>().map(AnonymizeMethod::Chameleon)
        }
    }
}

/// A fully parameterized unit of work for the worker pool.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// `(k, ε)`-obfuscate a graph — the daemon twin of `chameleon
    /// anonymize`.
    Obfuscate {
        /// Edge-list text of the input graph.
        graph: String,
        /// Obfuscation level `k`.
        k: usize,
        /// Tolerance ε.
        epsilon: f64,
        /// Anonymizer to run.
        method: AnonymizeMethod,
        /// Monte-Carlo world count.
        worlds: usize,
        /// GenObf trials per σ.
        trials: usize,
        /// Worker threads inside the job (0 = all cores). Not part of the
        /// cache key: results are thread-count invariant.
        threads: usize,
        /// Out-of-core analysis strip in worlds (0 = dense in-RAM
        /// ensembles). Not part of the cache key: streamed results are
        /// bit-identical to dense ones (DESIGN.md §12).
        strip_worlds: usize,
        /// Seed driving all randomness.
        seed: u64,
    },
    /// Audit a graph against its own expected degrees — the daemon twin of
    /// `chameleon check` without `--original`.
    Check {
        /// Edge-list text of the graph to audit.
        graph: String,
        /// Obfuscation level `k`.
        k: usize,
        /// Tolerance ε for the verdict.
        epsilon: f64,
        /// Adversary degree tolerance (0 = exact).
        tolerance: u32,
    },
    /// Estimate two-terminal reliability over a sampled pair set.
    Reliability {
        /// Edge-list text of the graph.
        graph: String,
        /// Monte-Carlo world count.
        worlds: usize,
        /// Number of sampled node pairs.
        pairs: usize,
        /// Worker threads (0 = all cores); excluded from the cache key.
        threads: usize,
        /// Seed for pair sampling and world sampling.
        seed: u64,
    },
}

/// Receives each serialized checkpoint as a search progresses (the
/// journal's `checkpoint` record writer).
pub type CheckpointWriter = Arc<dyn Fn(&str) + Send + Sync>;

/// Durability plumbing for one job execution (DESIGN.md §11): where to
/// persist search checkpoints and what checkpoint to resume from. Only
/// Chameleon `obfuscate` jobs have checkpointable state; the other ops
/// ignore this entirely.
#[derive(Clone, Default)]
pub struct Durability {
    /// Receives each serialized [`SearchCheckpoint`] as the search
    /// progresses (the journal's `checkpoint` record writer).
    pub sink: Option<CheckpointWriter>,
    /// A serialized checkpoint recovered from the journal. Validated
    /// against the live search before use — a stale or foreign checkpoint
    /// is silently dropped (fresh search, always correct).
    pub resume: Option<String>,
}

/// A job's result plus its durability telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutput {
    /// The rendered result JSON (the cacheable replay unit).
    pub result: String,
    /// σ probes replayed from the resume checkpoint instead of
    /// recomputed (0 for fresh runs and non-obfuscate ops).
    pub resumed_probes: u64,
}

/// Why a job produced no result.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The request was malformed (unparsable graph, invalid parameters).
    Invalid(String),
    /// The pipeline ran but failed (e.g. no obfuscation exists).
    Failed(String),
    /// The job's cancellation token fired (deadline exceeded).
    Cancelled,
}

impl JobSpec {
    /// Short operation name (metrics labels, logs).
    pub fn op(&self) -> &'static str {
        match self {
            JobSpec::Obfuscate { .. } => "obfuscate",
            JobSpec::Check { .. } => "check",
            JobSpec::Reliability { .. } => "reliability",
        }
    }

    /// FNV-1a digest of the job's graph text — the gateway's routing key.
    /// Placement by graph digest gives cache affinity: every job on the
    /// same graph lands on the same backend, whose LRU then acts as that
    /// graph's shard of a distributed result cache.
    pub fn graph_digest(&self) -> u64 {
        match self {
            JobSpec::Obfuscate { graph, .. }
            | JobSpec::Check { graph, .. }
            | JobSpec::Reliability { graph, .. } => fnv1a64(graph.as_bytes()),
        }
    }

    /// Content-addressed cache key: operation, FNV-1a digest of the graph
    /// text, and the canonicalized parameters (defaults already applied by
    /// the protocol layer; `threads` deliberately excluded — the PR-1
    /// determinism contract makes results identical at every thread
    /// count, so a hit may serve a request submitted with different
    /// parallelism).
    pub fn cache_key(&self) -> String {
        match self {
            JobSpec::Obfuscate {
                graph,
                k,
                epsilon,
                method,
                worlds,
                trials,
                seed,
                threads: _,
                strip_worlds: _,
            } => format!(
                "obfuscate:{:016x}:k={k}:eps={}:method={}:worlds={worlds}:trials={trials}:seed={seed}",
                fnv1a64(graph.as_bytes()),
                json::number(*epsilon),
                method.name(),
            ),
            JobSpec::Check {
                graph,
                k,
                epsilon,
                tolerance,
            } => format!(
                "check:{:016x}:k={k}:eps={}:tol={tolerance}",
                fnv1a64(graph.as_bytes()),
                json::number(*epsilon),
            ),
            JobSpec::Reliability {
                graph,
                worlds,
                pairs,
                seed,
                threads: _,
            } => format!(
                "reliability:{:016x}:worlds={worlds}:pairs={pairs}:seed={seed}",
                fnv1a64(graph.as_bytes()),
            ),
        }
    }

    /// Runs the job, polling `cancel` cooperatively (between GenObf σ
    /// probes for `obfuscate`; before each heavy stage otherwise).
    ///
    /// # Errors
    /// See [`ExecError`].
    pub fn execute(&self, cancel: &CancelToken) -> Result<String, ExecError> {
        self.execute_durable(cancel, None).map(|out| out.result)
    }

    /// [`JobSpec::execute`] with durability plumbing: Chameleon
    /// `obfuscate` jobs emit checkpoints through `durability.sink` and
    /// resume from `durability.resume` when it matches the live search.
    /// Result bytes are identical with or without durability — the sink
    /// only observes, and a resumed search is bit-identical by the core's
    /// replay contract.
    ///
    /// # Errors
    /// See [`ExecError`].
    pub fn execute_durable(
        &self,
        cancel: &CancelToken,
        durability: Option<&Durability>,
    ) -> Result<ExecOutput, ExecError> {
        if cancel.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        match self {
            JobSpec::Obfuscate {
                graph,
                k,
                epsilon,
                method,
                worlds,
                trials,
                threads,
                strip_worlds,
                seed,
            } => {
                let g = parse_graph(graph)?;
                let mut config = ChameleonConfig {
                    k: *k,
                    epsilon: *epsilon,
                    num_world_samples: *worlds,
                    trials: *trials,
                    num_threads: *threads,
                    strip_worlds: *strip_worlds,
                    ..ChameleonConfig::default()
                };
                config.validate().map_err(ExecError::Invalid)?;
                let mut resumed_probes = 0u64;
                let (out, sigma, eps_hat, calls) = match method {
                    AnonymizeMethod::RepAn => {
                        let r = RepAn::new(config)
                            .anonymize(&g, *seed)
                            .map_err(|e| ExecError::Failed(e.to_string()))?;
                        (r.graph, r.sigma, r.eps_hat, 0usize)
                    }
                    AnonymizeMethod::Chameleon(m) => {
                        if let Some(d) = durability {
                            if let Some(sink) = &d.sink {
                                let sink = Arc::clone(sink);
                                config.checkpoint =
                                    Some(CheckpointHook::new(move |cp: &SearchCheckpoint| {
                                        sink(&cp.to_json())
                                    }));
                            }
                            // A checkpoint that fails to parse or belongs
                            // to a different search is dropped, not fatal:
                            // running fresh is always correct.
                            config.resume_from = d
                                .resume
                                .as_deref()
                                .and_then(|text| SearchCheckpoint::parse(text).ok())
                                .filter(|cp| cp.matches(&g, *m, *seed, &config));
                        }
                        let r = Chameleon::new(config)
                            .anonymize_cancellable(&g, *m, *seed, cancel)
                            .map_err(|e| match e {
                                ChameleonError::Cancelled => ExecError::Cancelled,
                                other => ExecError::Failed(other.to_string()),
                            })?;
                        resumed_probes = r.replayed_probes as u64;
                        (r.graph, r.sigma, r.eps_hat, r.genobf_calls)
                    }
                };
                let text = render_graph(&out)?;
                let mut res = String::with_capacity(text.len() + 160);
                let _ = write!(
                    res,
                    "{{\"sigma\":{},\"eps_hat\":{},\"method\":\"{}\",\"genobf_calls\":{calls},\
                     \"nodes\":{},\"edges\":{},\"graph\":{}}}",
                    json::number(sigma),
                    json::number(eps_hat),
                    method.name(),
                    out.num_nodes(),
                    out.num_edges(),
                    json::string(&text),
                );
                Ok(ExecOutput {
                    result: res,
                    resumed_probes,
                })
            }
            JobSpec::Check {
                graph,
                k,
                epsilon,
                tolerance,
            } => {
                let g = parse_graph(graph)?;
                let knowledge = AdversaryKnowledge::expected_degrees(&g);
                let report = if *tolerance == 0 {
                    anonymity_check(&g, &knowledge, *k)
                } else {
                    anonymity_check_tolerant(&g, &knowledge, *k, *tolerance)
                };
                Ok(ExecOutput {
                    result: format!(
                        "{{\"satisfied\":{},\"eps_hat\":{},\"k\":{k},\"epsilon\":{},\
                         \"unobfuscated\":{},\"nodes\":{}}}",
                        report.satisfies(*epsilon),
                        json::number(report.eps_hat),
                        json::number(*epsilon),
                        report.unobfuscated.len(),
                        g.num_nodes(),
                    ),
                    resumed_probes: 0,
                })
            }
            JobSpec::Reliability {
                graph,
                worlds,
                pairs,
                threads,
                seed,
            } => {
                let g = parse_graph(graph)?;
                if g.num_nodes() < 2 {
                    return Err(ExecError::Invalid(
                        "reliability needs at least 2 nodes".into(),
                    ));
                }
                let threads = parallel::resolve_threads(*threads);
                let seq = SeedSequence::new(*seed);
                let pair_set = sample_distinct_pairs(g.num_nodes(), *pairs, &mut seq.rng("pairs"));
                let ens = WorldEnsemble::sample_seeded(&g, *worlds, seq.derive("worlds"), threads);
                let rel = ens.reliability_many(&pair_set);
                let (mut lo, mut hi, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
                for &r in &rel {
                    lo = lo.min(r);
                    hi = hi.max(r);
                    sum += r;
                }
                let avg = if rel.is_empty() {
                    0.0
                } else {
                    sum / rel.len() as f64
                };
                Ok(ExecOutput {
                    result: format!(
                        "{{\"avg_reliability\":{},\"min_reliability\":{},\"max_reliability\":{},\
                         \"pairs\":{},\"worlds\":{worlds}}}",
                        json::number(avg),
                        json::number(if rel.is_empty() { 0.0 } else { lo }),
                        json::number(if rel.is_empty() { 0.0 } else { hi }),
                        rel.len(),
                    ),
                    resumed_probes: 0,
                })
            }
        }
    }
}

fn parse_graph(text: &str) -> Result<UncertainGraph, ExecError> {
    io::read_text(text.as_bytes(), DedupPolicy::KeepFirst)
        .map_err(|e| ExecError::Invalid(format!("graph: {e}")))
}

/// Renders a graph exactly as `io::write_file` would — the bytes a
/// `submit` client writes to disk must match the CLI's output file.
fn render_graph(g: &UncertainGraph) -> Result<String, ExecError> {
    let mut buf = Vec::new();
    io::write_text(g, &mut buf).map_err(|e| ExecError::Failed(e.to_string()))?;
    String::from_utf8(buf).map_err(|e| ExecError::Failed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> String {
        "nodes 6\n0 1 0.9\n1 2 0.8\n2 3 0.7\n3 4 0.6\n4 5 0.5\n0 5 0.4\n".to_string()
    }

    #[test]
    fn cache_key_ignores_threads_and_strips_but_not_seed() {
        let base = JobSpec::Obfuscate {
            graph: tiny_graph(),
            k: 2,
            epsilon: 0.1,
            method: AnonymizeMethod::Chameleon(Method::Me),
            worlds: 50,
            trials: 1,
            threads: 1,
            strip_worlds: 0,
            seed: 7,
        };
        let rebuild = |threads: usize, strip_worlds: usize, seed: u64| match base.clone() {
            JobSpec::Obfuscate {
                graph,
                k,
                epsilon,
                method,
                worlds,
                trials,
                ..
            } => JobSpec::Obfuscate {
                graph,
                k,
                epsilon,
                method,
                worlds,
                trials,
                threads,
                strip_worlds,
                seed,
            },
            _ => unreachable!(),
        };
        // Neither threads nor strip_worlds can change results (streamed
        // analysis is bit-identical), so neither may split the cache.
        assert_eq!(base.cache_key(), rebuild(8, 0, 7).cache_key());
        assert_eq!(base.cache_key(), rebuild(1, 128, 7).cache_key());
        assert_ne!(base.cache_key(), rebuild(1, 0, 8).cache_key());
    }

    #[test]
    fn cache_key_tracks_graph_content() {
        let a = JobSpec::Check {
            graph: tiny_graph(),
            k: 2,
            epsilon: 0.0,
            tolerance: 0,
        };
        let b = JobSpec::Check {
            graph: tiny_graph().replace("0.9", "0.91"),
            k: 2,
            epsilon: 0.0,
            tolerance: 0,
        };
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn check_job_executes() {
        let spec = JobSpec::Check {
            graph: tiny_graph(),
            k: 2,
            epsilon: 0.5,
            tolerance: 0,
        };
        let out = spec.execute(&CancelToken::new()).unwrap();
        assert!(out.contains("\"eps_hat\":"));
        assert!(out.contains("\"nodes\":6"));
    }

    #[test]
    fn reliability_job_is_deterministic() {
        let spec = JobSpec::Reliability {
            graph: tiny_graph(),
            worlds: 100,
            pairs: 10,
            threads: 1,
            seed: 3,
        };
        let a = spec.execute(&CancelToken::new()).unwrap();
        let b = spec.execute(&CancelToken::new()).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"avg_reliability\":"));
    }

    #[test]
    fn invalid_graph_is_reported_not_panicked() {
        let spec = JobSpec::Check {
            graph: "0 1 notaprob\n".into(),
            k: 2,
            epsilon: 0.0,
            tolerance: 0,
        };
        assert!(matches!(
            spec.execute(&CancelToken::new()),
            Err(ExecError::Invalid(_))
        ));
    }

    #[test]
    fn cancelled_token_short_circuits() {
        let token = CancelToken::new();
        token.cancel();
        let spec = JobSpec::Check {
            graph: tiny_graph(),
            k: 2,
            epsilon: 0.0,
            tolerance: 0,
        };
        assert_eq!(spec.execute(&token), Err(ExecError::Cancelled));
    }

    #[test]
    fn method_names_parse_like_the_cli() {
        assert_eq!(AnonymizeMethod::parse("rsme").unwrap().name(), "RSME");
        assert_eq!(AnonymizeMethod::parse("RepAn").unwrap().name(), "REPAN");
        assert!(AnonymizeMethod::parse("nope").is_err());
    }
}
