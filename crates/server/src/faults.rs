//! Deterministic fault injection for chaos-testing the daemon.
//!
//! A [`FaultPlan`] describes a *reproducible* schedule of faults: every
//! decision is a pure function of `(seed, site label, event index)`
//! through [`chameleon_stats::SeedSequence`], never of wall-clock time or
//! shared RNG state. Re-running the daemon with the same plan and the
//! same single-worker pool replays the identical fault schedule; with
//! more workers the per-index schedule is still fixed, only the
//! assignment of indices to jobs follows pop order.
//!
//! Two fault kinds are injected server-side by [`FaultInjector`] at the
//! worker's job-start boundary:
//!
//! * **worker panics** — the worker thread panics before executing the
//!   job. The hardened worker loop catches the unwind, answers a
//!   structured retryable `job_panicked` error, and survives.
//! * **cancel-token trips** — the job's [`chameleon_core::CancelToken`]
//!   is cancelled explicitly before execution, exercising the
//!   cooperative-cancellation path without waiting out a deadline. The
//!   daemon answers a retryable `cancelled` error (distinguished from a
//!   real deadline via [`chameleon_core::CancelToken::reason`]).
//!
//! Two more are injected at the reactor's I/O boundary (DESIGN.md §9) to
//! chaos-test the event loop itself:
//!
//! * **deferred readiness** — a connection that polled readable is
//!   skipped for one tick, exactly as if the kernel had woken the loop
//!   spuriously. The bytes are still there next tick; nothing is lost.
//! * **short writes** — a response flush is artificially truncated to
//!   one byte, forcing the partial-write resumption path that real
//!   kernel buffers exercise only under memory pressure.
//!
//! Client-side faults (slow, truncated, oversized and junk-byte request
//! lines; queue-full storms) are driven by the chaos harness itself —
//! see `tests/chaos.rs` — using [`decide`] so the abuse schedule is
//! seeded the same way.
//!
//! Faults only ever *remove* work (a panicked or cancelled execution
//! computes nothing) or delay it; they never feed into a job's RNG
//! streams. A job that eventually runs to completion therefore produces
//! bytes identical to a fault-free run — the chaos soak test pins this.

use chameleon_stats::SeedSequence;
use std::sync::atomic::{AtomicU64, Ordering};

/// A seeded, bounded schedule of injected faults.
///
/// `rate` is the per-execution injection probability (deterministically
/// derived per index); `budget` caps the total number of injections of
/// that kind. `rate = 1.0` with `budget = n` means "exactly the first
/// `n` executions fault" — the fully deterministic schedule the soak
/// tests use. Zero rate or zero budget disables a fault kind; the
/// default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Master seed for every schedule decision.
    pub seed: u64,
    /// Per-execution probability of an injected worker panic.
    pub panic_rate: f64,
    /// Maximum number of injected panics.
    pub panic_budget: u64,
    /// Per-execution probability of an injected cancel-token trip.
    pub cancel_rate: f64,
    /// Maximum number of injected cancel trips.
    pub cancel_budget: u64,
    /// Per-readiness-event probability that the reactor defers handling
    /// a readable connection by one tick.
    pub defer_ready_rate: f64,
    /// Maximum number of injected readiness deferrals.
    pub defer_ready_budget: u64,
    /// Per-flush probability that the reactor truncates a response write
    /// to a single byte.
    pub short_write_rate: f64,
    /// Maximum number of injected short writes.
    pub short_write_budget: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            panic_rate: 0.0,
            panic_budget: 0,
            cancel_rate: 0.0,
            cancel_budget: 0,
            defer_ready_rate: 0.0,
            defer_ready_budget: 0,
            short_write_rate: 0.0,
            short_write_budget: 0,
        }
    }
}

impl FaultPlan {
    /// An inert plan (injects nothing) with the given schedule seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Enables worker-panic injection at `rate`, capped at `budget`.
    pub fn with_panics(mut self, rate: f64, budget: u64) -> Self {
        self.panic_rate = rate;
        self.panic_budget = budget;
        self
    }

    /// Enables cancel-trip injection at `rate`, capped at `budget`.
    pub fn with_cancels(mut self, rate: f64, budget: u64) -> Self {
        self.cancel_rate = rate;
        self.cancel_budget = budget;
        self
    }

    /// Enables reactor readiness-deferral injection at `rate`, capped at
    /// `budget`.
    pub fn with_deferred_ready(mut self, rate: f64, budget: u64) -> Self {
        self.defer_ready_rate = rate;
        self.defer_ready_budget = budget;
        self
    }

    /// Enables reactor short-write injection at `rate`, capped at
    /// `budget`.
    pub fn with_short_writes(mut self, rate: f64, budget: u64) -> Self {
        self.short_write_rate = rate;
        self.short_write_budget = budget;
        self
    }

    /// True when the plan can inject at least one fault.
    pub fn is_active(&self) -> bool {
        (self.panic_rate > 0.0 && self.panic_budget > 0)
            || (self.cancel_rate > 0.0 && self.cancel_budget > 0)
            || (self.defer_ready_rate > 0.0 && self.defer_ready_budget > 0)
            || (self.short_write_rate > 0.0 && self.short_write_budget > 0)
    }
}

/// Pure schedule decision: does event `index` at `label` fault, at
/// probability `rate`, under `seed`? Deterministic and order-independent
/// — the answer depends only on the arguments, so concurrent sites can
/// consult the schedule without coordination. Also used by the chaos
/// harness to derive its client-abuse schedule.
pub fn decide(seed: u64, label: &str, index: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    // 53 high bits → uniform in [0, 1), the standard f64 construction.
    let raw = SeedSequence::new(seed).derive_indexed(label, index);
    let unit = (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < rate
}

/// What the injector asks the worker to do to the current job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobFault {
    /// Panic the worker thread before executing the job.
    Panic,
    /// Trip the job's cancel token before executing it.
    CancelTrip,
}

/// Runtime state of a [`FaultPlan`] inside a server: a monotone
/// execution counter plus per-kind injection totals.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    executions: AtomicU64,
    panics: AtomicU64,
    cancels: AtomicU64,
    ready_events: AtomicU64,
    defers: AtomicU64,
    flushes: AtomicU64,
    short_writes: AtomicU64,
}

impl FaultInjector {
    /// Arms `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            executions: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            cancels: AtomicU64::new(0),
            ready_events: AtomicU64::new(0),
            defers: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            short_writes: AtomicU64::new(0),
        }
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Consumes one execution index and returns the fault (if any) to
    /// inject into the job about to run. Panic takes precedence over a
    /// cancel trip when both trip on the same index.
    pub fn next_job_fault(&self) -> Option<JobFault> {
        let index = self.executions.fetch_add(1, Ordering::Relaxed);
        if decide(
            self.plan.seed,
            "fault.worker_panic",
            index,
            self.plan.panic_rate,
        ) && self.take_budget(&self.panics, self.plan.panic_budget)
        {
            chameleon_obs::counter!("server.faults.injected_panic").add(1);
            return Some(JobFault::Panic);
        }
        if decide(
            self.plan.seed,
            "fault.cancel_trip",
            index,
            self.plan.cancel_rate,
        ) && self.take_budget(&self.cancels, self.plan.cancel_budget)
        {
            chameleon_obs::counter!("server.faults.injected_cancel").add(1);
            return Some(JobFault::CancelTrip);
        }
        None
    }

    /// Claims one unit of `budget` from `used`; false once exhausted.
    fn take_budget(&self, used: &AtomicU64, budget: u64) -> bool {
        used.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            (n < budget).then_some(n + 1)
        })
        .is_ok()
    }

    /// Consumes one readiness-event index; true when the reactor should
    /// skip this readable connection for one tick.
    pub fn next_deferred_ready(&self) -> bool {
        if self.plan.defer_ready_rate <= 0.0 || self.plan.defer_ready_budget == 0 {
            return false;
        }
        let index = self.ready_events.fetch_add(1, Ordering::Relaxed);
        if decide(
            self.plan.seed,
            "fault.defer_ready",
            index,
            self.plan.defer_ready_rate,
        ) && self.take_budget(&self.defers, self.plan.defer_ready_budget)
        {
            chameleon_obs::counter!("server.faults.injected_defer").add(1);
            return true;
        }
        false
    }

    /// Consumes one flush index; true when the reactor should truncate
    /// this response flush to a single byte.
    pub fn next_short_write(&self) -> bool {
        if self.plan.short_write_rate <= 0.0 || self.plan.short_write_budget == 0 {
            return false;
        }
        let index = self.flushes.fetch_add(1, Ordering::Relaxed);
        if decide(
            self.plan.seed,
            "fault.short_write",
            index,
            self.plan.short_write_rate,
        ) && self.take_budget(&self.short_writes, self.plan.short_write_budget)
        {
            chameleon_obs::counter!("server.faults.injected_short_write").add(1);
            return true;
        }
        false
    }

    /// Total injected worker panics so far.
    pub fn injected_panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Total injected cancel trips so far.
    pub fn injected_cancels(&self) -> u64 {
        self.cancels.load(Ordering::Relaxed)
    }

    /// Total injected readiness deferrals so far.
    pub fn injected_defers(&self) -> u64 {
        self.defers.load(Ordering::Relaxed)
    }

    /// Total injected short writes so far.
    pub fn injected_short_writes(&self) -> u64 {
        self.short_writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_deterministic_and_rate_monotone() {
        for index in 0..64 {
            assert_eq!(
                decide(9, "x", index, 0.3),
                decide(9, "x", index, 0.3),
                "index {index}"
            );
            // A trip at rate r must also trip at any higher rate: the
            // underlying unit draw is fixed per (seed, label, index).
            if decide(9, "x", index, 0.3) {
                assert!(decide(9, "x", index, 0.8));
            }
        }
        assert!(!decide(9, "x", 0, 0.0));
        assert!(decide(9, "x", 0, 1.0));
    }

    #[test]
    fn decide_rate_is_roughly_honored() {
        let trips = (0..10_000).filter(|&i| decide(1, "rate", i, 0.25)).count();
        assert!((2_000..3_000).contains(&trips), "got {trips}");
    }

    #[test]
    fn full_rate_budget_gives_exact_prefix_schedule() {
        let inj = FaultInjector::new(FaultPlan::new(5).with_panics(1.0, 3));
        let faults: Vec<_> = (0..6).map(|_| inj.next_job_fault()).collect();
        assert_eq!(
            faults,
            vec![
                Some(JobFault::Panic),
                Some(JobFault::Panic),
                Some(JobFault::Panic),
                None,
                None,
                None
            ]
        );
        assert_eq!(inj.injected_panics(), 3);
    }

    #[test]
    fn panic_takes_precedence_and_budgets_are_independent() {
        let inj = FaultInjector::new(FaultPlan::new(5).with_panics(1.0, 1).with_cancels(1.0, 2));
        assert_eq!(inj.next_job_fault(), Some(JobFault::Panic));
        assert_eq!(inj.next_job_fault(), Some(JobFault::CancelTrip));
        assert_eq!(inj.next_job_fault(), Some(JobFault::CancelTrip));
        assert_eq!(inj.next_job_fault(), None);
        assert_eq!((inj.injected_panics(), inj.injected_cancels()), (1, 2));
    }

    #[test]
    fn inert_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::new(42));
        assert!(!inj.plan().is_active());
        assert!((0..100).all(|_| inj.next_job_fault().is_none()));
        assert!((0..100).all(|_| !inj.next_deferred_ready()));
        assert!((0..100).all(|_| !inj.next_short_write()));
    }

    #[test]
    fn reactor_faults_have_independent_budgets_and_counters() {
        let inj = FaultInjector::new(
            FaultPlan::new(11)
                .with_deferred_ready(1.0, 2)
                .with_short_writes(1.0, 3),
        );
        assert!(inj.plan().is_active());
        let defers = (0..10).filter(|_| inj.next_deferred_ready()).count();
        let shorts = (0..10).filter(|_| inj.next_short_write()).count();
        assert_eq!((defers, shorts), (2, 3));
        assert_eq!(inj.injected_defers(), 2);
        assert_eq!(inj.injected_short_writes(), 3);
        // Job faults are untouched by the reactor schedule.
        assert_eq!(inj.next_job_fault(), None);
    }
}
