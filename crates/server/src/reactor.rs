//! Nonblocking event-loop primitives: a thin `poll(2)` wrapper and a
//! self-pipe wakeup channel.
//!
//! The daemon's connection layer (DESIGN.md §9) runs as a single event
//! loop that owns every socket in nonblocking mode and multiplexes
//! readiness through `poll(2)`. The workspace's zero-dependency rule
//! means no `libc`, `mio`, or `polling` crates — instead this module
//! declares the one C-ABI symbol it needs (`poll`, which the platform's
//! C runtime already exports into every Rust binary) and wraps it behind
//! a safe, allocation-reusing [`PollSet`]. This is the only unsafe code
//! in the workspace; everything above it is safe Rust over `RawFd`s the
//! caller keeps alive.
//!
//! The second half is the wakeup path: worker threads finish jobs on a
//! plain `mpsc` channel, but the event loop parks inside `poll(2)` and a
//! channel send alone would not rouse it. A [`Wakeup`] is the classic
//! self-pipe: a nonblocking `UnixStream` pair whose read end sits in the
//! poll set; any thread holding a cloned [`Waker`] writes one byte to
//! make the loop's next `poll` return immediately. Spurious wakeups are
//! harmless (the loop drains the pipe and re-checks its channels), and a
//! full pipe is fine too — the loop is already guaranteed to wake.

// The `poll(2)` declaration and call below are the workspace's single
// unsafe exception (lib.rs holds the deny): the call passes a pointer and
// length derived from one live `&mut [PollFd]` and nothing else.
#![allow(unsafe_code)]

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readiness to request: read side (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Readiness to request: write side (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Returned readiness: error condition on the descriptor.
pub const POLLERR: i16 = 0x008;
/// Returned readiness: peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Returned readiness: descriptor not open (stale registration).
pub const POLLNVAL: i16 = 0x020;

/// One `struct pollfd`, layout-compatible with the C definition on every
/// unix this workspace targets (Linux CI, macOS dev machines).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Registers `fd` for the readiness bits in `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// The registered descriptor.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Readiness returned by the last [`PollSet::poll`].
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// True when the descriptor is readable (or in an error/hangup state,
    /// which reads surface as EOF/error — the caller must read to find
    /// out).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// True when the descriptor accepts writes (or errored, which the
    /// next write will surface).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// The platform's `nfds_t`: `unsigned long` (64-bit) on 64-bit Linux,
/// but `unsigned int` (32-bit) on macOS and the BSDs. The declaration
/// must match exactly — a 64-bit count against a 32-bit ABI slot is
/// undefined behavior even when little-endian registers happen to make
/// small values work.
#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
))]
type NfdsT = u32;
#[cfg(not(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
)))]
type NfdsT = u64;

extern "C" {
    /// `poll(2)` from the platform C runtime.
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout_ms: i32) -> i32;
}

/// A reusable registration set for one `poll(2)` call per event-loop
/// tick. The `Vec` is cleared, refilled and handed to the kernel each
/// tick, so steady-state allocations are zero once it reaches its
/// high-water mark.
#[derive(Debug, Default)]
pub struct PollSet {
    fds: Vec<PollFd>,
}

impl PollSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all registrations (allocation retained).
    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Registers `fd` for `events`; returns its slot index, by which the
    /// caller reads back [`Self::revents`] after the poll.
    pub fn register(&mut self, fd: RawFd, events: i16) -> usize {
        self.fds.push(PollFd::new(fd, events));
        self.fds.len() - 1
    }

    /// Number of registered descriptors.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// The registration at `slot` (panics on a bad slot, which is a
    /// caller bug — slots come from [`Self::register`] this tick).
    pub fn revents(&self, slot: usize) -> &PollFd {
        &self.fds[slot]
    }

    /// Blocks until at least one registered descriptor is ready or
    /// `timeout` elapses (`None` = wait forever). Returns the number of
    /// ready descriptors (0 on timeout). `EINTR` is retried with the
    /// same timeout — the loop's own deadline bookkeeping absorbs the
    /// drift.
    ///
    /// # Errors
    /// Propagates `poll(2)` failures other than `EINTR`.
    pub fn poll(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // +999_999 rounds nanoseconds up: a 100 µs deadline must not
            // become a hot 0 ms spin loop.
            Some(t) => t
                .as_millis()
                .max(u128::from(t.subsec_nanos() > 0))
                .min(i32::MAX as u128) as i32,
        };
        loop {
            // SAFETY: `fds` is a live, exclusively borrowed slice of
            // `#[repr(C)]` pollfd-compatible structs; the kernel writes
            // only the `revents` fields within its bounds.
            let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as NfdsT, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// The event loop's end of the self-pipe: a nonblocking socket-pair read
/// half registered for `POLLIN` every tick.
#[derive(Debug)]
pub struct Wakeup {
    read_half: UnixStream,
    write_half: UnixStream,
}

/// A cloneable handle that rouses the event loop from any thread.
#[derive(Debug)]
pub struct Waker {
    write_half: UnixStream,
}

impl Wakeup {
    /// Creates the pair; both halves are nonblocking so neither the
    /// wakers nor the drain can ever park a thread.
    ///
    /// # Errors
    /// Propagates socketpair creation failures.
    pub fn new() -> io::Result<Self> {
        let (read_half, write_half) = UnixStream::pair()?;
        read_half.set_nonblocking(true)?;
        write_half.set_nonblocking(true)?;
        Ok(Self {
            read_half,
            write_half,
        })
    }

    /// The descriptor to register for `POLLIN`.
    pub fn fd(&self) -> RawFd {
        self.read_half.as_raw_fd()
    }

    /// A handle for worker threads.
    ///
    /// # Errors
    /// Propagates descriptor duplication failures.
    pub fn waker(&self) -> io::Result<Waker> {
        Ok(Waker {
            write_half: self.write_half.try_clone()?,
        })
    }

    /// Discards all pending wakeup bytes. Called once per tick when the
    /// pipe polls readable; the loop then re-checks its channels, so
    /// coalesced wakeups are never lost.
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 256];
        // Nonblocking: loop until WouldBlock (or any error — a broken
        // self-pipe only costs spurious wakeups, never correctness).
        while matches!((&self.read_half).read(&mut sink), Ok(n) if n > 0) {}
    }
}

impl Waker {
    /// Makes the event loop's current (or next) `poll` return
    /// immediately. Best-effort by design: a full pipe means wakeups are
    /// already pending, and any other failure is absorbed by the loop's
    /// bounded poll timeout.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.write_half).write(&[1u8]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poll_times_out_on_a_quiet_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut set = PollSet::new();
        set.register(listener.as_raw_fd(), POLLIN);
        let ready = set.poll(Some(Duration::from_millis(10))).unwrap();
        assert_eq!(ready, 0);
    }

    #[test]
    fn poll_reports_an_accept_ready_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut set = PollSet::new();
        let slot = set.register(listener.as_raw_fd(), POLLIN);
        let ready = set.poll(Some(Duration::from_millis(2000))).unwrap();
        assert!(ready >= 1);
        assert!(set.revents(slot).readable());
    }

    #[test]
    fn poll_reports_readable_data_and_writable_buffers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let mut set = PollSet::new();
        let r = set.register(server.as_raw_fd(), POLLIN);
        let w = set.register(client.as_raw_fd(), POLLOUT);
        let ready = set.poll(Some(Duration::from_millis(2000))).unwrap();
        assert!(ready >= 1);
        assert!(set.revents(r).readable(), "server side has bytes to read");
        assert!(set.revents(w).writable(), "idle client buffer is writable");
    }

    #[test]
    fn waker_rouses_a_parked_poll() {
        let wakeup = Wakeup::new().unwrap();
        let waker = wakeup.waker().unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut set = PollSet::new();
        let slot = set.register(wakeup.fd(), POLLIN);
        let begun = std::time::Instant::now();
        let ready = set.poll(Some(Duration::from_secs(10))).unwrap();
        assert!(ready >= 1);
        assert!(set.revents(slot).readable());
        assert!(
            begun.elapsed() < Duration::from_secs(5),
            "wakeup did not interrupt the poll"
        );
        wakeup.drain();
        // Drained pipe: the next poll times out instead of spinning.
        set.clear();
        set.register(wakeup.fd(), POLLIN);
        assert_eq!(set.poll(Some(Duration::from_millis(10))).unwrap(), 0);
        t.join().unwrap();
    }

    #[test]
    fn coalesced_wakeups_survive_a_single_drain() {
        let wakeup = Wakeup::new().unwrap();
        let waker = wakeup.waker().unwrap();
        for _ in 0..1000 {
            waker.wake();
        }
        wakeup.drain();
        let mut set = PollSet::new();
        set.register(wakeup.fd(), POLLIN);
        assert_eq!(
            set.poll(Some(Duration::from_millis(10))).unwrap(),
            0,
            "drain left bytes behind"
        );
    }

    #[test]
    fn subsecond_timeouts_round_up_not_down() {
        // A 100 µs timeout must become 1 ms, not a 0 ms busy spin.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut set = PollSet::new();
        set.register(listener.as_raw_fd(), POLLIN);
        let ready = set.poll(Some(Duration::from_micros(100))).unwrap();
        assert_eq!(ready, 0);
    }
}
