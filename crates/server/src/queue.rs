//! A bounded MPMC job queue with explicit backpressure and drain
//! accounting.
//!
//! `std::sync::mpsc::sync_channel` almost fits, but the daemon needs three
//! things it does not offer together: a non-blocking depth-aware reject
//! (queue-full must answer `retry_after`, not block), a drain predicate
//! that is atomic with dequeueing (no window where the queue looks empty
//! while a worker is between `pop` and "I'm busy"), and an inspectable
//! depth for `status`. Hence this small lock + Condvar queue: `pop`
//! increments the active-worker count under the same lock that removes the
//! item, and `task_done` decrements it, so `is_drained()` is exact.
//!
//! The lock is a [`RecoverableMutex`]: a panicking holder (a worker hit
//! by an injected fault, say) must never take the queue down with it —
//! the queue's state is valid after any prefix of a critical section, so
//! poison is recovered and counted instead of being fatal.

use crate::sync::RecoverableMutex;
use std::collections::VecDeque;
use std::sync::Condvar;

/// A single-lock, mutually consistent view of the queue's counters.
///
/// `status` and drain checks need queued-and-active as one atomic pair:
/// reading them through separate [`BoundedQueue::len`] / [`BoundedQueue::active`]
/// calls can observe a job twice (still queued in one read, already active
/// in the next) or not at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// Items queued but not yet popped.
    pub queued: usize,
    /// Items popped but not yet `task_done`d.
    pub active: usize,
    /// Whether the queue has stopped accepting pushes.
    pub closed: bool,
}

impl QueueSnapshot {
    /// True when nothing is queued and nothing is in flight.
    pub fn is_drained(&self) -> bool {
        self.queued == 0 && self.active == 0
    }
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` items; retry later.
    Full {
        /// Configured bound that was hit.
        capacity: usize,
    },
    /// The queue no longer accepts work (shutdown in progress).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    /// Items popped but not yet `task_done`d.
    active: usize,
    /// Closed queues reject pushes; pops drain the remainder then `None`.
    closed: bool,
}

/// Bounded multi-producer / multi-consumer FIFO.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: RecoverableMutex<State<T>>,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue bounded at `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: RecoverableMutex::new(State {
                items: VecDeque::new(),
                active: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues without blocking; returns the depth after the push.
    ///
    /// # Errors
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] once closed.
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full {
                capacity: self.capacity,
            });
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// empty. A returned item counts as active until [`Self::task_done`].
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                state.active += 1;
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.state.wait(&self.not_empty, state);
        }
    }

    /// Marks one previously popped item as finished.
    pub fn task_done(&self) {
        let mut state = self.state.lock();
        state.active = state.active.saturating_sub(1);
    }

    /// Queued and active counts read under one lock acquisition.
    pub fn snapshot(&self) -> QueueSnapshot {
        let state = self.state.lock();
        QueueSnapshot {
            queued: state.items.len(),
            active: state.active,
            closed: state.closed,
        }
    }

    /// Current number of queued (not yet popped) items.
    pub fn len(&self) -> usize {
        self.snapshot().queued
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of popped-but-unfinished items.
    pub fn active(&self) -> usize {
        self.snapshot().active
    }

    /// True when nothing is queued and nothing is in flight.
    pub fn is_drained(&self) -> bool {
        self.snapshot().is_drained()
    }

    /// Stops accepting pushes; blocked `pop`s drain the backlog, then
    /// return `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_depth() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.pop(), Some(1));
        q.task_done();
        assert_eq!(q.pop(), Some(2));
        q.task_done();
        assert!(q.is_drained());
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full { capacity: 2 }));
    }

    #[test]
    fn close_drains_backlog_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(9), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        q.task_done();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drained_is_false_while_item_in_flight() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        assert!(!q.is_drained());
        let _ = q.pop();
        assert!(!q.is_drained(), "popped item is still active");
        q.task_done();
        assert!(q.is_drained());
    }

    #[test]
    fn snapshot_reads_queued_and_active_as_one_pair() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let _ = q.pop();
        let snap = q.snapshot();
        assert_eq!((snap.queued, snap.active, snap.closed), (1, 1, false));
        assert!(!snap.is_drained());
        q.task_done();
        let _ = q.pop();
        q.task_done();
        q.close();
        let snap = q.snapshot();
        assert_eq!((snap.queued, snap.active, snap.closed), (0, 0, true));
        assert!(snap.is_drained());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn queue_survives_a_panicking_consumer() {
        // A consumer thread that panics between pop and task_done must
        // leave the queue fully operational for everyone else (its item
        // stays "active" until someone settles the account).
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let q2 = Arc::clone(&q);
        let _ = std::thread::spawn(move || {
            let _item = q2.pop();
            panic!("worker died mid-job");
        })
        .join();
        assert_eq!(q.len(), 1);
        assert_eq!(q.active(), 1);
        assert_eq!(q.pop(), Some(2));
        q.task_done();
        q.task_done(); // on behalf of the dead consumer
        assert!(q.is_drained());
    }
}
