//! The `chameleond` wire protocol: newline-delimited JSON over TCP, with
//! pipelining, batch submission and chunked responses.
//!
//! Grammar (one request object per line, one response object per line):
//!
//! ```text
//! request  = { "op": op, ["id": string], ["timeout_ms": int],
//!              ["chunk_bytes": int], params... }
//!          | { "op": "batch", ["id": string], ["chunk_bytes": int],
//!              "requests": [ job-request, ... ] }
//! op       = "obfuscate" | "check" | "reliability" | "status" | "shutdown"
//! response = { ["id": ...], "status": "ok", "cached": bool, "result": {...} }
//!          | { ["id": ...], "status": "error", "error": string,
//!              ["retry_after_ms": int] }
//!          | { ["id": ...], "status": "chunk", "seq": int, "last": bool,
//!              "data": string }    (reassemble by concatenating "data")
//! ```
//!
//! **Pipelining.** Clients may write any number of request lines without
//! waiting for responses; the `id` field is the correlation key — job
//! responses come back in *completion* order, each echoing the `id` of
//! the request it answers. Clients that pipeline must send distinct ids.
//!
//! **Batch.** `op":"batch"` submits many job requests in one line (each
//! element a full job object). Every element gets its own response line;
//! an element without an `id` inherits `"<batch-id>#<index>"` when the
//! batch has one. Elements that fail to parse get a structured error with
//! their id; the remaining elements still run.
//!
//! **Chunking.** A request carrying `"chunk_bytes": N` asks that any
//! response line for it longer than `N` bytes be streamed as `chunk`
//! frames whose concatenated `data` fields are the exact bytes of the
//! unchunked response line — byte-identical reassembly, enforced by test.
//!
//! Job parameters are flat fields mirroring the CLI flags of the matching
//! subcommand, with the same defaults (`seed` 42, `worlds` 500, `trials`
//! 5, `threads` 0, anonymize `epsilon` 0.01, `method` "RSME"); defaults
//! are applied *here*, before cache-key derivation, so a request relying
//! on a default and one spelling it out share a cache entry. Graphs travel
//! inline as edge-list text in the `"graph"` field.
//!
//! Responses are rendered with the shared deterministic encoder
//! ([`chameleon_obs::json`]); for a fixed request, the `result` object is
//! byte-stable across runs, machines, thread counts, and cache state.

use crate::job::{AnonymizeMethod, JobSpec};
use chameleon_obs::json::{self, Json};

/// Requests below this `chunk_bytes` floor are never chunked: tiny frames
/// would multiply the framing overhead past the payload itself.
pub const CHUNK_FLOOR: usize = 512;

/// One fully parsed job submission (top-level or batch element).
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// What to compute.
    pub spec: JobSpec,
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<String>,
    /// Per-job wall-clock budget override (ms).
    pub timeout_ms: Option<u64>,
    /// Chunk responses longer than this many bytes (0 = never chunk;
    /// values below [`CHUNK_FLOOR`] are raised to it).
    pub chunk_bytes: usize,
}

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Work for the queue/worker pool.
    Job(JobRequest),
    /// Many jobs submitted in one line; per-element parse failures keep
    /// the recovered id so each element can be answered individually.
    Batch {
        /// Batch-level correlation id (also the prefix for element ids).
        id: Option<String>,
        /// Parsed elements, in submission order.
        items: Vec<Result<JobRequest, ParseFailure>>,
    },
    /// Server introspection (answered inline, never queued).
    Status {
        /// Correlation id.
        id: Option<String>,
    },
    /// Begin graceful shutdown; the response is sent after the queue
    /// drains.
    Shutdown {
        /// Correlation id.
        id: Option<String>,
    },
}

/// Parse failure: the (possibly recovered) request id plus a message.
pub type ParseFailure = (Option<String>, String);

fn get_u64(v: &Json, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(field) => field
            .as_u64()
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

fn get_f64(v: &Json, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(field) => field
            .as_f64()
            .ok_or_else(|| format!("field {key:?} must be a number")),
    }
}

fn get_str(v: &Json, key: &str, default: &str) -> Result<String, String> {
    match v.get(key) {
        None => Ok(default.to_string()),
        Some(field) => field
            .as_str()
            .map(String::from)
            .ok_or_else(|| format!("field {key:?} must be a string")),
    }
}

fn require_graph(v: &Json) -> Result<String, String> {
    v.get("graph")
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or_else(|| "missing required string field \"graph\"".to_string())
}

/// Parses one request line.
///
/// # Errors
/// Returns the request id (when recoverable) and a message suitable for an
/// error response.
pub fn parse_request(line: &str) -> Result<Request, ParseFailure> {
    let v = Json::parse(line).map_err(|e| (None, format!("bad request JSON: {e}")))?;
    let id = v.get("id").and_then(Json::as_str).map(String::from);
    let fail = |msg: String| (id.clone(), msg);
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing required string field \"op\"".to_string()))?
        .to_string();
    match op.as_str() {
        "status" => return Ok(Request::Status { id }),
        "shutdown" => return Ok(Request::Shutdown { id }),
        "batch" => return parse_batch(&v, id),
        _ => {}
    }
    parse_job_body(&v, &op, id).map(Request::Job)
}

/// Parses the batch envelope: every element of `"requests"` is parsed as
/// an independent job; elements without an id inherit `"<batch-id>#<i>"`,
/// and a batch-level `"chunk_bytes"` is the default for elements that do
/// not set their own.
fn parse_batch(v: &Json, id: Option<String>) -> Result<Request, ParseFailure> {
    let fail = |msg: String| (id.clone(), msg);
    let default_chunk = get_u64(v, "chunk_bytes", 0).map_err(&fail)? as usize;
    let requests = v
        .get("requests")
        .ok_or_else(|| fail("batch requires an array field \"requests\"".into()))?;
    let elements = requests
        .as_array()
        .ok_or_else(|| fail("field \"requests\" must be an array".into()))?;
    if elements.is_empty() {
        return Err(fail("batch \"requests\" must not be empty".into()));
    }
    let items = elements
        .iter()
        .enumerate()
        .map(|(i, elem)| {
            let derived_id = elem
                .get("id")
                .and_then(Json::as_str)
                .map(String::from)
                .or_else(|| id.as_ref().map(|batch| format!("{batch}#{i}")));
            let op = match elem.get("op").and_then(Json::as_str) {
                Some(op) => op.to_string(),
                None => {
                    return Err((
                        derived_id,
                        format!("batch element {i}: missing required string field \"op\""),
                    ))
                }
            };
            if matches!(op.as_str(), "batch" | "status" | "shutdown") {
                return Err((
                    derived_id,
                    format!("batch element {i}: op {op:?} is not allowed inside a batch"),
                ));
            }
            let mut job = parse_job_body(elem, &op, derived_id.clone())
                .map_err(|(_, msg)| (derived_id, format!("batch element {i}: {msg}")))?;
            if job.chunk_bytes == 0 {
                job.chunk_bytes = default_chunk;
            }
            Ok(job)
        })
        .collect();
    Ok(Request::Batch { id, items })
}

/// Parses the job fields shared by top-level and batch-element requests.
fn parse_job_body(v: &Json, op: &str, id: Option<String>) -> Result<JobRequest, ParseFailure> {
    let fail = |msg: String| (id.clone(), msg);
    let timeout_ms =
        match v.get("timeout_ms") {
            None => None,
            Some(t) => Some(t.as_u64().ok_or_else(|| {
                fail("field \"timeout_ms\" must be a non-negative integer".into())
            })?),
        };
    let chunk_bytes = get_u64(v, "chunk_bytes", 0).map_err(&fail)? as usize;
    let spec = match op {
        "obfuscate" => {
            let graph = require_graph(v).map_err(&fail)?;
            let k = get_u64(v, "k", 0).map_err(&fail)?;
            if k == 0 {
                return Err(fail("obfuscate requires \"k\" >= 1".into()));
            }
            let method = AnonymizeMethod::parse(&get_str(v, "method", "RSME").map_err(&fail)?)
                .map_err(&fail)?;
            JobSpec::Obfuscate {
                graph,
                k: k as usize,
                epsilon: get_f64(v, "epsilon", 0.01).map_err(&fail)?,
                method,
                worlds: get_u64(v, "worlds", 500).map_err(&fail)? as usize,
                trials: get_u64(v, "trials", 5).map_err(&fail)? as usize,
                threads: get_u64(v, "threads", 0).map_err(&fail)? as usize,
                strip_worlds: get_u64(v, "strip_worlds", 0).map_err(&fail)? as usize,
                seed: get_u64(v, "seed", 42).map_err(&fail)?,
            }
        }
        "check" => {
            let graph = require_graph(v).map_err(&fail)?;
            let k = get_u64(v, "k", 0).map_err(&fail)?;
            if k == 0 {
                return Err(fail("check requires \"k\" >= 1".into()));
            }
            JobSpec::Check {
                graph,
                k: k as usize,
                epsilon: get_f64(v, "epsilon", 0.0).map_err(&fail)?,
                tolerance: get_u64(v, "tolerance", 0).map_err(&fail)? as u32,
            }
        }
        "reliability" => JobSpec::Reliability {
            graph: require_graph(v).map_err(&fail)?,
            worlds: get_u64(v, "worlds", 500).map_err(&fail)? as usize,
            pairs: get_u64(v, "pairs", 2000).map_err(&fail)? as usize,
            threads: get_u64(v, "threads", 0).map_err(&fail)? as usize,
            seed: get_u64(v, "seed", 42).map_err(&fail)?,
        },
        other => {
            return Err(fail(format!(
                "unknown op {other:?} (obfuscate|check|reliability|batch|status|shutdown)"
            )))
        }
    };
    Ok(JobRequest {
        spec,
        id,
        timeout_ms,
        chunk_bytes,
    })
}

/// Renders a success response. `result` must already be a rendered JSON
/// object (the cacheable replay unit); the envelope field order is fixed.
pub fn ok_response(id: Option<&str>, cached: bool, result: &str) -> String {
    let mut out = String::with_capacity(result.len() + 64);
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        out.push_str(&json::string(id));
        out.push(',');
    }
    out.push_str("\"status\":\"ok\",\"cached\":");
    out.push_str(if cached { "true" } else { "false" });
    out.push_str(",\"result\":");
    out.push_str(result);
    out.push('}');
    out
}

/// Renders an error response; `retry_after_ms` marks retryable
/// backpressure rejections.
pub fn error_response(id: Option<&str>, error: &str, retry_after_ms: Option<u64>) -> String {
    render_error(id, None, error, retry_after_ms)
}

/// Machine-readable error categories carried in the optional `"code"`
/// response field. Clients branch on the code (retry policy, tests)
/// instead of string-matching the human-readable message; the presence
/// of `retry_after_ms` — not the code — is the retryability signal.
pub mod codes {
    /// Unparsable or semantically invalid request line.
    pub const BAD_REQUEST: &str = "bad_request";
    /// Request line exceeded the configured byte limit.
    pub const REQUEST_TOO_LARGE: &str = "request_too_large";
    /// A started request line stalled past the read deadline.
    pub const READ_TIMEOUT: &str = "read_timeout";
    /// Connection refused: too many open connections.
    pub const SERVER_BUSY: &str = "server_busy";
    /// Bounded queue at capacity (retryable).
    pub const QUEUE_FULL: &str = "queue_full";
    /// Daemon is draining for shutdown.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The job exceeded its wall-clock budget.
    pub const TIMEOUT: &str = "timeout";
    /// The job's cancel token was tripped explicitly (retryable — this is
    /// the injected-fault path, not a deadline).
    pub const CANCELLED: &str = "cancelled";
    /// The worker panicked while running the job (retryable; the panic
    /// was isolated and the worker survived).
    pub const JOB_PANICKED: &str = "job_panicked";
    /// The job ran and failed (bad input, pipeline failure).
    pub const JOB_FAILED: &str = "job_failed";
    /// A batch carried more elements than the server's `--max-batch`.
    pub const BATCH_TOO_LARGE: &str = "batch_too_large";
    /// Gateway-synthesized: every backend in the ring is dead or
    /// unreachable (retryable — backends may recover).
    pub const NO_BACKEND: &str = "no_backend";
}

/// Splits a finished response line into `chunk` frames of at most
/// `chunk_bytes` payload bytes each, or returns `None` when the line fits
/// in one frame's worth (no chunking needed). Frames split only at UTF-8
/// character boundaries; concatenating the `data` fields of all frames
/// reproduces `line` byte-for-byte.
pub fn chunk_frames(id: Option<&str>, line: &str, chunk_bytes: usize) -> Option<Vec<String>> {
    let chunk_bytes = chunk_bytes.max(CHUNK_FLOOR);
    if line.len() <= chunk_bytes {
        return None;
    }
    let mut pieces: Vec<&str> = Vec::with_capacity(line.len() / chunk_bytes + 2);
    let mut rest = line;
    while rest.len() > chunk_bytes {
        let mut cut = chunk_bytes;
        while !rest.is_char_boundary(cut) {
            cut -= 1;
        }
        let (head, tail) = rest.split_at(cut);
        pieces.push(head);
        rest = tail;
    }
    if !rest.is_empty() {
        pieces.push(rest);
    }
    let last = pieces.len() - 1;
    Some(
        pieces
            .iter()
            .enumerate()
            .map(|(seq, data)| {
                let mut out = String::with_capacity(data.len() + 80);
                out.push('{');
                if let Some(id) = id {
                    out.push_str("\"id\":");
                    out.push_str(&json::string(id));
                    out.push(',');
                }
                out.push_str("\"status\":\"chunk\",\"seq\":");
                out.push_str(&seq.to_string());
                out.push_str(",\"last\":");
                out.push_str(if seq == last { "true" } else { "false" });
                out.push_str(",\"data\":");
                out.push_str(&json::string(data));
                out.push('}');
                out
            })
            .collect(),
    )
}

/// Renders an error response tagged with a machine-readable `code` (see
/// [`codes`]). Field order: `id?`, `status`, `code`, `error`,
/// `retry_after_ms?`.
pub fn coded_error_response(
    id: Option<&str>,
    code: &str,
    error: &str,
    retry_after_ms: Option<u64>,
) -> String {
    render_error(id, Some(code), error, retry_after_ms)
}

fn render_error(
    id: Option<&str>,
    code: Option<&str>,
    error: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut out = String::with_capacity(error.len() + 96);
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        out.push_str(&json::string(id));
        out.push(',');
    }
    out.push_str("\"status\":\"error\",");
    if let Some(code) = code {
        out.push_str("\"code\":");
        out.push_str(&json::string(code));
        out.push(',');
    }
    out.push_str("\"error\":");
    out.push_str(&json::string(error));
    if let Some(ms) = retry_after_ms {
        out.push_str(",\"retry_after_ms\":");
        out.push_str(&ms.to_string());
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_obfuscate_with_defaults() {
        let line = r#"{"op":"obfuscate","id":"j1","graph":"0 1 0.5\n","k":4}"#;
        match parse_request(line).unwrap() {
            Request::Job(JobRequest {
                spec:
                    JobSpec::Obfuscate {
                        k,
                        epsilon,
                        worlds,
                        trials,
                        threads,
                        seed,
                        ..
                    },
                id,
                timeout_ms,
                chunk_bytes,
            }) => {
                assert_eq!(id.as_deref(), Some("j1"));
                assert_eq!(timeout_ms, None);
                assert_eq!(chunk_bytes, 0);
                assert_eq!((k, worlds, trials, threads, seed), (4, 500, 5, 0, 42));
                assert!((epsilon - 0.01).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn defaults_share_a_cache_key_with_explicit_values() {
        let implicit = r#"{"op":"obfuscate","graph":"0 1 0.5\n","k":4}"#;
        let explicit = r#"{"op":"obfuscate","graph":"0 1 0.5\n","k":4,"epsilon":0.01,"method":"RSME","worlds":500,"trials":5,"seed":42,"threads":3}"#;
        let key = |line: &str| match parse_request(line).unwrap() {
            Request::Job(job) => job.spec.cache_key(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(key(implicit), key(explicit));
        // Streamed analysis is bit-identical to dense, so strip_worlds is
        // excluded from the cache key just like threads.
        let streamed = r#"{"op":"obfuscate","graph":"0 1 0.5\n","k":4,"strip_worlds":128}"#;
        assert_eq!(key(implicit), key(streamed));
    }

    #[test]
    fn batch_elements_parse_with_derived_ids_and_default_chunking() {
        let line = r#"{"op":"batch","id":"b","chunk_bytes":4096,"requests":[{"op":"check","graph":"0 1 0.5\n","k":2},{"op":"check","id":"own","graph":"0 1 0.5\n","k":2,"chunk_bytes":9000},{"op":"status"},{"op":"check","k":2}]}"#;
        match parse_request(line).unwrap() {
            Request::Batch { id, items } => {
                assert_eq!(id.as_deref(), Some("b"));
                assert_eq!(items.len(), 4);
                let first = items[0].as_ref().unwrap();
                assert_eq!(first.id.as_deref(), Some("b#0"));
                assert_eq!(first.chunk_bytes, 4096);
                let second = items[1].as_ref().unwrap();
                assert_eq!(second.id.as_deref(), Some("own"));
                assert_eq!(second.chunk_bytes, 9000);
                let (bad_id, bad_msg) = items[2].as_ref().err().unwrap();
                assert_eq!(bad_id.as_deref(), Some("b#2"));
                assert!(bad_msg.contains("not allowed inside a batch"));
                let (miss_id, miss_msg) = items[3].as_ref().err().unwrap();
                assert_eq!(miss_id.as_deref(), Some("b#3"));
                assert!(miss_msg.contains("graph"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_envelope_errors_are_whole_line_failures() {
        assert!(parse_request(r#"{"op":"batch"}"#).is_err());
        assert!(parse_request(r#"{"op":"batch","requests":[]}"#).is_err());
        assert!(parse_request(r#"{"op":"batch","requests":7}"#).is_err());
    }

    #[test]
    fn chunk_frames_reassemble_byte_for_byte() {
        let line = format!(
            "{{\"status\":\"ok\",\"cached\":false,\"result\":{{\"pad\":\"{}\"}}}}",
            "é".repeat(2000)
        );
        assert!(chunk_frames(Some("c"), &line, usize::MAX).is_none());
        let frames = chunk_frames(Some("c"), &line, 700).unwrap();
        assert!(frames.len() > 1);
        let mut rebuilt = String::new();
        for (i, frame) in frames.iter().enumerate() {
            let v = Json::parse(frame).unwrap();
            assert_eq!(v.get("id").and_then(Json::as_str), Some("c"));
            assert_eq!(v.get("status").and_then(Json::as_str), Some("chunk"));
            assert_eq!(v.get("seq").and_then(Json::as_u64), Some(i as u64));
            let last = frame.contains("\"last\":true");
            assert_eq!(last, i == frames.len() - 1);
            rebuilt.push_str(v.get("data").and_then(Json::as_str).unwrap());
        }
        assert_eq!(rebuilt, line);
        // The floor protects against degenerate frame sizes.
        let floored = chunk_frames(None, &line, 1).unwrap();
        assert!(floored.len() <= line.len() / CHUNK_FLOOR + 1);
    }

    #[test]
    fn missing_required_fields_are_reported_with_id() {
        let (id, msg) = parse_request(r#"{"op":"obfuscate","id":"x","graph":"0 1 0.5\n"}"#)
            .err()
            .unwrap();
        assert_eq!(id.as_deref(), Some("x"));
        assert!(msg.contains("\"k\""));
        let (_, msg) = parse_request(r#"{"op":"check","k":2}"#).err().unwrap();
        assert!(msg.contains("graph"));
    }

    #[test]
    fn unknown_op_and_bad_json_are_errors() {
        assert!(parse_request(r#"{"op":"fry"}"#).is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"graph":"0 1 0.5\n"}"#).is_err());
    }

    #[test]
    fn status_and_shutdown_parse() {
        assert!(matches!(
            parse_request(r#"{"op":"status"}"#).unwrap(),
            Request::Status { id: None }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown","id":"bye"}"#).unwrap(),
            Request::Shutdown { id: Some(_) }
        ));
    }

    #[test]
    fn responses_have_fixed_shape() {
        assert_eq!(
            ok_response(Some("a"), true, "{\"x\":1}"),
            r#"{"id":"a","status":"ok","cached":true,"result":{"x":1}}"#
        );
        assert_eq!(
            ok_response(None, false, "{}"),
            r#"{"status":"ok","cached":false,"result":{}}"#
        );
        assert_eq!(
            error_response(Some("a"), "queue full", Some(250)),
            r#"{"id":"a","status":"error","error":"queue full","retry_after_ms":250}"#
        );
        // Escaping goes through the shared encoder.
        assert_eq!(
            error_response(None, "bad \"k\"\n", None),
            "{\"status\":\"error\",\"error\":\"bad \\\"k\\\"\\n\"}"
        );
    }

    #[test]
    fn coded_errors_carry_the_code_field() {
        assert_eq!(
            coded_error_response(Some("a"), codes::QUEUE_FULL, "queue full", Some(250)),
            r#"{"id":"a","status":"error","code":"queue_full","error":"queue full","retry_after_ms":250}"#
        );
        assert_eq!(
            coded_error_response(None, codes::JOB_PANICKED, "boom", None),
            r#"{"status":"error","code":"job_panicked","error":"boom"}"#
        );
    }
}
