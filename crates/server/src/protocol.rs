//! The `chameleond` wire protocol: newline-delimited JSON over TCP.
//!
//! Grammar (one request object per line, one response object per line):
//!
//! ```text
//! request  = { "op": op, ["id": string], ["timeout_ms": int], params... }
//! op       = "obfuscate" | "check" | "reliability" | "status" | "shutdown"
//! response = { ["id": ...], "status": "ok", "cached": bool, "result": {...} }
//!          | { ["id": ...], "status": "error", "error": string,
//!              ["retry_after_ms": int] }
//! ```
//!
//! Job parameters are flat fields mirroring the CLI flags of the matching
//! subcommand, with the same defaults (`seed` 42, `worlds` 500, `trials`
//! 5, `threads` 0, anonymize `epsilon` 0.01, `method` "RSME"); defaults
//! are applied *here*, before cache-key derivation, so a request relying
//! on a default and one spelling it out share a cache entry. Graphs travel
//! inline as edge-list text in the `"graph"` field.
//!
//! Responses are rendered with the shared deterministic encoder
//! ([`chameleon_obs::json`]); for a fixed request, the `result` object is
//! byte-stable across runs, machines, thread counts, and cache state.

use crate::job::{AnonymizeMethod, JobSpec};
use chameleon_obs::json::{self, Json};

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Work for the queue/worker pool.
    Job {
        /// What to compute.
        spec: JobSpec,
        /// Client-chosen correlation id, echoed in the response.
        id: Option<String>,
        /// Per-job wall-clock budget override (ms).
        timeout_ms: Option<u64>,
    },
    /// Server introspection (answered inline, never queued).
    Status {
        /// Correlation id.
        id: Option<String>,
    },
    /// Begin graceful shutdown; the response is sent after the queue
    /// drains.
    Shutdown {
        /// Correlation id.
        id: Option<String>,
    },
}

/// Parse failure: the (possibly recovered) request id plus a message.
pub type ParseFailure = (Option<String>, String);

fn get_u64(v: &Json, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(field) => field
            .as_u64()
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

fn get_f64(v: &Json, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(field) => field
            .as_f64()
            .ok_or_else(|| format!("field {key:?} must be a number")),
    }
}

fn get_str(v: &Json, key: &str, default: &str) -> Result<String, String> {
    match v.get(key) {
        None => Ok(default.to_string()),
        Some(field) => field
            .as_str()
            .map(String::from)
            .ok_or_else(|| format!("field {key:?} must be a string")),
    }
}

fn require_graph(v: &Json) -> Result<String, String> {
    v.get("graph")
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or_else(|| "missing required string field \"graph\"".to_string())
}

/// Parses one request line.
///
/// # Errors
/// Returns the request id (when recoverable) and a message suitable for an
/// error response.
pub fn parse_request(line: &str) -> Result<Request, ParseFailure> {
    let v = Json::parse(line).map_err(|e| (None, format!("bad request JSON: {e}")))?;
    let id = v.get("id").and_then(Json::as_str).map(String::from);
    let fail = |msg: String| (id.clone(), msg);
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing required string field \"op\"".to_string()))?
        .to_string();
    let timeout_ms =
        match v.get("timeout_ms") {
            None => None,
            Some(t) => Some(t.as_u64().ok_or_else(|| {
                fail("field \"timeout_ms\" must be a non-negative integer".into())
            })?),
        };
    let spec = match op.as_str() {
        "status" => return Ok(Request::Status { id }),
        "shutdown" => return Ok(Request::Shutdown { id }),
        "obfuscate" => {
            let graph = require_graph(&v).map_err(&fail)?;
            let k = get_u64(&v, "k", 0).map_err(&fail)?;
            if k == 0 {
                return Err(fail("obfuscate requires \"k\" >= 1".into()));
            }
            let method = AnonymizeMethod::parse(&get_str(&v, "method", "RSME").map_err(&fail)?)
                .map_err(&fail)?;
            JobSpec::Obfuscate {
                graph,
                k: k as usize,
                epsilon: get_f64(&v, "epsilon", 0.01).map_err(&fail)?,
                method,
                worlds: get_u64(&v, "worlds", 500).map_err(&fail)? as usize,
                trials: get_u64(&v, "trials", 5).map_err(&fail)? as usize,
                threads: get_u64(&v, "threads", 0).map_err(&fail)? as usize,
                seed: get_u64(&v, "seed", 42).map_err(&fail)?,
            }
        }
        "check" => {
            let graph = require_graph(&v).map_err(&fail)?;
            let k = get_u64(&v, "k", 0).map_err(&fail)?;
            if k == 0 {
                return Err(fail("check requires \"k\" >= 1".into()));
            }
            JobSpec::Check {
                graph,
                k: k as usize,
                epsilon: get_f64(&v, "epsilon", 0.0).map_err(&fail)?,
                tolerance: get_u64(&v, "tolerance", 0).map_err(&fail)? as u32,
            }
        }
        "reliability" => JobSpec::Reliability {
            graph: require_graph(&v).map_err(&fail)?,
            worlds: get_u64(&v, "worlds", 500).map_err(&fail)? as usize,
            pairs: get_u64(&v, "pairs", 2000).map_err(&fail)? as usize,
            threads: get_u64(&v, "threads", 0).map_err(&fail)? as usize,
            seed: get_u64(&v, "seed", 42).map_err(&fail)?,
        },
        other => {
            return Err(fail(format!(
                "unknown op {other:?} (obfuscate|check|reliability|status|shutdown)"
            )))
        }
    };
    Ok(Request::Job {
        spec,
        id,
        timeout_ms,
    })
}

/// Renders a success response. `result` must already be a rendered JSON
/// object (the cacheable replay unit); the envelope field order is fixed.
pub fn ok_response(id: Option<&str>, cached: bool, result: &str) -> String {
    let mut out = String::with_capacity(result.len() + 64);
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        out.push_str(&json::string(id));
        out.push(',');
    }
    out.push_str("\"status\":\"ok\",\"cached\":");
    out.push_str(if cached { "true" } else { "false" });
    out.push_str(",\"result\":");
    out.push_str(result);
    out.push('}');
    out
}

/// Renders an error response; `retry_after_ms` marks retryable
/// backpressure rejections.
pub fn error_response(id: Option<&str>, error: &str, retry_after_ms: Option<u64>) -> String {
    render_error(id, None, error, retry_after_ms)
}

/// Machine-readable error categories carried in the optional `"code"`
/// response field. Clients branch on the code (retry policy, tests)
/// instead of string-matching the human-readable message; the presence
/// of `retry_after_ms` — not the code — is the retryability signal.
pub mod codes {
    /// Unparsable or semantically invalid request line.
    pub const BAD_REQUEST: &str = "bad_request";
    /// Request line exceeded the configured byte limit.
    pub const REQUEST_TOO_LARGE: &str = "request_too_large";
    /// A started request line stalled past the read deadline.
    pub const READ_TIMEOUT: &str = "read_timeout";
    /// Connection refused: too many open connections.
    pub const SERVER_BUSY: &str = "server_busy";
    /// Bounded queue at capacity (retryable).
    pub const QUEUE_FULL: &str = "queue_full";
    /// Daemon is draining for shutdown.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The job exceeded its wall-clock budget.
    pub const TIMEOUT: &str = "timeout";
    /// The job's cancel token was tripped explicitly (retryable — this is
    /// the injected-fault path, not a deadline).
    pub const CANCELLED: &str = "cancelled";
    /// The worker panicked while running the job (retryable; the panic
    /// was isolated and the worker survived).
    pub const JOB_PANICKED: &str = "job_panicked";
    /// The job ran and failed (bad input, pipeline failure).
    pub const JOB_FAILED: &str = "job_failed";
}

/// Renders an error response tagged with a machine-readable `code` (see
/// [`codes`]). Field order: `id?`, `status`, `code`, `error`,
/// `retry_after_ms?`.
pub fn coded_error_response(
    id: Option<&str>,
    code: &str,
    error: &str,
    retry_after_ms: Option<u64>,
) -> String {
    render_error(id, Some(code), error, retry_after_ms)
}

fn render_error(
    id: Option<&str>,
    code: Option<&str>,
    error: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut out = String::with_capacity(error.len() + 96);
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        out.push_str(&json::string(id));
        out.push(',');
    }
    out.push_str("\"status\":\"error\",");
    if let Some(code) = code {
        out.push_str("\"code\":");
        out.push_str(&json::string(code));
        out.push(',');
    }
    out.push_str("\"error\":");
    out.push_str(&json::string(error));
    if let Some(ms) = retry_after_ms {
        out.push_str(",\"retry_after_ms\":");
        out.push_str(&ms.to_string());
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_obfuscate_with_defaults() {
        let line = r#"{"op":"obfuscate","id":"j1","graph":"0 1 0.5\n","k":4}"#;
        match parse_request(line).unwrap() {
            Request::Job {
                spec:
                    JobSpec::Obfuscate {
                        k,
                        epsilon,
                        worlds,
                        trials,
                        threads,
                        seed,
                        ..
                    },
                id,
                timeout_ms,
            } => {
                assert_eq!(id.as_deref(), Some("j1"));
                assert_eq!(timeout_ms, None);
                assert_eq!((k, worlds, trials, threads, seed), (4, 500, 5, 0, 42));
                assert!((epsilon - 0.01).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn defaults_share_a_cache_key_with_explicit_values() {
        let implicit = r#"{"op":"obfuscate","graph":"0 1 0.5\n","k":4}"#;
        let explicit = r#"{"op":"obfuscate","graph":"0 1 0.5\n","k":4,"epsilon":0.01,"method":"RSME","worlds":500,"trials":5,"seed":42,"threads":3}"#;
        let key = |line: &str| match parse_request(line).unwrap() {
            Request::Job { spec, .. } => spec.cache_key(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(key(implicit), key(explicit));
    }

    #[test]
    fn missing_required_fields_are_reported_with_id() {
        let (id, msg) = parse_request(r#"{"op":"obfuscate","id":"x","graph":"0 1 0.5\n"}"#)
            .err()
            .unwrap();
        assert_eq!(id.as_deref(), Some("x"));
        assert!(msg.contains("\"k\""));
        let (_, msg) = parse_request(r#"{"op":"check","k":2}"#).err().unwrap();
        assert!(msg.contains("graph"));
    }

    #[test]
    fn unknown_op_and_bad_json_are_errors() {
        assert!(parse_request(r#"{"op":"fry"}"#).is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"graph":"0 1 0.5\n"}"#).is_err());
    }

    #[test]
    fn status_and_shutdown_parse() {
        assert!(matches!(
            parse_request(r#"{"op":"status"}"#).unwrap(),
            Request::Status { id: None }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown","id":"bye"}"#).unwrap(),
            Request::Shutdown { id: Some(_) }
        ));
    }

    #[test]
    fn responses_have_fixed_shape() {
        assert_eq!(
            ok_response(Some("a"), true, "{\"x\":1}"),
            r#"{"id":"a","status":"ok","cached":true,"result":{"x":1}}"#
        );
        assert_eq!(
            ok_response(None, false, "{}"),
            r#"{"status":"ok","cached":false,"result":{}}"#
        );
        assert_eq!(
            error_response(Some("a"), "queue full", Some(250)),
            r#"{"id":"a","status":"error","error":"queue full","retry_after_ms":250}"#
        );
        // Escaping goes through the shared encoder.
        assert_eq!(
            error_response(None, "bad \"k\"\n", None),
            "{\"status\":\"error\",\"error\":\"bad \\\"k\\\"\\n\"}"
        );
    }

    #[test]
    fn coded_errors_carry_the_code_field() {
        assert_eq!(
            coded_error_response(Some("a"), codes::QUEUE_FULL, "queue full", Some(250)),
            r#"{"id":"a","status":"error","code":"queue_full","error":"queue full","retry_after_ms":250}"#
        );
        assert_eq!(
            coded_error_response(None, codes::JOB_PANICKED, "boom", None),
            r#"{"status":"error","code":"job_panicked","error":"boom"}"#
        );
    }
}
