//! The daemon: a single-threaded poll reactor → bounded job queue →
//! worker pool, with a result cache, per-job deadlines, and graceful
//! drain-on-shutdown.
//!
//! Connection layer (DESIGN.md §9): one event loop owns every socket in
//! nonblocking mode and multiplexes readiness through `poll(2)` (see
//! [`crate::reactor`]). Each connection carries a read buffer (partial
//! line), a write buffer (pending responses) and a small state machine
//! (`open → close-after-flush → closed`); complete request lines are
//! parsed and dispatched on the reactor thread, job work is executed on
//! the worker pool, and workers hand finished responses back over an
//! `mpsc` channel plus a self-pipe wakeup. Responses to pipelined
//! requests interleave in completion order, correlated by the request
//! `id`; a `batch` request rides the queue as one entry whose elements
//! are answered individually.
//!
//! Job lifecycle: `received → queued → running → (completed | failed |
//! timed_out | panicked | cancelled)`, or `rejected` straight from
//! `received` when the queue is full or shutdown has begun. Every
//! transition is visible through `chameleon_obs` sites (`server.*` /
//! `server.reactor.*` counters) *and* through plain atomics so `status`
//! works even in a no-obs build.
//!
//! Robustness contract (DESIGN.md §8): no client behaviour and no worker
//! panic may take the daemon down or wedge it. Concretely:
//!
//! * job execution runs under `catch_unwind` — a panicking job answers a
//!   structured retryable `job_panicked` error and the worker survives;
//! * the queue and cache locks recover from poisoning
//!   ([`crate::sync::RecoverableMutex`]) instead of propagating it;
//! * request lines are buffered under a byte cap (`max_request_bytes`)
//!   and a per-line deadline (`read_timeout_ms`, tracked as poll-timeout
//!   bookkeeping): oversized and slow-dribbling (slowloris) clients get
//!   structured errors instead of unbounded allocation or a pinned
//!   reactor;
//! * the connection slab is bounded (`max_connections`); excess
//!   connections get a `server_busy` error line written best-effort from
//!   the reactor — no thread is ever spawned per connection;
//! * a client that stops reading its responses trips a write-stall
//!   deadline and is disconnected instead of growing its buffer forever;
//! * optional seeded fault injection ([`crate::faults`]) drives all of
//!   the above deterministically — including reactor-level deferred
//!   readiness and short writes — in tests and chaos runs.
//!
//! Shutdown sequence (triggered by a `shutdown` request): set the flag —
//! the reactor stops accepting and job submission starts rejecting —
//! then wait until the queue is drained (queued = in-flight = 0), flush
//! every already-completed response, answer the shutdown request, give
//! the flush a bounded grace period, close the queue so workers exit,
//! join them, and write the final metrics snapshot. A stalled client can
//! never wedge this: every wait is poll-timeout bounded.
//!
//! Determinism contract: job execution and response rendering are
//! identical to the CLI path (`process_job` runs the same library entry
//! points and the shared deterministic encoder), so for a fixed request
//! the `result` object is byte-identical across thread counts, cache
//! state, pipelining, batching and chunking — the reactor only moves
//! bytes, it never feeds an RNG stream.

use crate::cache::ResultCache;
use crate::faults::{FaultInjector, FaultPlan, JobFault};
use crate::job::{Durability, ExecError};
use crate::journal::{Journal, JournalSync};
use crate::protocol::{
    chunk_frames, coded_error_response, codes, ok_response, parse_request, JobRequest, Request,
};
use crate::queue::{BoundedQueue, PushError};
use crate::reactor::{PollSet, Waker, Wakeup, POLLIN, POLLOUT};
use crate::sync::RecoverableMutex;
use chameleon_core::{CancelReason, CancelToken};
use chameleon_obs::json;
use chameleon_stats::SeedSequence;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Idle poll timeout: the loop wakes at least this often to re-check
/// deadlines and the shutdown flag even with no I/O and no wakeups.
const IDLE_POLL: Duration = Duration::from_millis(500);

/// Poll timeout while a shutdown waits for the queue to drain.
const DRAIN_POLL: Duration = Duration::from_millis(5);

/// Per-connection write-stall deadline: a client that stops reading its
/// responses gets its connection dropped instead of growing the write
/// buffer forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Bounded grace period for flushing final responses after the shutdown
/// request is answered; a vanished client cannot wedge shutdown.
const FLUSH_GRACE: Duration = Duration::from_secs(2);

/// Suggested client backoff after an injected/transient worker fault.
const FAULT_RETRY_MS: u64 = 50;

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads (0 = one per hardware thread).
    pub workers: usize,
    /// Bounded queue depth; a full queue rejects with `retry_after_ms`.
    /// A `batch` request occupies one slot regardless of size.
    pub queue_depth: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Default per-job wall-clock budget when the request has no
    /// `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Where the final metrics snapshot is flushed during shutdown.
    pub metrics_path: Option<String>,
    /// Maximum bytes in one request line (floor 64). An over-limit line
    /// answers a structured `request_too_large` error and closes the
    /// connection instead of allocating without bound.
    pub max_request_bytes: usize,
    /// Deadline for completing a request line once its first byte
    /// arrived, in ms (0 = no deadline). A stalled (slowloris) client
    /// gets a structured `read_timeout` error and is disconnected.
    pub read_timeout_ms: u64,
    /// Maximum concurrently open connections (0 = unlimited). Excess
    /// connections receive a `server_busy` error line and are closed.
    pub max_connections: usize,
    /// Maximum elements in one `batch` request (0 = unlimited). A larger
    /// batch answers a single `batch_too_large` error.
    pub max_batch: usize,
    /// Deterministic fault-injection schedule (chaos testing only;
    /// `None` in production).
    pub faults: Option<FaultPlan>,
    /// Durability (DESIGN.md §11): directory holding the write-ahead job
    /// journal. `None` disables journaling entirely.
    pub journal_dir: Option<String>,
    /// Journal fsync policy: `Always` syncs every append, `Interval`
    /// batches syncs on the reactor tick (bounded loss window).
    pub journal_sync: JournalSync,
    /// Journal segment rotation threshold in bytes.
    pub journal_segment_bytes: u64,
    /// On startup, re-enqueue accepted-but-incomplete journaled jobs in
    /// their original order instead of marking them cancelled.
    pub resume: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_depth: 64,
            cache_capacity: 256,
            default_timeout_ms: 300_000,
            metrics_path: None,
            max_request_bytes: 16 * 1024 * 1024,
            read_timeout_ms: 30_000,
            max_connections: 256,
            max_batch: 1024,
            faults: None,
            journal_dir: None,
            journal_sync: JournalSync::Interval,
            journal_segment_bytes: crate::journal::DEFAULT_SEGMENT_BYTES,
            resume: false,
        }
    }
}

/// Lifetime totals returned by [`Server::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Jobs answered successfully (cache hits included).
    pub jobs_completed: u64,
    /// Jobs that ran and failed (bad input, pipeline failure).
    pub jobs_failed: u64,
    /// Jobs rejected at admission (queue full or shutting down).
    pub jobs_rejected: u64,
    /// Jobs cancelled at their deadline.
    pub jobs_timed_out: u64,
    /// Jobs whose execution panicked (isolated; the worker survived).
    pub jobs_panicked: u64,
    /// Jobs whose cancel token was tripped explicitly (injected faults —
    /// deadline trips count under `jobs_timed_out`).
    pub jobs_cancelled: u64,
}

/// Identifies a connection slab slot at a point in time: the generation
/// counter makes completions for a closed-and-reused slot harmlessly
/// undeliverable instead of landing on the wrong client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ConnToken {
    idx: usize,
    gen: u64,
}

/// Token used for jobs re-enqueued from the journal at startup: no live
/// connection owns them, so their completions are harmlessly dropped by
/// the stale-token check (`usize::MAX` never indexes the slab).
const REPLAY_TOKEN: ConnToken = ConnToken {
    idx: usize::MAX,
    gen: 0,
};

/// One job of a queue entry (a single request is a one-element entry).
struct QueuedJob {
    spec: crate::job::JobSpec,
    id: Option<String>,
    timeout: Duration,
    chunk_bytes: usize,
    /// Journal sequence number when durability is on (`accepted` already
    /// written); reused for the job's remaining lifecycle records.
    journal_seq: Option<u64>,
    /// Serialized `SearchCheckpoint` recovered from the journal: a
    /// resumed GenObf search skips the recorded σ probes.
    resume_checkpoint: Option<String>,
}

/// One bounded-queue entry: all jobs of one request line.
struct Job {
    items: Vec<QueuedJob>,
    token: ConnToken,
    enqueued: Instant,
}

/// A worker's finished queue entry: the rendered wire bytes (one or more
/// newline-terminated response/chunk lines) plus how many in-flight jobs
/// it settles on the owning connection.
struct Completion {
    token: ConnToken,
    wire: Vec<u8>,
    jobs: usize,
}

struct Shared {
    queue: BoundedQueue<Job>,
    cache: RecoverableMutex<ResultCache>,
    shutting_down: AtomicBool,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_timed_out: AtomicU64,
    jobs_panicked: AtomicU64,
    jobs_cancelled: AtomicU64,
    open_connections: AtomicUsize,
    workers: usize,
    queue_depth: usize,
    default_timeout: Duration,
    max_request_bytes: usize,
    read_timeout: Option<Duration>,
    max_connections: usize,
    max_batch: usize,
    faults: Option<FaultInjector>,
    /// The write-ahead job journal (DESIGN.md §11), when durability is
    /// on. Locked briefly per lifecycle record, never across execution.
    journal: Option<RecoverableMutex<Journal>>,
    /// Startup-replay totals, fixed after `bind`.
    journal_replayed_jobs: u64,
    journal_rehydrated_results: u64,
    journal_records_dropped: u64,
    /// σ probes skipped via checkpoint resume, summed over all jobs.
    journal_probes_skipped: AtomicU64,
    started: Instant,
}

impl Shared {
    fn report(&self) -> ServerReport {
        ServerReport {
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_timed_out: self.jobs_timed_out.load(Ordering::Relaxed),
            jobs_panicked: self.jobs_panicked.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
        }
    }

    /// `status` result object; field order is fixed by construction.
    fn status_json(&self) -> String {
        // One lock acquisition for the queued/active pair: separate len()
        // and active() reads could report a job in both places (or
        // neither) while a worker moves it between them.
        let queue = self.queue.snapshot();
        let cache = self.cache.lock().stats();
        let journal = self.journal.as_ref().map(|j| j.lock().stats());
        let (injected_panics, injected_cancels, injected_defers, injected_short_writes) =
            match &self.faults {
                Some(f) => (
                    f.injected_panics(),
                    f.injected_cancels(),
                    f.injected_defers(),
                    f.injected_short_writes(),
                ),
                None => (0, 0, 0, 0),
            };
        format!(
            "{{\"uptime_ms\":{},\"workers\":{},\"queue_depth\":{},\"queue_capacity\":{},\
             \"in_flight\":{},\"jobs_completed\":{},\"jobs_failed\":{},\"jobs_rejected\":{},\
             \"jobs_timed_out\":{},\"jobs_panicked\":{},\"jobs_cancelled\":{},\
             \"open_connections\":{},\"locks_recovered\":{},\"shutting_down\":{},\
             \"faults\":{{\"injected_panics\":{},\"injected_cancels\":{},\
             \"injected_defers\":{},\"injected_short_writes\":{}}},\
             \"cache\":{{\"entries\":{},\"capacity\":{},\"hits\":{},\"misses\":{},\
             \"evictions\":{}}},\
             \"journal\":{{\"enabled\":{},\"open_jobs\":{},\"segments\":{},\
             \"appends\":{},\"syncs\":{},\"replayed_jobs\":{},\
             \"rehydrated_results\":{},\"records_dropped\":{},\
             \"probes_skipped\":{}}}}}",
            self.started.elapsed().as_millis(),
            self.workers,
            queue.queued,
            self.queue_depth,
            queue.active,
            self.jobs_completed.load(Ordering::Relaxed),
            self.jobs_failed.load(Ordering::Relaxed),
            self.jobs_rejected.load(Ordering::Relaxed),
            self.jobs_timed_out.load(Ordering::Relaxed),
            self.jobs_panicked.load(Ordering::Relaxed),
            self.jobs_cancelled.load(Ordering::Relaxed),
            self.open_connections.load(Ordering::Relaxed),
            crate::sync::poison_recoveries(),
            self.shutting_down.load(Ordering::Relaxed),
            injected_panics,
            injected_cancels,
            injected_defers,
            injected_short_writes,
            cache.entries,
            cache.capacity,
            cache.hits,
            cache.misses,
            cache.evictions,
            journal.is_some(),
            journal.as_ref().map_or(0, |s| s.open_jobs as u64),
            journal.as_ref().map_or(0, |s| s.segments),
            journal.as_ref().map_or(0, |s| s.appends),
            journal.as_ref().map_or(0, |s| s.syncs),
            self.journal_replayed_jobs,
            self.journal_rehydrated_results,
            self.journal_records_dropped,
            self.journal_probes_skipped.load(Ordering::Relaxed),
        )
    }
}

/// A bound-but-not-yet-running `chameleond` instance.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    metrics_path: Option<String>,
}

/// Handle to a server running on a background thread (see
/// [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<ServerReport>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down.
    ///
    /// # Errors
    /// Propagates the run loop's I/O error, if any.
    pub fn join(self) -> std::io::Result<ServerReport> {
        self.thread.join().expect("server thread panicked")
    }
}

impl Server {
    /// Binds the listener (without accepting yet).
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        // Durability: open (and replay) the journal before anything else
        // can accept work, so recovered state is complete by the time the
        // port goes live.
        let mut replay = None;
        let journal = match &config.journal_dir {
            Some(dir) => {
                let (journal, summary) = Journal::open(
                    std::path::Path::new(dir),
                    config.journal_sync,
                    config.journal_segment_bytes,
                )?;
                replay = Some(summary);
                Some(RecoverableMutex::new(journal))
            }
            None => None,
        };
        // Rehydrate the result cache from `completed` records: a restart
        // serves previously answered jobs byte-identically, from memory.
        let mut cache = ResultCache::new(config.cache_capacity);
        let mut rehydrated = 0u64;
        if let Some(summary) = &replay {
            for (key, result) in &summary.completed {
                cache.insert(key.clone(), result.as_str().into());
            }
            rehydrated = summary.completed.len() as u64;
            chameleon_obs::counter!("server.journal.rehydrated_results").add(rehydrated);
            chameleon_obs::counter!("server.journal.records_dropped").add(summary.records_dropped);
        }
        // Re-enqueue accepted-but-incomplete jobs in their original
        // acceptance order (`--resume`), or mark them cancelled so the
        // journal converges instead of replaying them forever.
        let queue = BoundedQueue::new(config.queue_depth);
        let default_timeout = Duration::from_millis(config.default_timeout_ms.max(1));
        let mut replayed_jobs = 0u64;
        if let (Some(journal), Some(summary)) = (&journal, replay.as_mut()) {
            let mut j = journal.lock();
            for job in summary.jobs.drain(..) {
                if !config.resume {
                    j.cancelled(job.seq);
                    continue;
                }
                let timeout = job
                    .timeout_ms
                    .map(|ms| Duration::from_millis(ms.max(1)))
                    .unwrap_or(default_timeout);
                let entry = Job {
                    items: vec![QueuedJob {
                        spec: job.spec,
                        id: None,
                        timeout,
                        chunk_bytes: 0,
                        journal_seq: Some(job.seq),
                        resume_checkpoint: job.checkpoint,
                    }],
                    token: REPLAY_TOKEN,
                    enqueued: Instant::now(),
                };
                match queue.try_push(entry) {
                    Ok(_) => {
                        replayed_jobs += 1;
                        chameleon_obs::counter!("server.journal.replayed_jobs").add(1);
                    }
                    Err(_) => {
                        // More incomplete jobs than queue slots: fail the
                        // overflow durably rather than wedging startup.
                        j.failed(
                            job.seq,
                            codes::QUEUE_FULL,
                            "recovery overflow: queue full during journal replay",
                        );
                    }
                }
            }
        }
        let shared = Arc::new(Shared {
            queue,
            cache: RecoverableMutex::new(cache),
            journal,
            journal_replayed_jobs: replayed_jobs,
            journal_rehydrated_results: rehydrated,
            journal_records_dropped: replay.as_ref().map_or(0, |s| s.records_dropped),
            journal_probes_skipped: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_timed_out: AtomicU64::new(0),
            jobs_panicked: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            open_connections: AtomicUsize::new(0),
            workers,
            queue_depth: config.queue_depth.max(1),
            default_timeout,
            max_request_bytes: config.max_request_bytes.max(64),
            read_timeout: (config.read_timeout_ms > 0)
                .then(|| Duration::from_millis(config.read_timeout_ms)),
            max_connections: if config.max_connections == 0 {
                usize::MAX
            } else {
                config.max_connections
            },
            max_batch: if config.max_batch == 0 {
                usize::MAX
            } else {
                config.max_batch
            },
            faults: config
                .faults
                .filter(FaultPlan::is_active)
                .map(FaultInjector::new),
            started: Instant::now(),
        });
        Ok(Server {
            listener,
            shared,
            metrics_path: config.metrics_path,
        })
    }

    /// The bound address.
    ///
    /// # Panics
    /// Never in practice (the listener is bound).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// Binds and runs on a background thread; returns once the port is
    /// live.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let addr = server.local_addr();
        let thread = std::thread::Builder::new()
            .name("chameleond-reactor".into())
            .spawn(move || server.run())
            .expect("spawn reactor thread");
        Ok(ServerHandle { addr, thread })
    }

    /// Serves until a `shutdown` request completes: runs the reactor
    /// event loop, drains the queue on shutdown, joins the workers, and
    /// flushes the final metrics snapshot.
    ///
    /// # Errors
    /// Propagates fatal reactor I/O errors (`poll` failures, listener
    /// errors other than transient accept races).
    pub fn run(self) -> std::io::Result<ServerReport> {
        let Server {
            listener,
            shared,
            metrics_path,
        } = self;
        let wakeup = Wakeup::new()?;
        let (tx, rx) = mpsc::channel::<Completion>();
        let worker_handles: Vec<_> = (0..shared.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                let waker = wakeup.waker().expect("clone waker");
                std::thread::Builder::new()
                    .name(format!("chameleond-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &tx, &waker))
                    .expect("spawn worker")
            })
            .collect();
        drop(tx);
        listener.set_nonblocking(true)?;
        let mut reactor = Reactor {
            listener,
            wakeup,
            completions: rx,
            shared: Arc::clone(&shared),
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            shutdown_requested: false,
            shutdown_waiters: Vec::new(),
            shutdown_answered: false,
            exit_deadline: None,
            poll: PollSet::new(),
            conn_slots: Vec::new(),
            scratch: vec![0u8; 64 * 1024],
        };
        let run_result = reactor.run();
        drop(reactor);
        // Workers exit once the queue closes; any completion they send
        // into the dropped channel is discarded.
        shared.queue.close();
        for handle in worker_handles {
            let _ = handle.join();
        }
        // Clean shutdown: every queued job has settled, so compaction can
        // drop fully-terminal segments and fsync what remains — the next
        // start replays zero jobs.
        if let Some(journal) = &shared.journal {
            journal.lock().compact();
        }
        if let Some(path) = &metrics_path {
            let _ = std::fs::write(path, chameleon_obs::metrics_json());
        }
        run_result?;
        Ok(shared.report())
    }
}

/// One connection owned by the reactor.
struct Conn {
    stream: TcpStream,
    gen: u64,
    /// Partial request line (bytes up to, not including, the next `\n`).
    rbuf: Vec<u8>,
    /// Pending outbound bytes; `wpos` is the already-written prefix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Armed when `rbuf` holds a started line and a read timeout is
    /// configured; cleared when the line completes.
    line_deadline: Option<Instant>,
    /// Jobs dispatched to the queue whose completions are still owed.
    in_flight: usize,
    /// Terminal *error* state (oversized line, read timeout, truncated
    /// request, shutdown answer): flush `wbuf`, then close. No further
    /// lines are parsed and later job completions are suppressed, so
    /// the error reply is deterministically the connection's final
    /// line. A clean EOF never sets this — see `read_closed`.
    close_after_flush: bool,
    /// Peer half-closed its write side (clean EOF). The connection
    /// turns write-only: lines received before the FIN are still
    /// dispatched, in-flight completions are still delivered, and the
    /// socket closes once `in_flight` and `wbuf` both drain.
    read_closed: bool,
    /// Last time a write made progress (or data was first queued);
    /// drives the write-stall deadline.
    last_progress: Instant,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64) -> Self {
        Self {
            stream,
            gen,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            line_deadline: None,
            in_flight: 0,
            close_after_flush: false,
            read_closed: false,
            last_progress: Instant::now(),
        }
    }

    fn has_pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// Appends one newline-terminated response line to the connection's
/// write buffer.
fn push_line(conn: &mut Conn, line: &str) {
    if !conn.has_pending_write() {
        conn.last_progress = Instant::now();
    }
    conn.wbuf.extend_from_slice(line.as_bytes());
    conn.wbuf.push(b'\n');
}

/// Appends already newline-terminated wire bytes (worker completions).
fn push_wire(conn: &mut Conn, wire: &[u8]) {
    if !conn.has_pending_write() {
        conn.last_progress = Instant::now();
    }
    conn.wbuf.extend_from_slice(wire);
}

/// Best-effort `server_busy` rejection written from the reactor without
/// occupying a slab slot; the socket is nonblocking, so a full buffer
/// just drops the notice.
fn reject_busy(stream: &TcpStream, limit: usize) {
    let mut line = coded_error_response(
        None,
        codes::SERVER_BUSY,
        &format!("connection limit reached ({limit} open connections); retry later"),
        Some(200),
    );
    line.push('\n');
    let _ = (&*stream).write(line.as_bytes());
}

/// The event loop: owns the listener, the connection slab, the wakeup
/// pipe and the completion channel.
struct Reactor {
    listener: TcpListener,
    wakeup: Wakeup,
    completions: mpsc::Receiver<Completion>,
    shared: Arc<Shared>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
    shutdown_requested: bool,
    shutdown_waiters: Vec<(ConnToken, Option<String>)>,
    shutdown_answered: bool,
    exit_deadline: Option<Instant>,
    poll: PollSet,
    /// Scratch mapping of poll-set slot → slab index, rebuilt per tick.
    conn_slots: Vec<(usize, usize)>,
    /// Scratch read buffer shared by all connections.
    scratch: Vec<u8>,
}

impl Reactor {
    fn run(&mut self) -> std::io::Result<()> {
        loop {
            self.answer_shutdown_when_drained();
            if self.exit_ready() {
                return Ok(());
            }
            self.tick()?;
        }
    }

    /// One poll cycle: build the registration set, wait for readiness,
    /// then service wakeups, completions, accepts, reads, deadlines and
    /// writes in that order.
    fn tick(&mut self) -> std::io::Result<()> {
        self.poll.clear();
        self.conn_slots.clear();
        let wake_slot = self.poll.register(self.wakeup.fd(), POLLIN);
        let listen_slot = if self.shutdown_requested {
            None
        } else {
            Some(self.poll.register(self.listener.as_raw_fd(), POLLIN))
        };
        for (idx, conn) in self.conns.iter().enumerate() {
            let Some(conn) = conn else { continue };
            let mut events: i16 = 0;
            if !conn.read_closed {
                events |= POLLIN;
            }
            if conn.has_pending_write() {
                events |= POLLOUT;
            }
            if events != 0 {
                self.conn_slots
                    .push((self.poll.register(conn.stream.as_raw_fd(), events), idx));
            }
        }
        let timeout = self.poll_timeout();
        self.poll.poll(Some(timeout))?;
        chameleon_obs::counter!("server.reactor.ticks").add(1);

        if self.poll.revents(wake_slot).readable() {
            chameleon_obs::counter!("server.reactor.wakeups").add(1);
            self.wakeup.drain();
        }
        self.drain_completions();
        for k in 0..self.conn_slots.len() {
            let (slot, idx) = self.conn_slots[k];
            let readable = self.poll.revents(slot).readable();
            if readable {
                self.read_ready(idx);
            }
        }
        self.service_timers_and_flush();
        // Accept *after* reads and reaping: a connection closed in this
        // same tick must free its slot before the busy check, or a
        // back-to-back close-then-connect client gets a spurious
        // `server_busy`.
        if let Some(slot) = listen_slot {
            if self.poll.revents(slot).readable() {
                self.accept_ready()?;
            }
        }
        // Interval-mode journal housekeeping: the tick is the daemon's
        // heartbeat, so the fsync loss window is bounded by the poll
        // timeout plus the sync interval.
        if let Some(journal) = &self.shared.journal {
            journal.lock().maybe_sync();
        }
        Ok(())
    }

    /// The next poll timeout: tight while draining for shutdown,
    /// otherwise the nearest read/write/exit deadline, capped at the
    /// idle tick.
    fn poll_timeout(&self) -> Duration {
        if self.shutdown_requested && !self.shutdown_answered {
            return DRAIN_POLL;
        }
        let now = Instant::now();
        let mut nearest: Option<Instant> = self.exit_deadline;
        for conn in self.conns.iter().flatten() {
            if let Some(d) = conn.line_deadline {
                nearest = Some(nearest.map_or(d, |n| n.min(d)));
            }
            if conn.has_pending_write() {
                let d = conn.last_progress + WRITE_TIMEOUT;
                nearest = Some(nearest.map_or(d, |n| n.min(d)));
            }
        }
        match nearest {
            Some(d) => d
                .saturating_duration_since(now)
                .max(Duration::from_millis(1))
                .min(IDLE_POLL),
            None => IDLE_POLL,
        }
    }

    /// Routes finished queue entries to their connections. Stale tokens
    /// (closed or reused slots) are dropped — exactly the old
    /// disconnected-client semantics.
    fn drain_completions(&mut self) {
        while let Ok(done) = self.completions.try_recv() {
            chameleon_obs::counter!("server.reactor.completions").add(1);
            let Some(conn) = self.conns.get_mut(done.token.idx).and_then(Option::as_mut) else {
                continue;
            };
            if conn.gen != done.token.gen {
                continue;
            }
            conn.in_flight = conn.in_flight.saturating_sub(done.jobs);
            // Error closures suppress late completions — the queued
            // error reply stays the final line. A half-closed client
            // (`read_closed` without the error state) still gets every
            // owed response: it sent FIN, not a protocol violation.
            if conn.close_after_flush {
                continue;
            }
            push_wire(conn, &done.wire);
        }
    }

    fn accept_ready(&mut self) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    chameleon_obs::counter!("server.connections").add(1);
                    let _ = stream.set_nonblocking(true);
                    // Request/response alternation deadlocks with Nagle +
                    // delayed ACK into ~40 ms stalls per round-trip.
                    let _ = stream.set_nodelay(true);
                    if self.shared.open_connections.load(Ordering::Relaxed)
                        >= self.shared.max_connections
                    {
                        chameleon_obs::counter!("server.conn.rejected_busy").add(1);
                        reject_busy(&stream, self.shared.max_connections);
                        continue;
                    }
                    self.insert_conn(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                // A peer that aborted between SYN and accept is its
                // problem, not a reason to die (common under soak load).
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::Interrupted
                            | std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn insert_conn(&mut self, stream: TcpStream) {
        self.next_gen += 1;
        let conn = Conn::new(stream, self.next_gen);
        let idx = match self.free.pop() {
            Some(idx) => {
                self.conns[idx] = Some(conn);
                idx
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        let _ = idx;
        self.shared.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    fn close_conn(&mut self, idx: usize) {
        if self.conns[idx].take().is_some() {
            self.free.push(idx);
            self.shared.open_connections.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Reads everything currently available on one connection, extracts
    /// complete lines and dispatches them. Level-triggered readiness
    /// makes the deferred-readiness fault safe: a skipped tick is
    /// re-signalled on the next poll.
    ///
    /// Terminal events (EOF, an oversized line, an I/O error) are only
    /// *recorded* inside the read loop and acted on after every complete
    /// line already extracted from the same burst has been dispatched —
    /// a client may legally write its requests and immediately shut down
    /// its write side, and DESIGN.md §9.2 promises every complete line a
    /// response regardless of how that FIN races the poll tick.
    fn read_ready(&mut self, idx: usize) {
        if let Some(injector) = &self.shared.faults {
            if injector.next_deferred_ready() {
                chameleon_obs::counter!("server.reactor.deferred_ready").add(1);
                return;
            }
        }
        let mut lines: Vec<Vec<u8>> = Vec::new();
        let mut fatal = false;
        let mut overflow = false;
        let mut truncated_bytes: Option<usize> = None;
        loop {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    if !conn.rbuf.is_empty() && !conn.close_after_flush && !overflow {
                        chameleon_obs::counter!("server.conn.truncated").add(1);
                        truncated_bytes = Some(conn.rbuf.len());
                        conn.rbuf.clear();
                        conn.line_deadline = None;
                    }
                    break;
                }
                Ok(n) => {
                    if conn.close_after_flush || overflow {
                        // Terminal state: drain and discard so the error
                        // response is not torn down by a reset.
                        continue;
                    }
                    conn.rbuf.extend_from_slice(&self.scratch[..n]);
                    while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
                        let mut line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
                        line.pop();
                        if line.last() == Some(&b'\r') {
                            line.pop();
                        }
                        if line.len() > self.shared.max_request_bytes {
                            overflow = true;
                            break;
                        }
                        lines.push(line);
                    }
                    if conn.rbuf.len() > self.shared.max_request_bytes {
                        overflow = true;
                    }
                    if overflow {
                        chameleon_obs::counter!("server.conn.request_too_large").add(1);
                        conn.rbuf.clear();
                        conn.line_deadline = None;
                        continue;
                    }
                    if conn.rbuf.is_empty() {
                        conn.line_deadline = None;
                    } else if conn.line_deadline.is_none() {
                        conn.line_deadline = self.shared.read_timeout.map(|t| Instant::now() + t);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    fatal = true;
                    break;
                }
            }
        }
        // Dispatch first: every line in `lines` was complete before any
        // terminal event in this burst. Immediate replies land in the
        // outbuf ahead of whatever error line the event queues below.
        for line in lines {
            if self.conns[idx].is_none() {
                return;
            }
            self.handle_line(idx, line);
        }
        if fatal {
            self.close_conn(idx);
            return;
        }
        if let Some(conn) = self.conns[idx].as_mut() {
            if let Some(bytes) = truncated_bytes {
                push_line(
                    conn,
                    &coded_error_response(
                        None,
                        codes::BAD_REQUEST,
                        &format!("truncated request: {bytes} bytes without a newline before EOF"),
                        None,
                    ),
                );
                conn.close_after_flush = true;
            }
            if overflow {
                push_line(
                    conn,
                    &coded_error_response(
                        None,
                        codes::REQUEST_TOO_LARGE,
                        &format!(
                            "request line exceeds the {} byte limit",
                            self.shared.max_request_bytes
                        ),
                        None,
                    ),
                );
                conn.close_after_flush = true;
            }
        }
        // Clean EOF with nothing owed closes immediately; with jobs in
        // flight or bytes buffered the connection stays in write-drain
        // (reaped by `service_timers_and_flush` once both hit zero).
        let drained = self.conns[idx].as_ref().is_some_and(|c| {
            c.read_closed && !c.close_after_flush && c.in_flight == 0 && !c.has_pending_write()
        });
        if drained {
            self.close_conn(idx);
        }
    }

    /// Parses and dispatches one complete request line.
    fn handle_line(&mut self, idx: usize, raw: Vec<u8>) {
        let shared = Arc::clone(&self.shared);
        let gen = match self.conns[idx].as_ref() {
            Some(c) => c.gen,
            None => return,
        };
        let token = ConnToken { idx, gen };
        let line = match String::from_utf8(raw) {
            Ok(line) => line,
            Err(_) => {
                chameleon_obs::counter!("server.conn.bad_utf8").add(1);
                // Resynced at the newline — the connection survives.
                let resp = coded_error_response(
                    None,
                    codes::BAD_REQUEST,
                    "request line is not valid UTF-8",
                    None,
                );
                if let Some(conn) = self.conns[idx].as_mut() {
                    push_line(conn, &resp);
                }
                return;
            }
        };
        if line.trim().is_empty() {
            return;
        }
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err((id, msg)) => {
                let resp = coded_error_response(id.as_deref(), codes::BAD_REQUEST, &msg, None);
                if let Some(conn) = self.conns[idx].as_mut() {
                    push_line(conn, &resp);
                }
                return;
            }
        };
        match request {
            Request::Status { id } => {
                let resp = ok_response(id.as_deref(), false, &shared.status_json());
                if let Some(conn) = self.conns[idx].as_mut() {
                    push_line(conn, &resp);
                }
            }
            Request::Shutdown { id } => {
                chameleon_obs::counter!("server.shutdown_requests").add(1);
                shared.shutting_down.store(true, Ordering::Release);
                self.shutdown_requested = true;
                self.shutdown_waiters.push((token, id));
            }
            Request::Job(job) => {
                if let Some(conn) = self.conns[idx].as_mut() {
                    submit_jobs(&shared, conn, token, vec![Ok(job)]);
                }
            }
            Request::Batch { id, items } => {
                if items.len() > shared.max_batch {
                    shared
                        .jobs_rejected
                        .fetch_add(items.len() as u64, Ordering::Relaxed);
                    chameleon_obs::counter!("server.jobs.rejected_batch").add(items.len() as u64);
                    let resp = coded_error_response(
                        id.as_deref(),
                        codes::BATCH_TOO_LARGE,
                        &format!(
                            "batch of {} elements exceeds the {} element limit",
                            items.len(),
                            shared.max_batch
                        ),
                        None,
                    );
                    if let Some(conn) = self.conns[idx].as_mut() {
                        push_line(conn, &resp);
                    }
                    return;
                }
                chameleon_obs::counter!("server.jobs.batched").add(items.len() as u64);
                if let Some(conn) = self.conns[idx].as_mut() {
                    submit_jobs(&shared, conn, token, items);
                }
            }
        }
    }

    /// Once the queue drains after a shutdown request: flush every
    /// already-completed job response into its write buffer *first*,
    /// then answer the waiters and start the bounded exit grace period.
    fn answer_shutdown_when_drained(&mut self) {
        if !self.shutdown_requested || self.shutdown_answered {
            return;
        }
        if !self.shared.queue.is_drained() {
            return;
        }
        // Workers send the completion before marking the task done, so a
        // drained queue means every response is already in the channel.
        self.drain_completions();
        let report = self.shared.report();
        let result = format!(
            "{{\"drained\":true,\"jobs_completed\":{},\"jobs_failed\":{},\
             \"jobs_rejected\":{},\"jobs_timed_out\":{},\"jobs_panicked\":{},\
             \"jobs_cancelled\":{}}}",
            report.jobs_completed,
            report.jobs_failed,
            report.jobs_rejected,
            report.jobs_timed_out,
            report.jobs_panicked,
            report.jobs_cancelled,
        );
        for (token, id) in std::mem::take(&mut self.shutdown_waiters) {
            let Some(conn) = self.conns.get_mut(token.idx).and_then(Option::as_mut) else {
                continue;
            };
            if conn.gen != token.gen {
                continue;
            }
            conn.close_after_flush = false;
            push_line(conn, &ok_response(id.as_deref(), false, &result));
            conn.close_after_flush = true;
        }
        self.shutdown_answered = true;
        self.exit_deadline = Some(Instant::now() + FLUSH_GRACE);
    }

    /// The loop may exit once shutdown is answered and every write
    /// buffer is flushed (or the grace period expired — a vanished
    /// client cannot wedge shutdown).
    fn exit_ready(&self) -> bool {
        if !self.shutdown_answered {
            return false;
        }
        let all_flushed = self.conns.iter().flatten().all(|c| !c.has_pending_write());
        all_flushed || self.exit_deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Enforces read deadlines, flushes pending writes, applies the
    /// write-stall deadline and reaps terminal connections.
    fn service_timers_and_flush(&mut self) {
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let mut close_now = false;
            if let Some(conn) = self.conns[idx].as_mut() {
                if let Some(deadline) = conn.line_deadline {
                    if now >= deadline && !conn.close_after_flush {
                        chameleon_obs::counter!("server.conn.read_timeout").add(1);
                        conn.rbuf.clear();
                        conn.line_deadline = None;
                        push_line(
                            conn,
                            &coded_error_response(
                                None,
                                codes::READ_TIMEOUT,
                                "request line not completed before the read deadline",
                                None,
                            ),
                        );
                        conn.close_after_flush = true;
                    }
                }
                if conn.has_pending_write() {
                    if !flush_conn(conn, self.shared.faults.as_ref()) {
                        close_now = true;
                    } else if conn.has_pending_write()
                        && now.duration_since(conn.last_progress) > WRITE_TIMEOUT
                    {
                        chameleon_obs::counter!("server.conn.write_stalled").add(1);
                        close_now = true;
                    }
                }
                if !close_now && conn.close_after_flush && !conn.has_pending_write() {
                    close_now = true;
                }
                // A half-closed connection in write-drain is done once
                // every dispatched line has been answered and flushed.
                if !close_now
                    && conn.read_closed
                    && !conn.close_after_flush
                    && conn.in_flight == 0
                    && !conn.has_pending_write()
                {
                    close_now = true;
                }
            } else {
                continue;
            }
            if close_now {
                self.close_conn(idx);
            }
        }
    }
}

/// Writes as much of the pending buffer as the socket accepts; returns
/// false when the connection is dead. The short-write fault caps one
/// attempt at a single byte and yields, exercising the partial-write
/// resume path deterministically.
fn flush_conn(conn: &mut Conn, faults: Option<&FaultInjector>) -> bool {
    loop {
        let pending_len = conn.wbuf.len() - conn.wpos;
        if pending_len == 0 {
            break;
        }
        let cap = match faults {
            Some(f) if f.next_short_write() => {
                chameleon_obs::counter!("server.reactor.short_writes").add(1);
                1
            }
            _ => pending_len,
        };
        let chunk = &conn.wbuf[conn.wpos..conn.wpos + cap];
        match conn.stream.write(chunk) {
            Ok(0) => return false,
            Ok(n) => {
                conn.wpos += n;
                conn.last_progress = Instant::now();
                if cap < pending_len {
                    // Injected short write: leave the rest for the next
                    // tick so the resume path actually runs.
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    true
}

/// Admits the parsed jobs of one request line: per-element parse errors
/// answer immediately, the valid remainder rides the queue as a single
/// entry. Every element gets its own response line.
fn submit_jobs(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    token: ConnToken,
    items: Vec<Result<JobRequest, (Option<String>, String)>>,
) {
    let mut queued: Vec<QueuedJob> = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Ok(job) => queued.push(QueuedJob {
                timeout: job
                    .timeout_ms
                    .map(|ms| Duration::from_millis(ms.max(1)))
                    .unwrap_or(shared.default_timeout),
                spec: job.spec,
                id: job.id,
                chunk_bytes: job.chunk_bytes,
                journal_seq: None,
                resume_checkpoint: None,
            }),
            Err((id, msg)) => {
                push_line(
                    conn,
                    &coded_error_response(id.as_deref(), codes::BAD_REQUEST, &msg, None),
                );
            }
        }
    }
    if queued.is_empty() {
        return;
    }
    let n = queued.len() as u64;
    // Ids are kept out-of-band so a rejected push (which consumes the
    // entry) can still answer every element with its own id.
    let ids: Vec<Option<String>> = queued.iter().map(|j| j.id.clone()).collect();
    let reject = |conn: &mut Conn, code: &str, msg: &str, retry: Option<u64>| {
        for id in &ids {
            push_line(conn, &coded_error_response(id.as_deref(), code, msg, retry));
        }
    };
    if shared.shutting_down.load(Ordering::Acquire) {
        shared.jobs_rejected.fetch_add(n, Ordering::Relaxed);
        chameleon_obs::counter!("server.jobs.rejected_shutdown").add(n);
        reject(conn, codes::SHUTTING_DOWN, "server is shutting down", None);
        return;
    }
    let count = queued.len();
    // Durability: every admitted job gets an `accepted` record *before*
    // the push — a crash between the two replays the job, which is the
    // safe direction (at-least-once acceptance, idempotent execution).
    if let Some(journal) = &shared.journal {
        let mut j = journal.lock();
        for q in &mut queued {
            q.journal_seq = Some(j.accepted(&q.spec, Some(q.timeout.as_millis() as u64)));
        }
    }
    let seqs: Vec<Option<u64>> = queued.iter().map(|q| q.journal_seq).collect();
    // Settles `accepted` records of a rejected push (which consumed the
    // entry) so they are not replayed as live jobs after a restart.
    let journal_reject = |shared: &Arc<Shared>, code: &str, msg: &str| {
        if let Some(journal) = &shared.journal {
            let mut j = journal.lock();
            for seq in seqs.iter().flatten() {
                j.failed(*seq, code, msg);
            }
        }
    };
    match shared.queue.try_push(Job {
        items: queued,
        token,
        enqueued: Instant::now(),
    }) {
        Ok(depth) => {
            chameleon_obs::counter!("server.jobs.accepted").add(n);
            chameleon_obs::record_value!("server.queue.depth", depth as u64);
            conn.in_flight += count;
        }
        Err(PushError::Full { capacity }) => {
            shared.jobs_rejected.fetch_add(n, Ordering::Relaxed);
            chameleon_obs::counter!("server.jobs.rejected_full").add(n);
            // Suggested backoff grows with the number of busy workers: a
            // saturated pool drains no faster than one job at a time.
            let retry_ms = 100 * (1 + shared.queue.active() as u64).min(50);
            let msg = format!("queue full ({capacity} queued jobs); retry later");
            journal_reject(shared, codes::QUEUE_FULL, &msg);
            reject(conn, codes::QUEUE_FULL, &msg, Some(retry_ms));
        }
        Err(PushError::Closed) => {
            shared.jobs_rejected.fetch_add(n, Ordering::Relaxed);
            chameleon_obs::counter!("server.jobs.rejected_shutdown").add(n);
            journal_reject(shared, codes::SHUTTING_DOWN, "server is shutting down");
            reject(conn, codes::SHUTTING_DOWN, "server is shutting down", None);
        }
    }
}

/// Settles the queue's active count even when the job path unwinds.
struct TaskDoneGuard<'a>(&'a Shared);

impl Drop for TaskDoneGuard<'_> {
    fn drop(&mut self) {
        self.0.queue.task_done();
    }
}

/// Renders one job's response line into wire bytes, applying chunked
/// framing when the request asked for it.
fn wire_bytes(id: Option<&str>, line: String, chunk_bytes: usize) -> Vec<u8> {
    if chunk_bytes > 0 {
        if let Some(frames) = chunk_frames(id, &line, chunk_bytes) {
            let mut out = Vec::with_capacity(line.len() + frames.len() * 96);
            for frame in &frames {
                out.extend_from_slice(frame.as_bytes());
                out.push(b'\n');
            }
            return out;
        }
    }
    let mut out = line.into_bytes();
    out.push(b'\n');
    out
}

fn worker_loop(shared: &Arc<Shared>, respond: &mpsc::Sender<Completion>, waker: &Waker) {
    while let Some(batch) = shared.queue.pop() {
        let _done = TaskDoneGuard(shared);
        chameleon_obs::record_value!(
            "server.job.queue_wait_ns",
            batch.enqueued.elapsed().as_nanos() as u64
        );
        let mut wire: Vec<u8> = Vec::new();
        for item in &batch.items {
            // Panic isolation: a panicking job — injected or genuine —
            // must answer a structured error and leave the worker (and
            // the rest of the batch) running. The shared state is safe
            // to reuse after an unwind: the queue/cache locks recover
            // poison, and all counters are plain atomics.
            let response =
                match std::panic::catch_unwind(AssertUnwindSafe(|| process_job(shared, item))) {
                    Ok(response) => response,
                    Err(payload) => {
                        shared.jobs_panicked.fetch_add(1, Ordering::Relaxed);
                        chameleon_obs::counter!("server.jobs.panicked").add(1);
                        // A panicked job is terminal for the journal too:
                        // replaying it on restart would likely just panic
                        // again (the client was told to retry).
                        if let (Some(journal), Some(seq)) = (&shared.journal, item.journal_seq) {
                            journal.lock().failed(
                                seq,
                                codes::JOB_PANICKED,
                                panic_message(payload.as_ref()),
                            );
                        }
                        coded_error_response(
                            item.id.as_deref(),
                            codes::JOB_PANICKED,
                            &format!(
                                "{} job panicked: {}; the worker recovered — safe to retry",
                                item.spec.op(),
                                panic_message(payload.as_ref()),
                            ),
                            Some(FAULT_RETRY_MS),
                        )
                    }
                };
            wire.extend_from_slice(&wire_bytes(item.id.as_deref(), response, item.chunk_bytes));
        }
        // Send precedes `task_done` (the guard drops after this): once
        // the queue reports drained, every completion is already in the
        // channel. A dropped receiver (reactor exited) just discards.
        let _ = respond.send(Completion {
            token: batch.token,
            wire,
            jobs: batch.items.len(),
        });
        waker.wake();
    }
}

/// Renders a `catch_unwind` payload (typically a `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

fn process_job(shared: &Arc<Shared>, job: &QueuedJob) -> String {
    let key = job.spec.cache_key();
    let cancel = CancelToken::with_deadline(Instant::now() + job.timeout);
    // Fault injection sits at the execution boundary, before the cache:
    // an injected panic/cancel exercises the full admission-to-error
    // path exactly as a genuine fault in the pipeline would.
    if let Some(injector) = &shared.faults {
        match injector.next_job_fault() {
            Some(JobFault::Panic) => panic!("injected fault: worker panic (chaos schedule)"),
            Some(JobFault::CancelTrip) => cancel.cancel(),
            None => {}
        }
    }
    let cached = shared.cache.lock().get(&key);
    if let Some(hit) = cached {
        chameleon_obs::counter!("server.cache.hit").add(1);
        shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
        // A hit still settles the journal record (result elided: the
        // self-contained record that produced the hit is already on disk).
        if let (Some(journal), Some(seq)) = (&shared.journal, job.journal_seq) {
            journal.lock().completed(seq, &key, None);
        }
        return ok_response(job.id.as_deref(), true, &hit);
    }
    chameleon_obs::counter!("server.cache.miss").add(1);
    if let (Some(journal), Some(seq)) = (&shared.journal, job.journal_seq) {
        journal.lock().started(seq);
    }
    // Durability: σ-probe checkpoints stream into the journal as the
    // search runs, and a checkpoint recovered at replay short-circuits
    // the probes it already covers.
    let durability = match (&shared.journal, job.journal_seq) {
        (Some(_), Some(seq)) => {
            let sink_shared = Arc::clone(shared);
            Some(Durability {
                sink: Some(Arc::new(move |data: &str| {
                    if let Some(journal) = &sink_shared.journal {
                        journal.lock().checkpoint(seq, data);
                    }
                })),
                resume: job.resume_checkpoint.clone(),
            })
        }
        _ => None,
    };
    let _span = match job.spec {
        crate::job::JobSpec::Obfuscate { .. } => chameleon_obs::span!("server.job.obfuscate"),
        crate::job::JobSpec::Check { .. } => chameleon_obs::span!("server.job.check"),
        crate::job::JobSpec::Reliability { .. } => chameleon_obs::span!("server.job.reliability"),
    };
    match job.spec.execute_durable(&cancel, durability.as_ref()) {
        Ok(out) => {
            if out.resumed_probes > 0 {
                shared
                    .journal_probes_skipped
                    .fetch_add(out.resumed_probes, Ordering::Relaxed);
                chameleon_obs::counter!("server.journal.probes_skipped").add(out.resumed_probes);
            }
            if let (Some(journal), Some(seq)) = (&shared.journal, job.journal_seq) {
                journal.lock().completed(seq, &key, Some(&out.result));
            }
            shared.cache.lock().insert(key, out.result.as_str().into());
            shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            chameleon_obs::counter!("server.jobs.completed").add(1);
            ok_response(job.id.as_deref(), false, &out.result)
        }
        Err(ExecError::Cancelled) => {
            if let (Some(journal), Some(seq)) = (&shared.journal, job.journal_seq) {
                journal.lock().cancelled(seq);
            }
            match cancel.reason() {
                Some(CancelReason::Explicit) => {
                    // Explicit trips are transient by construction (today:
                    // injected faults) — mark them retryable, unlike a
                    // deadline, which would fire again on an identical retry.
                    shared.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                    chameleon_obs::counter!("server.jobs.cancelled").add(1);
                    coded_error_response(
                        job.id.as_deref(),
                        codes::CANCELLED,
                        &format!(
                            "{} job cancelled before completion; safe to retry",
                            job.spec.op()
                        ),
                        Some(FAULT_RETRY_MS),
                    )
                }
                _ => {
                    shared.jobs_timed_out.fetch_add(1, Ordering::Relaxed);
                    chameleon_obs::counter!("server.jobs.timeout").add(1);
                    coded_error_response(
                        job.id.as_deref(),
                        codes::TIMEOUT,
                        &format!(
                            "{} job cancelled after exceeding its {} ms timeout",
                            job.spec.op(),
                            job.timeout.as_millis()
                        ),
                        None,
                    )
                }
            }
        }
        Err(ExecError::Invalid(msg)) | Err(ExecError::Failed(msg)) => {
            if let (Some(journal), Some(seq)) = (&shared.journal, job.journal_seq) {
                journal.lock().failed(seq, codes::JOB_FAILED, &msg);
            }
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            chameleon_obs::counter!("server.jobs.failed").add(1);
            coded_error_response(job.id.as_deref(), codes::JOB_FAILED, &msg, None)
        }
    }
}

/// Client-side helper: writes one request line (newline appended). Pair
/// with [`read_response`]; pipelining is just several `send_request`
/// calls before the matching reads.
///
/// # Errors
/// Propagates socket I/O failures.
pub fn send_request<W: Write>(writer: &mut W, request: &str) -> std::io::Result<()> {
    writer.write_all(request.as_bytes())?;
    writer.write_all(b"\n")
}

/// Client-side helper: reads one *logical* response, transparently
/// reassembling chunked (`"status":"chunk"`) frames into the original
/// response line.
///
/// # Errors
/// Propagates socket I/O failures; a closed connection without a
/// complete response — including one reset mid-line, detected as a final
/// fragment with no trailing newline — is an `UnexpectedEof` error.
pub fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<String> {
    let mut assembled: Option<String> = None;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection without responding",
            ));
        }
        if !line.ends_with('\n') {
            // read_line returned because the stream ended, not because the
            // response did: partial bytes must surface as a retryable I/O
            // error, never as a syntactically truncated response.
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response (truncated line)",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        // Fast path: only lines that can be chunk frames pay the parse.
        if line.contains("\"status\":\"chunk\"") {
            if let Ok(v) = json::Json::parse(&line) {
                if v.get("status").and_then(json::Json::as_str) == Some("chunk") {
                    let data = v.get("data").and_then(json::Json::as_str).unwrap_or("");
                    assembled.get_or_insert_with(String::new).push_str(data);
                    if v.get("last").and_then(json::Json::as_bool) == Some(true) {
                        return Ok(assembled.take().unwrap_or_default());
                    }
                    continue;
                }
            }
        }
        return Ok(line);
    }
}

/// Client-side helper: sends one request line and reads one response
/// (chunk frames reassembled). Used by the CLI `submit` subcommand, the
/// integration tests and the bench probes — not part of the daemon
/// itself.
///
/// # Errors
/// Propagates socket I/O failures; a closed connection without a response
/// is an `UnexpectedEof` error.
pub fn roundtrip(stream: &mut TcpStream, request: &str) -> std::io::Result<String> {
    send_request(stream, request)?;
    stream.flush()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    read_response(&mut reader)
}

/// Convenience for one-shot clients: connect, round-trip a single request,
/// return the response line.
///
/// # Errors
/// Propagates connection and I/O failures.
pub fn request_once(addr: &str, request: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    roundtrip(&mut stream, request)
}

/// Client retry policy for transient, server-marked-retryable rejections
/// (queue full, injected faults, busy connection limits). The backoff is
/// *jittered but seeded*: for a fixed `seed` the jitter sequence — and
/// hence the whole retry schedule given the same server hints — is
/// reproducible, matching the workspace determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = behave like [`request_once`]).
    pub max_retries: u32,
    /// Base delay and jitter magnitude in ms.
    pub base_delay_ms: u64,
    /// Hard cap on a single backoff sleep in ms.
    pub max_delay_ms: u64,
    /// Seed for the jitter sequence.
    pub seed: u64,
    /// Retries granted to connect/I-O failures (refused connection, reset
    /// mid-read, truncated response), counted separately from the
    /// hint-driven `max_retries` budget.
    pub io_retries: u32,
    /// Whether connect/I-O failures are retried at all. `false` restores
    /// the fail-fast behavior (first socket error propagates).
    pub retry_io: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_delay_ms: 50,
            max_delay_ms: 5_000,
            seed: 0,
            io_retries: 3,
            retry_io: true,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (0-based), honoring the
    /// server's `retry_after_ms` hint when present: the sleep is the
    /// hint (or the base delay) scaled exponentially by attempt, plus a
    /// seeded jitter in `[0, base_delay_ms)`, capped at `max_delay_ms`.
    pub fn backoff(&self, attempt: u32, retry_after_ms: Option<u64>) -> Duration {
        let base = retry_after_ms.unwrap_or(self.base_delay_ms).max(1);
        let scaled = base.saturating_mul(1u64 << attempt.min(10));
        let jitter = SeedSequence::new(self.seed)
            .derive_indexed("submit.backoff", u64::from(attempt))
            % self.base_delay_ms.max(1);
        Duration::from_millis(scaled.saturating_add(jitter).min(self.max_delay_ms.max(1)))
    }
}

/// The `retry_after_ms` hint of a response line, when the line is an
/// error that carries one — the server's marker for "transient, safe to
/// retry". Non-error lines and unparsable lines return `None`.
pub fn retry_hint(line: &str) -> Option<u64> {
    let v = json::Json::parse(line).ok()?;
    if v.get("status").and_then(json::Json::as_str) != Some("error") {
        return None;
    }
    v.get("retry_after_ms").and_then(json::Json::as_u64)
}

/// [`request_once`] with seeded-backoff retries on responses the server
/// marked retryable (see [`retry_hint`]) *and* on connect/I-O failures
/// (dead or restarting backend: ECONNREFUSED, reset mid-read, truncated
/// response). The two failure classes draw on separate budgets —
/// `max_retries` hint-driven attempts and `io_retries` socket-level
/// attempts — so a flapping backend cannot starve the queue-full path or
/// vice versa. Hint-driven retries sleep the server's hint; I/O retries
/// have no hint and back off from `base_delay_ms`. Returns the last
/// response — hint retries exhausted still yield the server's error line,
/// never a client-synthesized one.
///
/// # Errors
/// Returns the final I/O error once `io_retries` extra attempts (or the
/// first, when `retry_io` is off) have failed at the socket level.
pub fn request_with_retry(
    addr: &str,
    request: &str,
    policy: &RetryPolicy,
) -> std::io::Result<String> {
    let mut hint_attempt = 0u32;
    let mut io_attempt = 0u32;
    loop {
        let line = match request_once(addr, request) {
            Ok(line) => line,
            Err(err) => {
                if !policy.retry_io || io_attempt >= policy.io_retries {
                    return Err(err);
                }
                chameleon_obs::counter!("server.client.io_retries").add(1);
                std::thread::sleep(policy.backoff(io_attempt, None));
                io_attempt += 1;
                continue;
            }
        };
        match retry_hint(&line) {
            Some(hint) if hint_attempt < policy.max_retries => {
                chameleon_obs::counter!("server.client.retries").add(1);
                std::thread::sleep(policy.backoff(hint_attempt, Some(hint)));
                hint_attempt += 1;
            }
            _ => return Ok(line),
        }
    }
}

/// Extracts a field from a response line, parsed with the shared JSON
/// module (client-side convenience).
pub fn response_field(line: &str, key: &str) -> Option<json::Json> {
    json::Json::parse(line).ok()?.get(key).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_seeded_and_honors_the_hint() {
        let p = RetryPolicy {
            max_retries: 5,
            base_delay_ms: 40,
            max_delay_ms: 10_000,
            seed: 9,
            ..RetryPolicy::default()
        };
        // Reproducible: same policy, same attempt, same sleep.
        assert_eq!(p.backoff(2, Some(100)), p.backoff(2, Some(100)));
        // The hint sets the base: attempt 0 sleeps at least the hint.
        assert!(p.backoff(0, Some(300)) >= Duration::from_millis(300));
        // Exponential growth until the cap.
        assert!(p.backoff(3, Some(100)) > p.backoff(1, Some(100)));
        assert!(p.backoff(30, Some(100)) <= Duration::from_millis(10_000));
        // Different seeds give different jitter (for this attempt).
        let q = RetryPolicy { seed: 10, ..p };
        assert_ne!(p.backoff(1, None), q.backoff(1, None));
    }

    #[test]
    fn retry_hint_only_fires_on_marked_errors() {
        assert_eq!(
            retry_hint(r#"{"status":"error","error":"full","retry_after_ms":120}"#),
            Some(120)
        );
        assert_eq!(retry_hint(r#"{"status":"error","error":"bad"}"#), None);
        assert_eq!(
            retry_hint(r#"{"status":"ok","cached":false,"result":{}}"#),
            None
        );
        assert_eq!(retry_hint("garbage"), None);
    }

    #[test]
    fn connect_refused_backend_is_retried_until_it_appears() {
        // Reserve a port, then free it so connects are refused.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let fast = RetryPolicy {
            base_delay_ms: 10,
            max_delay_ms: 50,
            io_retries: 40,
            ..RetryPolicy::default()
        };

        // Fail-fast semantics are preserved when I/O retries are off.
        let fail_fast = RetryPolicy {
            retry_io: false,
            ..fast
        };
        let err = request_with_retry(&addr.to_string(), "{\"op\":\"status\"}", &fail_fast)
            .expect_err("nothing is listening; fail-fast must propagate the connect error");
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);

        // A backend that comes up late is reached by the retry loop.
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            let listener = TcpListener::bind(addr).unwrap();
            let (mut conn, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            conn.write_all(b"{\"status\":\"ok\",\"cached\":false,\"result\":{}}\n")
                .unwrap();
        });
        let line = request_with_retry(&addr.to_string(), "{\"op\":\"status\"}", &fast)
            .expect("retries should outlast the backend's restart window");
        assert!(line.contains("\"status\":\"ok\""));
        server.join().unwrap();
    }

    #[test]
    fn truncated_response_is_retried_not_returned() {
        // Direct check: a final fragment without '\n' is an I/O error.
        let mut reader = BufReader::new(std::io::Cursor::new(&b"{\"status\":\"ok\""[..]));
        let err = read_response(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

        // End to end: first connection dies mid-line, the retry gets the
        // full response from the recovered backend.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            conn.write_all(b"{\"status\":\"ok\",\"cach").unwrap();
            // Close BOTH handles (the BufReader holds a try_clone dup —
            // the socket only FINs once every descriptor is gone).
            drop(reader);
            drop(conn);
            let (mut conn, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            conn.write_all(b"{\"status\":\"ok\",\"cached\":true,\"result\":{}}\n")
                .unwrap();
        });
        let fast = RetryPolicy {
            base_delay_ms: 5,
            max_delay_ms: 20,
            io_retries: 10,
            ..RetryPolicy::default()
        };
        let line = request_with_retry(&addr.to_string(), "{\"op\":\"status\"}", &fast).unwrap();
        assert!(
            line.contains("\"cached\":true"),
            "client must re-drive after a truncated read, got: {line}"
        );
        server.join().unwrap();
    }

    #[test]
    fn wire_bytes_chunk_only_when_asked_and_needed() {
        let short = wire_bytes(Some("a"), "{\"x\":1}".to_string(), 0);
        assert_eq!(short, b"{\"x\":1}\n");
        let long_line = format!("{{\"pad\":\"{}\"}}", "x".repeat(4000));
        let unchunked = wire_bytes(Some("a"), long_line.clone(), 0);
        assert_eq!(unchunked.len(), long_line.len() + 1);
        let chunked = wire_bytes(Some("a"), long_line.clone(), 1024);
        let text = String::from_utf8(chunked).unwrap();
        let mut rebuilt = String::new();
        for frame in text.lines() {
            let v = json::Json::parse(frame).unwrap();
            assert_eq!(v.get("status").and_then(json::Json::as_str), Some("chunk"));
            rebuilt.push_str(v.get("data").and_then(json::Json::as_str).unwrap());
        }
        assert_eq!(rebuilt, long_line);
        // Client-side reassembly round-trips through read_response.
        let mut reader = std::io::BufReader::new(std::io::Cursor::new(wire_bytes(
            Some("a"),
            long_line.clone(),
            1024,
        )));
        assert_eq!(read_response(&mut reader).unwrap(), long_line);
    }
}
