//! The daemon: accept loop → bounded job queue → worker pool, with a
//! result cache, per-job deadlines, and graceful drain-on-shutdown.
//!
//! Job lifecycle: `received → queued → running → (completed | failed |
//! timed_out)`, or `rejected` straight from `received` when the queue is
//! full or shutdown has begun. Every transition is visible through
//! `chameleon_obs` sites (`server.*` counters/spans) *and* through plain
//! atomics so `status` works even in a no-obs build.
//!
//! Shutdown sequence (triggered by a `shutdown` request): set the flag —
//! the accept loop stops accepting and job submission starts rejecting —
//! then wait until the queue is drained (queued = in-flight = 0), answer
//! the shutdown request, close the queue so workers exit, join them, and
//! flush a final metrics snapshot to the configured path.

use crate::cache::ResultCache;
use crate::job::ExecError;
use crate::protocol::{error_response, ok_response, parse_request, Request};
use crate::queue::{BoundedQueue, PushError};
use chameleon_core::CancelToken;
use chameleon_obs::json;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads (0 = one per hardware thread).
    pub workers: usize,
    /// Bounded queue depth; a full queue rejects with `retry_after_ms`.
    pub queue_depth: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Default per-job wall-clock budget when the request has no
    /// `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Where the final metrics snapshot is flushed during shutdown.
    pub metrics_path: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_depth: 64,
            cache_capacity: 256,
            default_timeout_ms: 300_000,
            metrics_path: None,
        }
    }
}

/// Lifetime totals returned by [`Server::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Jobs answered successfully (cache hits included).
    pub jobs_completed: u64,
    /// Jobs that ran and failed (bad input, pipeline failure).
    pub jobs_failed: u64,
    /// Jobs rejected at admission (queue full or shutting down).
    pub jobs_rejected: u64,
    /// Jobs cancelled at their deadline.
    pub jobs_timed_out: u64,
}

struct Job {
    spec: crate::job::JobSpec,
    id: Option<String>,
    timeout: Duration,
    respond: mpsc::Sender<String>,
    enqueued: Instant,
}

struct Shared {
    queue: BoundedQueue<Job>,
    cache: Mutex<ResultCache>,
    shutting_down: AtomicBool,
    /// Set once a shutdown response has been written and flushed; `run`
    /// waits on it so the process never exits before the client hears
    /// back.
    shutdown_acked: AtomicBool,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_timed_out: AtomicU64,
    workers: usize,
    queue_depth: usize,
    default_timeout: Duration,
    started: Instant,
}

impl Shared {
    fn report(&self) -> ServerReport {
        ServerReport {
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_timed_out: self.jobs_timed_out.load(Ordering::Relaxed),
        }
    }

    /// `status` result object; field order is fixed by construction.
    fn status_json(&self) -> String {
        let cache = self.cache.lock().expect("cache poisoned").stats();
        format!(
            "{{\"uptime_ms\":{},\"workers\":{},\"queue_depth\":{},\"queue_capacity\":{},\
             \"in_flight\":{},\"jobs_completed\":{},\"jobs_failed\":{},\"jobs_rejected\":{},\
             \"jobs_timed_out\":{},\"shutting_down\":{},\"cache\":{{\"entries\":{},\
             \"capacity\":{},\"hits\":{},\"misses\":{},\"evictions\":{}}}}}",
            self.started.elapsed().as_millis(),
            self.workers,
            self.queue.len(),
            self.queue_depth,
            self.queue.active(),
            self.jobs_completed.load(Ordering::Relaxed),
            self.jobs_failed.load(Ordering::Relaxed),
            self.jobs_rejected.load(Ordering::Relaxed),
            self.jobs_timed_out.load(Ordering::Relaxed),
            self.shutting_down.load(Ordering::Relaxed),
            cache.entries,
            cache.capacity,
            cache.hits,
            cache.misses,
            cache.evictions,
        )
    }
}

/// A bound-but-not-yet-running `chameleond` instance.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    metrics_path: Option<String>,
}

/// Handle to a server running on a background thread (see
/// [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<ServerReport>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down.
    ///
    /// # Errors
    /// Propagates the run loop's I/O error, if any.
    pub fn join(self) -> std::io::Result<ServerReport> {
        self.thread.join().expect("server thread panicked")
    }
}

impl Server {
    /// Binds the listener (without accepting yet).
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            shutting_down: AtomicBool::new(false),
            shutdown_acked: AtomicBool::new(false),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_timed_out: AtomicU64::new(0),
            workers,
            queue_depth: config.queue_depth.max(1),
            default_timeout: Duration::from_millis(config.default_timeout_ms.max(1)),
            started: Instant::now(),
        });
        Ok(Server {
            listener,
            shared,
            metrics_path: config.metrics_path,
        })
    }

    /// The bound address.
    ///
    /// # Panics
    /// Never in practice (the listener is bound).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// Binds and runs on a background thread; returns once the port is
    /// live.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let addr = server.local_addr();
        let thread = std::thread::Builder::new()
            .name("chameleond-accept".into())
            .spawn(move || server.run())
            .expect("spawn accept thread");
        Ok(ServerHandle { addr, thread })
    }

    /// Serves until a `shutdown` request completes: accepts connections,
    /// drains the queue on shutdown, joins the workers, and flushes the
    /// final metrics snapshot.
    ///
    /// # Errors
    /// Propagates accept-loop I/O errors (`WouldBlock` excluded).
    pub fn run(self) -> std::io::Result<ServerReport> {
        let Server {
            listener,
            shared,
            metrics_path,
        } = self;
        let worker_handles: Vec<_> = (0..shared.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("chameleond-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        // Nonblocking accept + short sleep: the loop must notice the
        // shutdown flag without a connection arriving to wake it.
        listener.set_nonblocking(true)?;
        while !shared.shutting_down.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    chameleon_obs::counter!("server.connections").add(1);
                    stream.set_nonblocking(false)?;
                    // Request/response alternation deadlocks with Nagle +
                    // delayed ACK into ~40 ms stalls per round-trip.
                    let _ = stream.set_nodelay(true);
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name("chameleond-conn".into())
                        .spawn(move || handle_connection(stream, &shared))
                        .expect("spawn connection thread");
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        drop(listener);

        // Drain: queued and in-flight jobs finish; their connection
        // threads deliver the responses.
        while !shared.queue.is_drained() {
            std::thread::sleep(Duration::from_millis(5));
        }
        shared.queue.close();
        for handle in worker_handles {
            let _ = handle.join();
        }
        // Let the shutdown connection flush its response before the
        // process (in CLI use) exits; bounded wait so a vanished client
        // cannot wedge shutdown.
        let ack_deadline = Instant::now() + Duration::from_secs(2);
        while !shared.shutdown_acked.load(Ordering::Acquire) && Instant::now() < ack_deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        if let Some(path) = &metrics_path {
            let _ = std::fs::write(path, chameleon_obs::metrics_json());
        }
        Ok(shared.report())
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        chameleon_obs::record_value!(
            "server.job.queue_wait_ns",
            job.enqueued.elapsed().as_nanos() as u64
        );
        let response = process_job(shared, &job);
        // A disconnected client just discards the response.
        let _ = job.respond.send(response);
        shared.queue.task_done();
    }
}

fn process_job(shared: &Arc<Shared>, job: &Job) -> String {
    let key = job.spec.cache_key();
    let cached = shared.cache.lock().expect("cache poisoned").get(&key);
    if let Some(hit) = cached {
        chameleon_obs::counter!("server.cache.hit").add(1);
        shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
        return ok_response(job.id.as_deref(), true, &hit);
    }
    chameleon_obs::counter!("server.cache.miss").add(1);
    let _span = match job.spec {
        crate::job::JobSpec::Obfuscate { .. } => chameleon_obs::span!("server.job.obfuscate"),
        crate::job::JobSpec::Check { .. } => chameleon_obs::span!("server.job.check"),
        crate::job::JobSpec::Reliability { .. } => chameleon_obs::span!("server.job.reliability"),
    };
    let cancel = CancelToken::with_deadline(Instant::now() + job.timeout);
    match job.spec.execute(&cancel) {
        Ok(result) => {
            shared
                .cache
                .lock()
                .expect("cache poisoned")
                .insert(key, result.clone());
            shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            chameleon_obs::counter!("server.jobs.completed").add(1);
            ok_response(job.id.as_deref(), false, &result)
        }
        Err(ExecError::Cancelled) => {
            shared.jobs_timed_out.fetch_add(1, Ordering::Relaxed);
            chameleon_obs::counter!("server.jobs.timeout").add(1);
            error_response(
                job.id.as_deref(),
                &format!(
                    "{} job cancelled after exceeding its {} ms timeout",
                    job.spec.op(),
                    job.timeout.as_millis()
                ),
                None,
            )
        }
        Err(ExecError::Invalid(msg)) | Err(ExecError::Failed(msg)) => {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            chameleon_obs::counter!("server.jobs.failed").add(1);
            error_response(job.id.as_deref(), &msg, None)
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (response, is_shutdown) = dispatch(&line, shared);
        let ok = writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_ok();
        if is_shutdown {
            if ok {
                shared.shutdown_acked.store(true, Ordering::Release);
            }
            return;
        }
        if !ok {
            break;
        }
    }
}

/// Handles one request line; returns the response and whether it was a
/// shutdown (the connection closes after answering one).
fn dispatch(line: &str, shared: &Arc<Shared>) -> (String, bool) {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err((id, msg)) => return (error_response(id.as_deref(), &msg, None), false),
    };
    match request {
        Request::Status { id } => (
            ok_response(id.as_deref(), false, &shared.status_json()),
            false,
        ),
        Request::Shutdown { id } => {
            chameleon_obs::counter!("server.shutdown_requests").add(1);
            shared.shutting_down.store(true, Ordering::Release);
            while !shared.queue.is_drained() {
                std::thread::sleep(Duration::from_millis(5));
            }
            let report = shared.report();
            let result = format!(
                "{{\"drained\":true,\"jobs_completed\":{},\"jobs_failed\":{},\
                 \"jobs_rejected\":{},\"jobs_timed_out\":{}}}",
                report.jobs_completed,
                report.jobs_failed,
                report.jobs_rejected,
                report.jobs_timed_out,
            );
            (ok_response(id.as_deref(), false, &result), true)
        }
        Request::Job {
            spec,
            id,
            timeout_ms,
        } => {
            if shared.shutting_down.load(Ordering::Acquire) {
                shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                chameleon_obs::counter!("server.jobs.rejected_shutdown").add(1);
                return (
                    error_response(id.as_deref(), "server is shutting down", None),
                    false,
                );
            }
            let timeout = timeout_ms
                .map(|ms| Duration::from_millis(ms.max(1)))
                .unwrap_or(shared.default_timeout);
            let (tx, rx) = mpsc::channel();
            let job = Job {
                spec,
                id: id.clone(),
                timeout,
                respond: tx,
                enqueued: Instant::now(),
            };
            match shared.queue.try_push(job) {
                Ok(depth) => {
                    chameleon_obs::counter!("server.jobs.accepted").add(1);
                    chameleon_obs::record_value!("server.queue.depth", depth as u64);
                    match rx.recv() {
                        Ok(response) => (response, false),
                        Err(_) => (
                            error_response(id.as_deref(), "worker dropped the job", None),
                            false,
                        ),
                    }
                }
                Err(PushError::Full { capacity }) => {
                    shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                    chameleon_obs::counter!("server.jobs.rejected_full").add(1);
                    // Suggested backoff grows with the number of busy
                    // workers: a saturated pool drains no faster than one
                    // job at a time.
                    let retry_ms = 100 * (1 + shared.queue.active() as u64).min(50);
                    (
                        error_response(
                            id.as_deref(),
                            &format!("queue full ({capacity} queued jobs); retry later"),
                            Some(retry_ms),
                        ),
                        false,
                    )
                }
                Err(PushError::Closed) => {
                    shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                    chameleon_obs::counter!("server.jobs.rejected_shutdown").add(1);
                    (
                        error_response(id.as_deref(), "server is shutting down", None),
                        false,
                    )
                }
            }
        }
    }
}

/// Client-side helper: sends one request line and reads one response line.
/// Used by the CLI `submit` subcommand, the integration tests and the
/// bench probes — not part of the daemon itself.
///
/// # Errors
/// Propagates socket I/O failures; a closed connection without a response
/// is an `UnexpectedEof` error.
pub fn roundtrip(stream: &mut TcpStream, request: &str) -> std::io::Result<String> {
    stream.write_all(request.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection without responding",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Convenience for one-shot clients: connect, round-trip a single request,
/// return the response line.
///
/// # Errors
/// Propagates connection and I/O failures.
pub fn request_once(addr: &str, request: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    roundtrip(&mut stream, request)
}

/// Extracts a field from a response line, parsed with the shared JSON
/// module (client-side convenience).
pub fn response_field(line: &str, key: &str) -> Option<json::Json> {
    json::Json::parse(line).ok()?.get(key).cloned()
}
