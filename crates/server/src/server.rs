//! The daemon: accept loop → bounded job queue → worker pool, with a
//! result cache, per-job deadlines, and graceful drain-on-shutdown.
//!
//! Job lifecycle: `received → queued → running → (completed | failed |
//! timed_out | panicked | cancelled)`, or `rejected` straight from
//! `received` when the queue is full or shutdown has begun. Every
//! transition is visible through `chameleon_obs` sites (`server.*`
//! counters/spans) *and* through plain atomics so `status` works even in
//! a no-obs build.
//!
//! Robustness contract (DESIGN.md §8): no client behaviour and no worker
//! panic may take the daemon down or wedge it. Concretely:
//!
//! * job execution runs under `catch_unwind` — a panicking job answers a
//!   structured retryable `job_panicked` error and the worker survives;
//! * the queue and cache locks recover from poisoning
//!   ([`crate::sync::RecoverableMutex`]) instead of propagating it;
//! * request lines are read through a bounded reader: a configurable
//!   byte cap (`max_request_bytes`) and a per-line read deadline
//!   (`read_timeout_ms`) turn oversized and slow-dribbling (slowloris)
//!   clients into structured errors instead of unbounded allocation or a
//!   pinned thread;
//! * the connection pool is bounded (`max_connections`); excess
//!   connections get a `server_busy` error line and are closed;
//! * optional seeded fault injection ([`crate::faults`]) drives all of
//!   the above deterministically in tests and chaos runs.
//!
//! Shutdown sequence (triggered by a `shutdown` request): set the flag —
//! the accept loop stops accepting, job submission starts rejecting, and
//! idle connection threads notice on their next poll tick and exit —
//! then wait until the queue is drained (queued = in-flight = 0), answer
//! the shutdown request, close the queue so workers exit, join them,
//! wait (bounded) for connection threads to unwind, and flush a final
//! metrics snapshot to the configured path. A stalled client can never
//! wedge this: reads poll, writes time out, waits are bounded.

use crate::cache::ResultCache;
use crate::faults::{FaultInjector, FaultPlan, JobFault};
use crate::job::ExecError;
use crate::protocol::{coded_error_response, codes, ok_response, parse_request, Request};
use crate::queue::{BoundedQueue, PushError};
use crate::sync::RecoverableMutex;
use chameleon_core::{CancelReason, CancelToken};
use chameleon_obs::json;
use chameleon_stats::SeedSequence;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often blocked reads wake to poll the shutdown flag and the
/// per-line deadline.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Per-connection write deadline: a client that stops reading its
/// responses gets its connection dropped instead of pinning the writer.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Suggested client backoff after an injected/transient worker fault.
const FAULT_RETRY_MS: u64 = 50;

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads (0 = one per hardware thread).
    pub workers: usize,
    /// Bounded queue depth; a full queue rejects with `retry_after_ms`.
    pub queue_depth: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Default per-job wall-clock budget when the request has no
    /// `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Where the final metrics snapshot is flushed during shutdown.
    pub metrics_path: Option<String>,
    /// Maximum bytes in one request line (floor 64). An over-limit line
    /// answers a structured `request_too_large` error and closes the
    /// connection instead of allocating without bound.
    pub max_request_bytes: usize,
    /// Deadline for completing a request line once its first byte
    /// arrived, in ms (0 = no deadline). A stalled (slowloris) client
    /// gets a structured `read_timeout` error and is disconnected.
    pub read_timeout_ms: u64,
    /// Maximum concurrently open connections (0 = unlimited). Excess
    /// connections receive a `server_busy` error line and are closed.
    pub max_connections: usize,
    /// Deterministic fault-injection schedule (chaos testing only;
    /// `None` in production).
    pub faults: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_depth: 64,
            cache_capacity: 256,
            default_timeout_ms: 300_000,
            metrics_path: None,
            max_request_bytes: 16 * 1024 * 1024,
            read_timeout_ms: 30_000,
            max_connections: 256,
            faults: None,
        }
    }
}

/// Lifetime totals returned by [`Server::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Jobs answered successfully (cache hits included).
    pub jobs_completed: u64,
    /// Jobs that ran and failed (bad input, pipeline failure).
    pub jobs_failed: u64,
    /// Jobs rejected at admission (queue full or shutting down).
    pub jobs_rejected: u64,
    /// Jobs cancelled at their deadline.
    pub jobs_timed_out: u64,
    /// Jobs whose execution panicked (isolated; the worker survived).
    pub jobs_panicked: u64,
    /// Jobs whose cancel token was tripped explicitly (injected faults —
    /// deadline trips count under `jobs_timed_out`).
    pub jobs_cancelled: u64,
}

struct Job {
    spec: crate::job::JobSpec,
    id: Option<String>,
    timeout: Duration,
    respond: mpsc::Sender<String>,
    enqueued: Instant,
}

struct Shared {
    queue: BoundedQueue<Job>,
    cache: RecoverableMutex<ResultCache>,
    shutting_down: AtomicBool,
    /// Set once a shutdown response has been written and flushed; `run`
    /// waits on it so the process never exits before the client hears
    /// back.
    shutdown_acked: AtomicBool,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_timed_out: AtomicU64,
    jobs_panicked: AtomicU64,
    jobs_cancelled: AtomicU64,
    open_connections: AtomicUsize,
    workers: usize,
    queue_depth: usize,
    default_timeout: Duration,
    max_request_bytes: usize,
    read_timeout: Option<Duration>,
    max_connections: usize,
    faults: Option<FaultInjector>,
    started: Instant,
}

impl Shared {
    fn report(&self) -> ServerReport {
        ServerReport {
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_timed_out: self.jobs_timed_out.load(Ordering::Relaxed),
            jobs_panicked: self.jobs_panicked.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
        }
    }

    /// `status` result object; field order is fixed by construction.
    fn status_json(&self) -> String {
        let cache = self.cache.lock().stats();
        let (injected_panics, injected_cancels) = match &self.faults {
            Some(f) => (f.injected_panics(), f.injected_cancels()),
            None => (0, 0),
        };
        format!(
            "{{\"uptime_ms\":{},\"workers\":{},\"queue_depth\":{},\"queue_capacity\":{},\
             \"in_flight\":{},\"jobs_completed\":{},\"jobs_failed\":{},\"jobs_rejected\":{},\
             \"jobs_timed_out\":{},\"jobs_panicked\":{},\"jobs_cancelled\":{},\
             \"open_connections\":{},\"locks_recovered\":{},\"shutting_down\":{},\
             \"faults\":{{\"injected_panics\":{},\"injected_cancels\":{}}},\
             \"cache\":{{\"entries\":{},\"capacity\":{},\"hits\":{},\"misses\":{},\
             \"evictions\":{}}}}}",
            self.started.elapsed().as_millis(),
            self.workers,
            self.queue.len(),
            self.queue_depth,
            self.queue.active(),
            self.jobs_completed.load(Ordering::Relaxed),
            self.jobs_failed.load(Ordering::Relaxed),
            self.jobs_rejected.load(Ordering::Relaxed),
            self.jobs_timed_out.load(Ordering::Relaxed),
            self.jobs_panicked.load(Ordering::Relaxed),
            self.jobs_cancelled.load(Ordering::Relaxed),
            self.open_connections.load(Ordering::Relaxed),
            crate::sync::poison_recoveries(),
            self.shutting_down.load(Ordering::Relaxed),
            injected_panics,
            injected_cancels,
            cache.entries,
            cache.capacity,
            cache.hits,
            cache.misses,
            cache.evictions,
        )
    }
}

/// A bound-but-not-yet-running `chameleond` instance.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    metrics_path: Option<String>,
}

/// Handle to a server running on a background thread (see
/// [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<ServerReport>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down.
    ///
    /// # Errors
    /// Propagates the run loop's I/O error, if any.
    pub fn join(self) -> std::io::Result<ServerReport> {
        self.thread.join().expect("server thread panicked")
    }
}

impl Server {
    /// Binds the listener (without accepting yet).
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            cache: RecoverableMutex::new(ResultCache::new(config.cache_capacity)),
            shutting_down: AtomicBool::new(false),
            shutdown_acked: AtomicBool::new(false),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_timed_out: AtomicU64::new(0),
            jobs_panicked: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            open_connections: AtomicUsize::new(0),
            workers,
            queue_depth: config.queue_depth.max(1),
            default_timeout: Duration::from_millis(config.default_timeout_ms.max(1)),
            max_request_bytes: config.max_request_bytes.max(64),
            read_timeout: (config.read_timeout_ms > 0)
                .then(|| Duration::from_millis(config.read_timeout_ms)),
            max_connections: if config.max_connections == 0 {
                usize::MAX
            } else {
                config.max_connections
            },
            faults: config
                .faults
                .filter(FaultPlan::is_active)
                .map(FaultInjector::new),
            started: Instant::now(),
        });
        Ok(Server {
            listener,
            shared,
            metrics_path: config.metrics_path,
        })
    }

    /// The bound address.
    ///
    /// # Panics
    /// Never in practice (the listener is bound).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// Binds and runs on a background thread; returns once the port is
    /// live.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let addr = server.local_addr();
        let thread = std::thread::Builder::new()
            .name("chameleond-accept".into())
            .spawn(move || server.run())
            .expect("spawn accept thread");
        Ok(ServerHandle { addr, thread })
    }

    /// Serves until a `shutdown` request completes: accepts connections,
    /// drains the queue on shutdown, joins the workers, waits (bounded)
    /// for connection threads, and flushes the final metrics snapshot.
    ///
    /// # Errors
    /// Propagates accept-loop I/O errors (`WouldBlock` excluded).
    pub fn run(self) -> std::io::Result<ServerReport> {
        let Server {
            listener,
            shared,
            metrics_path,
        } = self;
        let worker_handles: Vec<_> = (0..shared.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("chameleond-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        // Nonblocking accept + short sleep: the loop must notice the
        // shutdown flag without a connection arriving to wake it.
        listener.set_nonblocking(true)?;
        while !shared.shutting_down.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    chameleon_obs::counter!("server.connections").add(1);
                    stream.set_nonblocking(false)?;
                    if shared.open_connections.load(Ordering::Relaxed) >= shared.max_connections {
                        chameleon_obs::counter!("server.conn.rejected_busy").add(1);
                        reject_busy(stream, shared.max_connections);
                        continue;
                    }
                    // Request/response alternation deadlocks with Nagle +
                    // delayed ACK into ~40 ms stalls per round-trip.
                    let _ = stream.set_nodelay(true);
                    shared.open_connections.fetch_add(1, Ordering::Relaxed);
                    let conn_shared = Arc::clone(&shared);
                    let spawned = std::thread::Builder::new()
                        .name("chameleond-conn".into())
                        .spawn(move || handle_connection(stream, &conn_shared));
                    if spawned.is_err() {
                        // Thread exhaustion is a load problem, not a
                        // reason to die; shed the connection.
                        shared.open_connections.fetch_sub(1, Ordering::Relaxed);
                        chameleon_obs::counter!("server.conn.spawn_failed").add(1);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        drop(listener);

        // Drain: queued and in-flight jobs finish; their connection
        // threads deliver the responses.
        while !shared.queue.is_drained() {
            std::thread::sleep(Duration::from_millis(5));
        }
        shared.queue.close();
        for handle in worker_handles {
            let _ = handle.join();
        }
        // Let the shutdown connection flush its response before the
        // process (in CLI use) exits; bounded wait so a vanished client
        // cannot wedge shutdown.
        let ack_deadline = Instant::now() + Duration::from_secs(2);
        while !shared.shutdown_acked.load(Ordering::Acquire) && Instant::now() < ack_deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Connection threads poll the shutdown flag every POLL_TICK, so
        // even a stalled (slowloris or idle) client unwinds promptly.
        // The wait is bounded: a thread stuck in a timed write cannot
        // wedge shutdown either.
        let conn_deadline = Instant::now() + Duration::from_secs(2);
        while shared.open_connections.load(Ordering::Relaxed) > 0 && Instant::now() < conn_deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(path) = &metrics_path {
            let _ = std::fs::write(path, chameleon_obs::metrics_json());
        }
        Ok(shared.report())
    }
}

/// Best-effort `server_busy` rejection written from the accept thread;
/// short write deadline so a non-reading client cannot stall accepts.
fn reject_busy(stream: TcpStream, limit: usize) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let line = coded_error_response(
        None,
        codes::SERVER_BUSY,
        &format!("connection limit reached ({limit} open connections); retry later"),
        Some(200),
    );
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// Settles the queue's active count even when the job path unwinds.
struct TaskDoneGuard<'a>(&'a Shared);

impl Drop for TaskDoneGuard<'_> {
    fn drop(&mut self) {
        self.0.queue.task_done();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let _done = TaskDoneGuard(shared);
        chameleon_obs::record_value!(
            "server.job.queue_wait_ns",
            job.enqueued.elapsed().as_nanos() as u64
        );
        // Panic isolation: a panicking job — injected or genuine — must
        // answer a structured error and leave the worker serving. The
        // shared state is safe to reuse after an unwind: the queue/cache
        // locks recover poison, and all counters are plain atomics.
        let response =
            match std::panic::catch_unwind(AssertUnwindSafe(|| process_job(shared, &job))) {
                Ok(response) => response,
                Err(payload) => {
                    shared.jobs_panicked.fetch_add(1, Ordering::Relaxed);
                    chameleon_obs::counter!("server.jobs.panicked").add(1);
                    coded_error_response(
                        job.id.as_deref(),
                        codes::JOB_PANICKED,
                        &format!(
                            "{} job panicked: {}; the worker recovered — safe to retry",
                            job.spec.op(),
                            panic_message(payload.as_ref()),
                        ),
                        Some(FAULT_RETRY_MS),
                    )
                }
            };
        // A disconnected client just discards the response.
        let _ = job.respond.send(response);
    }
}

/// Renders a `catch_unwind` payload (typically a `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

fn process_job(shared: &Arc<Shared>, job: &Job) -> String {
    let key = job.spec.cache_key();
    let cancel = CancelToken::with_deadline(Instant::now() + job.timeout);
    // Fault injection sits at the execution boundary, before the cache:
    // an injected panic/cancel exercises the full admission-to-error
    // path exactly as a genuine fault in the pipeline would.
    if let Some(injector) = &shared.faults {
        match injector.next_job_fault() {
            Some(JobFault::Panic) => panic!("injected fault: worker panic (chaos schedule)"),
            Some(JobFault::CancelTrip) => cancel.cancel(),
            None => {}
        }
    }
    let cached = shared.cache.lock().get(&key);
    if let Some(hit) = cached {
        chameleon_obs::counter!("server.cache.hit").add(1);
        shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
        return ok_response(job.id.as_deref(), true, &hit);
    }
    chameleon_obs::counter!("server.cache.miss").add(1);
    let _span = match job.spec {
        crate::job::JobSpec::Obfuscate { .. } => chameleon_obs::span!("server.job.obfuscate"),
        crate::job::JobSpec::Check { .. } => chameleon_obs::span!("server.job.check"),
        crate::job::JobSpec::Reliability { .. } => chameleon_obs::span!("server.job.reliability"),
    };
    match job.spec.execute(&cancel) {
        Ok(result) => {
            shared.cache.lock().insert(key, result.clone());
            shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            chameleon_obs::counter!("server.jobs.completed").add(1);
            ok_response(job.id.as_deref(), false, &result)
        }
        Err(ExecError::Cancelled) => match cancel.reason() {
            Some(CancelReason::Explicit) => {
                // Explicit trips are transient by construction (today:
                // injected faults) — mark them retryable, unlike a
                // deadline, which would fire again on an identical retry.
                shared.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                chameleon_obs::counter!("server.jobs.cancelled").add(1);
                coded_error_response(
                    job.id.as_deref(),
                    codes::CANCELLED,
                    &format!(
                        "{} job cancelled before completion; safe to retry",
                        job.spec.op()
                    ),
                    Some(FAULT_RETRY_MS),
                )
            }
            _ => {
                shared.jobs_timed_out.fetch_add(1, Ordering::Relaxed);
                chameleon_obs::counter!("server.jobs.timeout").add(1);
                coded_error_response(
                    job.id.as_deref(),
                    codes::TIMEOUT,
                    &format!(
                        "{} job cancelled after exceeding its {} ms timeout",
                        job.spec.op(),
                        job.timeout.as_millis()
                    ),
                    None,
                )
            }
        },
        Err(ExecError::Invalid(msg)) | Err(ExecError::Failed(msg)) => {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            chameleon_obs::counter!("server.jobs.failed").add(1);
            coded_error_response(job.id.as_deref(), codes::JOB_FAILED, &msg, None)
        }
    }
}

/// One request line, read under the daemon's protocol limits.
enum LineRead {
    /// A complete line (newline stripped, trailing `\r` stripped).
    Line(String),
    /// A complete line that is not valid UTF-8. The stream is resynced
    /// at the newline, so the connection may continue.
    BadUtf8,
    /// The byte cap was hit before a newline; the connection cannot be
    /// resynced and must close after the error reply.
    TooLong,
    /// A started line stalled past the read deadline (slowloris).
    TimedOut,
    /// EOF in the middle of a line (`n` bytes without a newline).
    TruncatedEof(usize),
    /// Clean EOF at a line boundary, an I/O error, or shutdown while
    /// idle — close without a reply.
    Disconnected,
}

/// Reads one `\n`-terminated line, enforcing `max_request_bytes` and the
/// per-line read deadline. The socket carries a `POLL_TICK` read timeout,
/// so the loop wakes regularly to poll the shutdown flag — an idle
/// connection parks here indefinitely but unwinds within one tick of
/// shutdown.
fn read_bounded_line(reader: &mut BufReader<TcpStream>, shared: &Shared) -> LineRead {
    let mut line: Vec<u8> = Vec::new();
    let mut deadline: Option<Instant> = None;
    loop {
        enum Step {
            Complete,
            Partial,
            TooLong,
        }
        let (step, consumed) = {
            let available = match reader.fill_buf() {
                Ok(chunk) => chunk,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.shutting_down.load(Ordering::Acquire) {
                        return if line.is_empty() {
                            LineRead::Disconnected
                        } else {
                            LineRead::TimedOut
                        };
                    }
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            return LineRead::TimedOut;
                        }
                    }
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return LineRead::Disconnected,
            };
            if available.is_empty() {
                return if line.is_empty() {
                    LineRead::Disconnected
                } else {
                    LineRead::TruncatedEof(line.len())
                };
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if line.len() + pos > shared.max_request_bytes {
                        (Step::TooLong, 0)
                    } else {
                        line.extend_from_slice(&available[..pos]);
                        (Step::Complete, pos + 1)
                    }
                }
                None => {
                    if line.len() + available.len() > shared.max_request_bytes {
                        (Step::TooLong, 0)
                    } else {
                        let n = available.len();
                        line.extend_from_slice(available);
                        (Step::Partial, n)
                    }
                }
            }
        };
        reader.consume(consumed);
        match step {
            Step::Complete => {
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return match String::from_utf8(line) {
                    Ok(s) => LineRead::Line(s),
                    Err(_) => LineRead::BadUtf8,
                };
            }
            Step::TooLong => return LineRead::TooLong,
            Step::Partial => {
                if deadline.is_none() {
                    deadline = shared.read_timeout.map(|t| Instant::now() + t);
                }
            }
        }
    }
}

/// Decrements the open-connection count when the thread unwinds, however
/// it unwinds.
struct ConnGuard<'a>(&'a Shared);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.open_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _open = ConnGuard(shared);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let reader_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_half);
    let mut writer = stream;
    let write_line = |writer: &mut TcpStream, response: &str| {
        writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_ok()
    };
    loop {
        let line = match read_bounded_line(&mut reader, shared) {
            LineRead::Line(line) => line,
            LineRead::BadUtf8 => {
                chameleon_obs::counter!("server.conn.bad_utf8").add(1);
                let resp = coded_error_response(
                    None,
                    codes::BAD_REQUEST,
                    "request line is not valid UTF-8",
                    None,
                );
                // Resynced at the newline — the connection survives.
                if !write_line(&mut writer, &resp) {
                    return;
                }
                continue;
            }
            LineRead::TooLong => {
                chameleon_obs::counter!("server.conn.request_too_large").add(1);
                let resp = coded_error_response(
                    None,
                    codes::REQUEST_TOO_LARGE,
                    &format!(
                        "request line exceeds the {} byte limit",
                        shared.max_request_bytes
                    ),
                    None,
                );
                let _ = write_line(&mut writer, &resp);
                return;
            }
            LineRead::TimedOut => {
                chameleon_obs::counter!("server.conn.read_timeout").add(1);
                let resp = coded_error_response(
                    None,
                    codes::READ_TIMEOUT,
                    "request line not completed before the read deadline",
                    None,
                );
                let _ = write_line(&mut writer, &resp);
                return;
            }
            LineRead::TruncatedEof(bytes) => {
                chameleon_obs::counter!("server.conn.truncated").add(1);
                let resp = coded_error_response(
                    None,
                    codes::BAD_REQUEST,
                    &format!("truncated request: {bytes} bytes without a newline before EOF"),
                    None,
                );
                let _ = write_line(&mut writer, &resp);
                return;
            }
            LineRead::Disconnected => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, is_shutdown) = dispatch(&line, shared);
        let ok = write_line(&mut writer, &response);
        if is_shutdown {
            if ok {
                shared.shutdown_acked.store(true, Ordering::Release);
            }
            return;
        }
        if !ok {
            return;
        }
    }
}

/// Handles one request line; returns the response and whether it was a
/// shutdown (the connection closes after answering one).
fn dispatch(line: &str, shared: &Arc<Shared>) -> (String, bool) {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err((id, msg)) => {
            return (
                coded_error_response(id.as_deref(), codes::BAD_REQUEST, &msg, None),
                false,
            )
        }
    };
    match request {
        Request::Status { id } => (
            ok_response(id.as_deref(), false, &shared.status_json()),
            false,
        ),
        Request::Shutdown { id } => {
            chameleon_obs::counter!("server.shutdown_requests").add(1);
            shared.shutting_down.store(true, Ordering::Release);
            while !shared.queue.is_drained() {
                std::thread::sleep(Duration::from_millis(5));
            }
            let report = shared.report();
            let result = format!(
                "{{\"drained\":true,\"jobs_completed\":{},\"jobs_failed\":{},\
                 \"jobs_rejected\":{},\"jobs_timed_out\":{},\"jobs_panicked\":{},\
                 \"jobs_cancelled\":{}}}",
                report.jobs_completed,
                report.jobs_failed,
                report.jobs_rejected,
                report.jobs_timed_out,
                report.jobs_panicked,
                report.jobs_cancelled,
            );
            (ok_response(id.as_deref(), false, &result), true)
        }
        Request::Job {
            spec,
            id,
            timeout_ms,
        } => {
            if shared.shutting_down.load(Ordering::Acquire) {
                shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                chameleon_obs::counter!("server.jobs.rejected_shutdown").add(1);
                return (
                    coded_error_response(
                        id.as_deref(),
                        codes::SHUTTING_DOWN,
                        "server is shutting down",
                        None,
                    ),
                    false,
                );
            }
            let timeout = timeout_ms
                .map(|ms| Duration::from_millis(ms.max(1)))
                .unwrap_or(shared.default_timeout);
            let (tx, rx) = mpsc::channel();
            let job = Job {
                spec,
                id: id.clone(),
                timeout,
                respond: tx,
                enqueued: Instant::now(),
            };
            match shared.queue.try_push(job) {
                Ok(depth) => {
                    chameleon_obs::counter!("server.jobs.accepted").add(1);
                    chameleon_obs::record_value!("server.queue.depth", depth as u64);
                    match rx.recv() {
                        Ok(response) => (response, false),
                        Err(_) => (
                            coded_error_response(
                                id.as_deref(),
                                codes::JOB_FAILED,
                                "worker dropped the job",
                                None,
                            ),
                            false,
                        ),
                    }
                }
                Err(PushError::Full { capacity }) => {
                    shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                    chameleon_obs::counter!("server.jobs.rejected_full").add(1);
                    // Suggested backoff grows with the number of busy
                    // workers: a saturated pool drains no faster than one
                    // job at a time.
                    let retry_ms = 100 * (1 + shared.queue.active() as u64).min(50);
                    (
                        coded_error_response(
                            id.as_deref(),
                            codes::QUEUE_FULL,
                            &format!("queue full ({capacity} queued jobs); retry later"),
                            Some(retry_ms),
                        ),
                        false,
                    )
                }
                Err(PushError::Closed) => {
                    shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                    chameleon_obs::counter!("server.jobs.rejected_shutdown").add(1);
                    (
                        coded_error_response(
                            id.as_deref(),
                            codes::SHUTTING_DOWN,
                            "server is shutting down",
                            None,
                        ),
                        false,
                    )
                }
            }
        }
    }
}

/// Client-side helper: sends one request line and reads one response line.
/// Used by the CLI `submit` subcommand, the integration tests and the
/// bench probes — not part of the daemon itself.
///
/// # Errors
/// Propagates socket I/O failures; a closed connection without a response
/// is an `UnexpectedEof` error.
pub fn roundtrip(stream: &mut TcpStream, request: &str) -> std::io::Result<String> {
    stream.write_all(request.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection without responding",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Convenience for one-shot clients: connect, round-trip a single request,
/// return the response line.
///
/// # Errors
/// Propagates connection and I/O failures.
pub fn request_once(addr: &str, request: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    roundtrip(&mut stream, request)
}

/// Client retry policy for transient, server-marked-retryable rejections
/// (queue full, injected faults, busy connection limits). The backoff is
/// *jittered but seeded*: for a fixed `seed` the jitter sequence — and
/// hence the whole retry schedule given the same server hints — is
/// reproducible, matching the workspace determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = behave like [`request_once`]).
    pub max_retries: u32,
    /// Base delay and jitter magnitude in ms.
    pub base_delay_ms: u64,
    /// Hard cap on a single backoff sleep in ms.
    pub max_delay_ms: u64,
    /// Seed for the jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_delay_ms: 50,
            max_delay_ms: 5_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (0-based), honoring the
    /// server's `retry_after_ms` hint when present: the sleep is the
    /// hint (or the base delay) scaled exponentially by attempt, plus a
    /// seeded jitter in `[0, base_delay_ms)`, capped at `max_delay_ms`.
    pub fn backoff(&self, attempt: u32, retry_after_ms: Option<u64>) -> Duration {
        let base = retry_after_ms.unwrap_or(self.base_delay_ms).max(1);
        let scaled = base.saturating_mul(1u64 << attempt.min(10));
        let jitter = SeedSequence::new(self.seed)
            .derive_indexed("submit.backoff", u64::from(attempt))
            % self.base_delay_ms.max(1);
        Duration::from_millis(scaled.saturating_add(jitter).min(self.max_delay_ms.max(1)))
    }
}

/// The `retry_after_ms` hint of a response line, when the line is an
/// error that carries one — the server's marker for "transient, safe to
/// retry". Non-error lines and unparsable lines return `None`.
pub fn retry_hint(line: &str) -> Option<u64> {
    let v = json::Json::parse(line).ok()?;
    if v.get("status").and_then(json::Json::as_str) != Some("error") {
        return None;
    }
    v.get("retry_after_ms").and_then(json::Json::as_u64)
}

/// [`request_once`] with seeded-backoff retries on responses the server
/// marked retryable (see [`retry_hint`]). Returns the last response —
/// retries exhausted still yield the server's error line, never a
/// client-synthesized one.
///
/// # Errors
/// Propagates connection and I/O failures of the final attempt.
pub fn request_with_retry(
    addr: &str,
    request: &str,
    policy: &RetryPolicy,
) -> std::io::Result<String> {
    let mut attempt = 0u32;
    loop {
        let line = request_once(addr, request)?;
        match retry_hint(&line) {
            Some(hint) if attempt < policy.max_retries => {
                chameleon_obs::counter!("server.client.retries").add(1);
                std::thread::sleep(policy.backoff(attempt, Some(hint)));
                attempt += 1;
            }
            _ => return Ok(line),
        }
    }
}

/// Extracts a field from a response line, parsed with the shared JSON
/// module (client-side convenience).
pub fn response_field(line: &str, key: &str) -> Option<json::Json> {
    json::Json::parse(line).ok()?.get(key).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_seeded_and_honors_the_hint() {
        let p = RetryPolicy {
            max_retries: 5,
            base_delay_ms: 40,
            max_delay_ms: 10_000,
            seed: 9,
        };
        // Reproducible: same policy, same attempt, same sleep.
        assert_eq!(p.backoff(2, Some(100)), p.backoff(2, Some(100)));
        // The hint sets the base: attempt 0 sleeps at least the hint.
        assert!(p.backoff(0, Some(300)) >= Duration::from_millis(300));
        // Exponential growth until the cap.
        assert!(p.backoff(3, Some(100)) > p.backoff(1, Some(100)));
        assert!(p.backoff(30, Some(100)) <= Duration::from_millis(10_000));
        // Different seeds give different jitter (for this attempt).
        let q = RetryPolicy { seed: 10, ..p };
        assert_ne!(p.backoff(1, None), q.backoff(1, None));
    }

    #[test]
    fn retry_hint_only_fires_on_marked_errors() {
        assert_eq!(
            retry_hint(r#"{"status":"error","error":"full","retry_after_ms":120}"#),
            Some(120)
        );
        assert_eq!(retry_hint(r#"{"status":"error","error":"bad"}"#), None);
        assert_eq!(
            retry_hint(r#"{"status":"ok","cached":false,"result":{}}"#),
            None
        );
        assert_eq!(retry_hint("garbage"), None);
    }
}
