//! `chameleond`: a zero-dependency anonymization job service.
//!
//! This crate wraps the Chameleon pipeline (`chameleon-core`,
//! `chameleon-reliability`, `chameleon-baseline`) in a long-lived TCP
//! daemon speaking newline-delimited JSON, so repeated anonymization runs
//! against the same graphs amortize process start-up and share a result
//! cache. Everything is `std`-only, matching the rest of the workspace.
//!
//! Architecture (see `DESIGN.md` §7 for the full treatment):
//!
//! * [`protocol`] — the NDJSON request/response grammar, parsed and
//!   rendered with the shared deterministic encoder
//!   ([`chameleon_obs::json`]).
//! * [`job`] — executable job specs bridging protocol requests to the
//!   library entry points, plus canonical cache-key derivation.
//! * [`queue`] — a bounded MPMC queue with non-blocking rejection
//!   (backpressure → `retry_after_ms`) and exact drain accounting.
//! * [`cache`] — a content-addressed LRU cache of rendered results; hits
//!   replay the cold response byte-for-byte.
//! * [`reactor`] — nonblocking event-loop primitives: a thin, safe
//!   wrapper over `poll(2)` (the workspace's only unsafe code) and the
//!   self-pipe wakeup channel worker threads use to rouse the loop.
//! * [`gateway`] — chameleon-gate (DESIGN.md §13): a consistent-hashing
//!   gateway that shards jobs across N backend daemons by graph digest,
//!   health-checks the fleet, and re-drives jobs off dead backends with
//!   byte-identical results.
//! * [`server`] — the single-threaded poll reactor owning every socket
//!   (nonblocking accept, per-connection read/write buffers, pipelined
//!   dispatch), the worker pool, per-job deadlines (cooperative
//!   cancellation via [`chameleon_core::CancelToken`]) and the graceful
//!   drain-then-flush shutdown sequence.
//! * [`sync`] — poison-recovering lock wrappers: a panicking lock holder
//!   is counted and survived, never propagated as a permanent outage.
//! * [`journal`] — the durability layer (DESIGN.md §11): an append-only,
//!   checksummed write-ahead log of job lifecycles with segment rotation,
//!   crash-tolerant replay, checkpointed GenObf searches and clean-stop
//!   compaction.
//! * [`faults`] — deterministic, seeded fault injection (worker panics,
//!   cancel-token trips, deferred readiness, short writes) for chaos
//!   tests; inert unless configured.
//!
//! Robustness contract (DESIGN.md §8): no client behaviour and no worker
//! panic may take the daemon down — panics are isolated per job
//! (`catch_unwind` → structured `job_panicked` error), request lines are
//! bounded in size and read under a deadline, and the connection pool is
//! capped.
//!
//! Determinism contract: for a fixed request (graph, parameters, seed)
//! the `result` object is byte-identical across thread counts, cache
//! state (cold vs. hit) and the CLI subcommand computing the same thing —
//! enforced by `tests/service.rs`, and under injected faults by
//! `tests/chaos.rs`.

#![warn(missing_docs)]
// `deny`, not `forbid`: the reactor module carries the workspace's single
// unsafe exception (the `poll(2)` FFI call) behind a scoped allow.
#![deny(unsafe_code)]

pub mod cache;
pub mod faults;
pub mod gateway;
pub mod job;
pub mod journal;
pub mod protocol;
pub mod queue;
pub mod reactor;
pub mod server;
pub mod sync;

pub use cache::{fnv1a64, CacheStats, ResultCache};
pub use faults::{FaultInjector, FaultPlan, JobFault};
pub use gateway::{Gateway, GatewayConfig, GatewayHandle, GatewayReport, HashRing};
pub use job::{AnonymizeMethod, Durability, ExecError, ExecOutput, JobSpec};
pub use journal::{Journal, JournalStats, JournalSync, ReplayJob, ReplaySummary};
pub use protocol::{
    chunk_frames, coded_error_response, codes, error_response, ok_response, parse_request,
    JobRequest, Request,
};
pub use queue::{BoundedQueue, PushError, QueueSnapshot};
pub use server::{
    read_response, request_once, request_with_retry, response_field, retry_hint, roundtrip,
    send_request, RetryPolicy, Server, ServerConfig, ServerHandle, ServerReport,
};
pub use sync::{poison_recoveries, RecoverableMutex};
