//! Content-addressed result cache with LRU eviction.
//!
//! Keys are derived by [`crate::job::JobSpec::cache_key`]: the FNV-1a
//! digest of the graph text plus the canonicalized job parameters
//! (defaults applied, `threads` excluded — results are thread-count
//! invariant by the PR-1 determinism contract, so a hit may legally serve
//! a request submitted at a different thread count). Values are the fully
//! rendered `result` JSON objects, so a hit replays the cold response
//! byte-for-byte.

use std::collections::HashMap;
use std::sync::Arc;

/// 64-bit FNV-1a digest; stable, dependency-free content addressing for
/// graph payloads and canonical parameter strings.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Point-in-time cache statistics (for `status` responses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Live entries.
    pub entries: usize,
    /// Maximum entries before eviction.
    pub capacity: usize,
    /// Lookups that found a value.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

struct Entry {
    value: Arc<str>,
    last_used: u64,
}

/// An LRU map from cache key to rendered result JSON.
///
/// Capacity 0 disables caching (every lookup misses, nothing is stored).
/// Eviction scans for the least-recently-used entry; capacities are small
/// (hundreds), so the linear scan is cheaper than maintaining an intrusive
/// list and has no pathological cases.
pub struct ResultCache {
    capacity: usize,
    tick: u64,
    map: HashMap<String, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// Creates a cache bounded at `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    ///
    /// Returns a shared handle rather than a copy: rendered results can be
    /// multi-megabyte (PR 9 scale), and a per-hit deep clone on the
    /// dispatch path would dominate cached-dispatch latency.
    pub fn get(&mut self, key: &str) -> Option<Arc<str>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores `value` under `key`, evicting the least-recently-used entry
    /// when at capacity. A no-op when capacity is 0.
    pub fn insert(&mut self, key: String, value: Arc<str>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
                self.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
            },
        );
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(
            fnv1a64(b"nodes 5\n0 1 0.5\n"),
            fnv1a64(b"nodes 5\n0 1 0.6\n")
        );
    }

    #[test]
    fn hit_miss_and_replay() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get("k1"), None);
        c.insert("k1".into(), "v1".into());
        assert_eq!(c.get("k1").as_deref(), Some("v1"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let mut c = ResultCache::new(2);
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        assert!(c.get("a").is_some()); // refresh "a"; "b" is now LRU
        c.insert("c".into(), "3".into());
        assert!(c.get("b").is_none(), "b should have been evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_without_eviction() {
        let mut c = ResultCache::new(2);
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        c.insert("a".into(), "1'".into());
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get("a").as_deref(), Some("1'"));
        assert_eq!(c.get("b").as_deref(), Some("2"));
    }

    #[test]
    fn hits_share_one_allocation() {
        // Two hits must hand back the same backing buffer, not copies.
        let mut c = ResultCache::new(2);
        c.insert("k".into(), "payload".into());
        let a = c.get("k").unwrap();
        let b = c.get("k").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert("a".into(), "1".into());
        assert_eq!(c.get("a"), None);
        assert_eq!(c.stats().entries, 0);
    }
}
