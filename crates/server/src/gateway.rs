//! chameleon-gate: a thin gateway that consistent-hashes jobs across a
//! fleet of `chameleond` backends (DESIGN.md §13).
//!
//! The gateway speaks the exact `chameleond` wire protocol on its client
//! side — `submit --via-gateway` is just `submit` pointed at a different
//! port — and owns no job execution of its own. Each accepted job line is
//! routed by the FNV-1a digest of its graph text over a consistent-hash
//! ring ([`HashRing`]) with virtual nodes, so all work on one graph lands
//! on one backend and that backend's LRU result cache becomes the graph's
//! shard of a distributed cache. Forwarding uses the retrying client
//! ([`crate::server::request_with_retry`]'s I/O semantics): transient
//! connect/read failures are retried with seeded backoff, and a backend
//! that stays dead is marked down and its jobs are *re-driven* to the
//! next live replica on the ring.
//!
//! Losslessness and byte-identity of failover both come from invariants
//! established by earlier layers, not from gateway cleverness:
//!
//! * backends journal `accepted` before acknowledging (DESIGN.md §11), so
//!   a killed backend's accepted jobs are recoverable by `--resume` — and
//!   independently, the gateway holds every request line until it has a
//!   complete response, so an in-flight job on a dead backend is simply
//!   re-sent to the ring successor;
//! * results are thread-count-, cache-state- and placement-invariant
//!   (the PR-1 determinism contract), so *which* backend computes a job
//!   cannot change a single result byte.
//!
//! Responses are forwarded verbatim (chunk frames included): the bytes a
//! client reads through the gateway are the bytes the backend wrote.
//! Structurally the gateway reuses the PR 7 poll(2) reactor shape for its
//! client side — one event-loop thread owning all sockets, a bounded
//! forward queue, a small forwarder pool doing the blocking backend I/O,
//! and an mpsc + self-pipe wakeup channel carrying finished responses
//! back to the loop. A background health thread probes every backend
//! with `status` requests, marking dead backends down before a client
//! job has to discover it, and reviving them when they return.

use crate::cache::fnv1a64;
use crate::protocol::{coded_error_response, codes, ok_response, parse_request, Request};
use crate::queue::{BoundedQueue, PushError};
use crate::reactor::{PollSet, Waker, Wakeup, POLLIN, POLLOUT};
use crate::server::{send_request, RetryPolicy};
use chameleon_obs::json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Idle poll timeout (re-check shutdown and deadlines without I/O).
const IDLE_POLL: Duration = Duration::from_millis(500);

/// Poll timeout while a shutdown waits for the forward queue to drain.
const DRAIN_POLL: Duration = Duration::from_millis(5);

/// Write-stall deadline, matching the backend daemon's.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Grace period for flushing final responses after shutdown is answered.
const FLUSH_GRACE: Duration = Duration::from_secs(2);

/// Connect/read budget for one health probe.
const PROBE_TIMEOUT: Duration = Duration::from_millis(1_000);

/// `retry_after_ms` hint on gateway-synthesized `no_backend` errors.
const NO_BACKEND_RETRY_MS: u64 = 500;

/// A consistent-hash ring with virtual nodes.
///
/// Each backend contributes `replicas` points hashed from
/// `"{addr}#{replica}"`; a key routes to the first point clockwise from
/// its own hash whose backend is alive. The construction is a pure
/// function of the backend list and replica count — two gateways (or two
/// runs) configured identically route identically — and removing one
/// backend only remaps the keys that backend owned (the consistent-hash
/// property the rebalance tests pin).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, backend index)`, sorted by point.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl HashRing {
    /// Builds the ring for `backends` with `replicas` virtual nodes each
    /// (minimum 1).
    pub fn new(backends: &[String], replicas: usize) -> Self {
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(backends.len() * replicas);
        for (idx, addr) in backends.iter().enumerate() {
            for r in 0..replicas {
                points.push((fnv1a64(format!("{addr}#{r}").as_bytes()), idx));
            }
        }
        points.sort_unstable();
        Self {
            points,
            backends: backends.len(),
        }
    }

    /// Number of backends the ring was built over.
    pub fn backend_count(&self) -> usize {
        self.backends
    }

    /// Number of ring points (backends × replicas).
    pub fn point_count(&self) -> usize {
        self.points.len()
    }

    /// Routes `key` to the first live backend clockwise from its hash
    /// point; `None` when every backend is dead (or the ring is empty).
    pub fn route(&self, key: u64, alive: impl Fn(usize) -> bool) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(point, _)| point < key);
        let n = self.points.len();
        for off in 0..n {
            let (_, idx) = self.points[(start + off) % n];
            if alive(idx) {
                return Some(idx);
            }
        }
        None
    }

    /// The backend owning `key` when everything is alive.
    pub fn owner(&self, key: u64) -> Option<usize> {
        self.route(key, |_| true)
    }
}

/// Configuration for [`Gateway::bind`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Backend `chameleond` addresses (`host:port`); must be non-empty.
    pub backends: Vec<String>,
    /// Forwarder threads doing the blocking backend I/O (0 = auto:
    /// twice the backend count, at least 4).
    pub forwarders: usize,
    /// Bounded forward-queue depth; a full queue rejects with
    /// `retry_after_ms`, exactly like the backend's job queue.
    pub queue_depth: usize,
    /// Virtual nodes per backend on the hash ring.
    pub replicas: usize,
    /// Interval between backend health probes in ms (0 disables the
    /// health thread; forwarders still mark backends dead on failure).
    pub health_interval_ms: u64,
    /// Retry policy for backend I/O (`io_retries` attempts with seeded
    /// backoff before a backend is declared dead and the job re-driven).
    pub retry: RetryPolicy,
    /// Request-line byte cap on client connections.
    pub max_request_bytes: usize,
    /// Maximum concurrently open client connections.
    pub max_connections: usize,
    /// Maximum elements per `batch` line, mirroring the backends'
    /// `--max-batch` so an oversized batch is rejected here with the
    /// same response it would get from a backend.
    pub max_batch: usize,
    /// Write the final metrics snapshot here on shutdown.
    pub metrics_path: Option<String>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            backends: Vec::new(),
            forwarders: 0,
            queue_depth: 64,
            replicas: 64,
            health_interval_ms: 500,
            retry: RetryPolicy::default(),
            max_request_bytes: 16 * 1024 * 1024,
            max_connections: 256,
            max_batch: 1024,
            metrics_path: None,
        }
    }
}

/// Final counters reported by [`Gateway::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GatewayReport {
    /// Request lines answered from a backend.
    pub forwarded: u64,
    /// Request lines re-driven to a ring successor after a backend died.
    pub redriven: u64,
    /// Responses synthesized because every backend was dead.
    pub no_backend_errors: u64,
    /// Request lines rejected at the gateway (queue full, shutdown).
    pub rejected: u64,
}

/// One request line travelling to a backend: the raw line (forwarded
/// verbatim), its routing key, how many logical responses it owes, and
/// the per-response ids needed to synthesize errors when no backend is
/// left to answer them.
struct ForwardJob {
    token: ConnToken,
    line: String,
    key: u64,
    expect: usize,
    ids: Vec<Option<String>>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct ConnToken {
    idx: usize,
    gen: u64,
}

struct Completion {
    token: ConnToken,
    wire: Vec<u8>,
}

struct GwShared {
    queue: BoundedQueue<ForwardJob>,
    ring: HashRing,
    backends: Vec<String>,
    alive: Vec<AtomicBool>,
    forwarded_per_backend: Vec<AtomicU64>,
    forwarded: AtomicU64,
    redriven: AtomicU64,
    no_backend_errors: AtomicU64,
    rejected: AtomicU64,
    shutting_down: AtomicBool,
    open_connections: AtomicUsize,
    started: Instant,
    retry: RetryPolicy,
    max_request_bytes: usize,
    max_connections: usize,
    max_batch: usize,
    queue_depth: usize,
    replicas: usize,
}

impl GwShared {
    fn report(&self) -> GatewayReport {
        GatewayReport {
            forwarded: self.forwarded.load(Ordering::Relaxed),
            redriven: self.redriven.load(Ordering::Relaxed),
            no_backend_errors: self.no_backend_errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Gateway `status` result object; field order fixed by construction.
    /// Queued/active are read as one [`crate::queue::QueueSnapshot`].
    fn status_json(&self) -> String {
        let queue = self.queue.snapshot();
        let mut backends = String::new();
        for (i, addr) in self.backends.iter().enumerate() {
            if i > 0 {
                backends.push(',');
            }
            backends.push_str(&format!(
                "{{\"addr\":{},\"alive\":{},\"forwarded\":{}}}",
                json::string(addr),
                self.alive[i].load(Ordering::Relaxed),
                self.forwarded_per_backend[i].load(Ordering::Relaxed),
            ));
        }
        format!(
            "{{\"gateway\":true,\"uptime_ms\":{},\"backends\":[{}],\
             \"ring_replicas\":{},\"queue_depth\":{},\"queue_capacity\":{},\
             \"in_flight\":{},\"forwarded\":{},\"redriven\":{},\
             \"no_backend_errors\":{},\"rejected\":{},\
             \"open_connections\":{},\"shutting_down\":{}}}",
            self.started.elapsed().as_millis(),
            backends,
            self.replicas,
            queue.queued,
            self.queue_depth,
            queue.active,
            self.forwarded.load(Ordering::Relaxed),
            self.redriven.load(Ordering::Relaxed),
            self.no_backend_errors.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.open_connections.load(Ordering::Relaxed),
            self.shutting_down.load(Ordering::Relaxed),
        )
    }
}

/// A bound-but-not-yet-running gateway instance.
pub struct Gateway {
    listener: TcpListener,
    shared: Arc<GwShared>,
    health_interval: Option<Duration>,
    forwarders: usize,
    metrics_path: Option<String>,
}

/// Handle to a gateway running on a background thread.
pub struct GatewayHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<GatewayReport>>,
}

impl GatewayHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the gateway to shut down.
    ///
    /// # Errors
    /// Propagates the run loop's I/O error, if any.
    pub fn join(self) -> std::io::Result<GatewayReport> {
        self.thread.join().expect("gateway thread panicked")
    }
}

impl Gateway {
    /// Binds the listener (without accepting yet).
    ///
    /// # Errors
    /// Fails on an empty backend list or bind failure.
    pub fn bind(config: GatewayConfig) -> std::io::Result<Gateway> {
        if config.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "gateway requires at least one backend (--backends)",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let forwarders = if config.forwarders == 0 {
            (config.backends.len() * 2).max(4)
        } else {
            config.forwarders
        };
        let n = config.backends.len();
        let shared = Arc::new(GwShared {
            queue: BoundedQueue::new(config.queue_depth),
            ring: HashRing::new(&config.backends, config.replicas),
            alive: (0..n).map(|_| AtomicBool::new(true)).collect(),
            forwarded_per_backend: (0..n).map(|_| AtomicU64::new(0)).collect(),
            backends: config.backends,
            forwarded: AtomicU64::new(0),
            redriven: AtomicU64::new(0),
            no_backend_errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            started: Instant::now(),
            retry: config.retry,
            max_request_bytes: config.max_request_bytes.max(64),
            max_connections: config.max_connections.max(1),
            max_batch: config.max_batch.max(1),
            queue_depth: config.queue_depth,
            replicas: config.replicas.max(1),
        });
        Ok(Gateway {
            listener,
            shared,
            health_interval: (config.health_interval_ms > 0)
                .then(|| Duration::from_millis(config.health_interval_ms)),
            forwarders,
            metrics_path: config.metrics_path,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// [`Gateway::bind`] + [`Gateway::run`] on a background thread.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn spawn(config: GatewayConfig) -> std::io::Result<GatewayHandle> {
        let gateway = Gateway::bind(config)?;
        let addr = gateway.local_addr();
        let thread = std::thread::Builder::new()
            .name("chameleon-gate".into())
            .spawn(move || gateway.run())
            .expect("spawn gateway thread");
        Ok(GatewayHandle { addr, thread })
    }

    /// Serves until a `shutdown` request completes: runs the reactor,
    /// drains the forward queue, joins the forwarders and the health
    /// thread, and flushes the final metrics snapshot.
    ///
    /// # Errors
    /// Propagates fatal reactor I/O errors.
    pub fn run(self) -> std::io::Result<GatewayReport> {
        let Gateway {
            listener,
            shared,
            health_interval,
            forwarders,
            metrics_path,
        } = self;
        let wakeup = Wakeup::new()?;
        let (tx, rx) = mpsc::channel::<Completion>();
        let forwarder_handles: Vec<_> = (0..forwarders)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                let waker = wakeup.waker().expect("clone waker");
                std::thread::Builder::new()
                    .name(format!("gate-forward-{i}"))
                    .spawn(move || forwarder_loop(&shared, &tx, &waker))
                    .expect("spawn forwarder")
            })
            .collect();
        drop(tx);
        let health_run = Arc::new(AtomicBool::new(true));
        let health_handle = health_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            let run = Arc::clone(&health_run);
            std::thread::Builder::new()
                .name("gate-health".into())
                .spawn(move || health_loop(&shared, &run, interval))
                .expect("spawn health thread")
        });
        listener.set_nonblocking(true)?;
        let mut reactor = GateReactor {
            listener,
            wakeup,
            completions: rx,
            shared: Arc::clone(&shared),
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            shutdown_requested: false,
            shutdown_waiters: Vec::new(),
            shutdown_answered: false,
            exit_deadline: None,
            poll: PollSet::new(),
            conn_slots: Vec::new(),
            scratch: vec![0u8; 64 * 1024],
        };
        let run_result = reactor.run();
        drop(reactor);
        shared.queue.close();
        for handle in forwarder_handles {
            let _ = handle.join();
        }
        health_run.store(false, Ordering::Relaxed);
        if let Some(handle) = health_handle {
            let _ = handle.join();
        }
        if let Some(path) = &metrics_path {
            let _ = std::fs::write(path, chameleon_obs::metrics_json());
        }
        run_result?;
        Ok(shared.report())
    }
}

/// Settles the forward queue's active count even if a forwarder unwinds.
struct TaskDoneGuard<'a>(&'a GwShared);

impl Drop for TaskDoneGuard<'_> {
    fn drop(&mut self) {
        self.0.queue.task_done();
    }
}

/// Per-forwarder pool of persistent backend connections, keyed by ring
/// index. A forwarder is strictly lockstep per backend (one job in
/// flight per connection), so reusing the socket across jobs is safe —
/// and saves a TCP handshake per forwarded job on the hot path.
type ConnPool = std::collections::HashMap<usize, BufReader<TcpStream>>;

fn forwarder_loop(shared: &Arc<GwShared>, respond: &mpsc::Sender<Completion>, waker: &Waker) {
    let mut pool = ConnPool::new();
    while let Some(job) = shared.queue.pop() {
        let _done = TaskDoneGuard(shared);
        let wire = drive_job(shared, &mut pool, &job);
        // The send happens before the guard marks the task done, so a
        // drained queue implies every response is already in the channel.
        let _ = respond.send(Completion {
            token: job.token,
            wire,
        });
        waker.wake();
    }
}

/// Synthesized per-response error lines for a job no backend can answer.
fn no_backend_wire(shared: &GwShared, job: &ForwardJob) -> Vec<u8> {
    shared
        .no_backend_errors
        .fetch_add(job.expect as u64, Ordering::Relaxed);
    chameleon_obs::counter!("gateway.no_backend").add(job.expect as u64);
    let mut wire = Vec::new();
    for id in &job.ids {
        let line = coded_error_response(
            id.as_deref(),
            codes::NO_BACKEND,
            "no live backend in the ring; retry later",
            Some(NO_BACKEND_RETRY_MS),
        );
        wire.extend_from_slice(line.as_bytes());
        wire.push(b'\n');
    }
    wire
}

/// Routes one job along the ring until a backend answers it in full, or
/// until every backend has been declared dead; returns the wire bytes to
/// hand the client. A backend whose I/O fails past the retry budget is
/// marked dead for everyone and the job moves to the ring successor
/// ("re-drive") — lossless because the whole request line is still in
/// hand, byte-identical because placement cannot change results.
fn drive_job(shared: &GwShared, pool: &mut ConnPool, job: &ForwardJob) -> Vec<u8> {
    let mut redrives = 0usize;
    loop {
        let Some(idx) = shared
            .ring
            .route(job.key, |i| shared.alive[i].load(Ordering::Relaxed))
        else {
            return no_backend_wire(shared, job);
        };
        match forward_collect(
            pool,
            idx,
            &shared.backends[idx],
            &job.line,
            job.expect,
            &shared.retry,
        ) {
            Ok(wire) => {
                shared.forwarded.fetch_add(1, Ordering::Relaxed);
                shared.forwarded_per_backend[idx].fetch_add(1, Ordering::Relaxed);
                chameleon_obs::counter!("gateway.forwarded").add(1);
                return wire;
            }
            Err(_) => {
                if shared.alive[idx].swap(false, Ordering::Relaxed) {
                    chameleon_obs::counter!("gateway.backend.died").add(1);
                }
                redrives += 1;
                // The health thread may revive backends while we loop;
                // bounding re-drives at the fleet size keeps one job from
                // chasing a flapping ring forever.
                if redrives > shared.backends.len() {
                    return no_backend_wire(shared, job);
                }
                shared.redriven.fetch_add(1, Ordering::Relaxed);
                chameleon_obs::counter!("gateway.jobs.redriven").add(1);
            }
        }
    }
}

/// One backend round-trip with the I/O retry budget of `policy`. A
/// pooled connection gets one grace attempt first: if it fails, it is
/// replaced by a fresh connect *without* touching the retry budget, so
/// a backend that dropped an idle socket is never mistaken for a dead
/// one. Fresh-connect failures sleep the seeded backoff and try again,
/// up to `io_retries` extra attempts; a connection that completes a
/// round-trip goes back into the pool.
fn forward_collect(
    pool: &mut ConnPool,
    idx: usize,
    addr: &str,
    line: &str,
    expect: usize,
    policy: &RetryPolicy,
) -> std::io::Result<Vec<u8>> {
    if let Some(mut reader) = pool.remove(&idx) {
        if let Ok(wire) = try_forward_on(&mut reader, line, expect) {
            pool.insert(idx, reader);
            return Ok(wire);
        }
    }
    let mut attempt = 0u32;
    loop {
        match try_forward(addr, line, expect) {
            Ok((wire, reader)) => {
                pool.insert(idx, reader);
                return Ok(wire);
            }
            Err(err) => {
                if !policy.retry_io || attempt >= policy.io_retries {
                    return Err(err);
                }
                chameleon_obs::counter!("gateway.backend.io_retries").add(1);
                std::thread::sleep(policy.backoff(attempt, None));
                attempt += 1;
            }
        }
    }
}

/// Opens a fresh backend connection and drives one round-trip on it;
/// returns the response wire bytes plus the connection for pooling.
fn try_forward(
    addr: &str,
    line: &str,
    expect: usize,
) -> std::io::Result<(Vec<u8>, BufReader<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    let wire = try_forward_on(&mut reader, line, expect)?;
    Ok((wire, reader))
}

/// Sends the raw request line down an existing backend connection and
/// collects `expect` complete logical responses as verbatim wire bytes
/// (chunk frames are passed through untouched; only their `last` marker
/// is inspected to count logical completion).
fn try_forward_on(
    reader: &mut BufReader<TcpStream>,
    line: &str,
    expect: usize,
) -> std::io::Result<Vec<u8>> {
    send_request(reader.get_mut(), line)?;
    reader.get_mut().flush()?;
    let mut wire = Vec::new();
    for _ in 0..expect {
        read_logical_verbatim(reader, &mut wire)?;
    }
    Ok(wire)
}

/// Appends the raw lines of one logical response to `wire`. A non-chunk
/// line is one complete response; chunk frames accumulate until the
/// `"last":true` frame. A connection that ends early — or mid-line — is
/// an `UnexpectedEof` so the caller re-drives instead of forwarding a
/// torn response.
fn read_logical_verbatim<R: BufRead>(reader: &mut R, wire: &mut Vec<u8>) -> std::io::Result<()> {
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backend closed the connection mid-response",
            ));
        }
        if !line.ends_with('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backend connection truncated mid-line",
            ));
        }
        let mut terminal = true;
        let trimmed = line.trim_end();
        if trimmed.contains("\"status\":\"chunk\"") {
            if let Ok(v) = json::Json::parse(trimmed) {
                if v.get("status").and_then(json::Json::as_str) == Some("chunk") {
                    terminal = v.get("last").and_then(json::Json::as_bool) == Some(true);
                }
            }
        }
        wire.extend_from_slice(line.as_bytes());
        if terminal {
            return Ok(());
        }
    }
}

fn health_loop(shared: &Arc<GwShared>, run: &AtomicBool, interval: Duration) {
    while run.load(Ordering::Relaxed) {
        for (i, addr) in shared.backends.iter().enumerate() {
            let ok = probe_backend(addr);
            let was = shared.alive[i].swap(ok, Ordering::Relaxed);
            if was != ok {
                if ok {
                    chameleon_obs::counter!("gateway.backend.revived").add(1);
                } else {
                    chameleon_obs::counter!("gateway.backend.died").add(1);
                }
            }
        }
        // Sleep in short steps so shutdown never waits a full interval.
        let mut left = interval;
        while run.load(Ordering::Relaxed) && left > Duration::ZERO {
            let step = left.min(Duration::from_millis(50));
            std::thread::sleep(step);
            left = left.saturating_sub(step);
        }
    }
}

/// One `status` round-trip under [`PROBE_TIMEOUT`]; any complete response
/// line proves the backend alive (even a `server_busy` rejection — a
/// saturated backend is not a dead one).
fn probe_backend(addr: &str) -> bool {
    let Some(sock_addr) = addr.to_socket_addrs().ok().and_then(|mut it| it.next()) else {
        return false;
    };
    let Ok(mut stream) = TcpStream::connect_timeout(&sock_addr, PROBE_TIMEOUT) else {
        return false;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(PROBE_TIMEOUT));
    if send_request(&mut stream, "{\"op\":\"status\"}").is_err() || stream.flush().is_err() {
        return false;
    }
    let mut reader = BufReader::new(stream);
    crate::server::read_response(&mut reader).is_ok()
}

/// One client connection owned by the gateway reactor (the trimmed
/// sibling of the daemon's `Conn`: same buffers and lifecycle states,
/// minus the per-line read deadline — the gateway fronts trusted
/// backends' clients, and the byte cap still bounds memory).
struct GwConn {
    stream: TcpStream,
    gen: u64,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    in_flight: usize,
    close_after_flush: bool,
    read_closed: bool,
    last_progress: Instant,
}

impl GwConn {
    fn new(stream: TcpStream, gen: u64) -> Self {
        Self {
            stream,
            gen,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            in_flight: 0,
            close_after_flush: false,
            read_closed: false,
            last_progress: Instant::now(),
        }
    }

    fn has_pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

fn push_line(conn: &mut GwConn, line: &str) {
    if !conn.has_pending_write() {
        conn.last_progress = Instant::now();
    }
    conn.wbuf.extend_from_slice(line.as_bytes());
    conn.wbuf.push(b'\n');
}

fn push_wire(conn: &mut GwConn, wire: &[u8]) {
    if !conn.has_pending_write() {
        conn.last_progress = Instant::now();
    }
    conn.wbuf.extend_from_slice(wire);
}

fn reject_busy(stream: &TcpStream, limit: usize) {
    let mut line = coded_error_response(
        None,
        codes::SERVER_BUSY,
        &format!("connection limit reached ({limit} open connections); retry later"),
        Some(200),
    );
    line.push('\n');
    let _ = (&*stream).write(line.as_bytes());
}

struct GateReactor {
    listener: TcpListener,
    wakeup: Wakeup,
    completions: mpsc::Receiver<Completion>,
    shared: Arc<GwShared>,
    conns: Vec<Option<GwConn>>,
    free: Vec<usize>,
    next_gen: u64,
    shutdown_requested: bool,
    shutdown_waiters: Vec<(ConnToken, Option<String>)>,
    shutdown_answered: bool,
    exit_deadline: Option<Instant>,
    poll: PollSet,
    conn_slots: Vec<(usize, usize)>,
    scratch: Vec<u8>,
}

impl GateReactor {
    fn run(&mut self) -> std::io::Result<()> {
        loop {
            self.answer_shutdown_when_drained();
            if self.exit_ready() {
                return Ok(());
            }
            self.tick()?;
        }
    }

    fn tick(&mut self) -> std::io::Result<()> {
        self.poll.clear();
        self.conn_slots.clear();
        let wake_slot = self.poll.register(self.wakeup.fd(), POLLIN);
        let listen_slot = if self.shutdown_requested {
            None
        } else {
            Some(self.poll.register(self.listener.as_raw_fd(), POLLIN))
        };
        for (idx, conn) in self.conns.iter().enumerate() {
            let Some(conn) = conn else { continue };
            let mut events: i16 = 0;
            if !conn.read_closed {
                events |= POLLIN;
            }
            if conn.has_pending_write() {
                events |= POLLOUT;
            }
            if events != 0 {
                self.conn_slots
                    .push((self.poll.register(conn.stream.as_raw_fd(), events), idx));
            }
        }
        let timeout = self.poll_timeout();
        self.poll.poll(Some(timeout))?;
        chameleon_obs::counter!("gateway.reactor.ticks").add(1);

        if self.poll.revents(wake_slot).readable() {
            self.wakeup.drain();
        }
        self.drain_completions();
        for k in 0..self.conn_slots.len() {
            let (slot, idx) = self.conn_slots[k];
            if self.poll.revents(slot).readable() {
                self.read_ready(idx);
            }
        }
        self.service_timers_and_flush();
        // Accept after reads and reaping, like the daemon: a slot freed
        // this tick must be reusable before the busy check.
        if let Some(slot) = listen_slot {
            if self.poll.revents(slot).readable() {
                self.accept_ready()?;
            }
        }
        Ok(())
    }

    fn poll_timeout(&self) -> Duration {
        if self.shutdown_requested && !self.shutdown_answered {
            return DRAIN_POLL;
        }
        let now = Instant::now();
        let mut nearest: Option<Instant> = self.exit_deadline;
        for conn in self.conns.iter().flatten() {
            if conn.has_pending_write() {
                let d = conn.last_progress + WRITE_TIMEOUT;
                nearest = Some(nearest.map_or(d, |n| n.min(d)));
            }
        }
        match nearest {
            Some(d) => d
                .saturating_duration_since(now)
                .max(Duration::from_millis(1))
                .min(IDLE_POLL),
            None => IDLE_POLL,
        }
    }

    fn drain_completions(&mut self) {
        while let Ok(done) = self.completions.try_recv() {
            let Some(conn) = self.conns.get_mut(done.token.idx).and_then(Option::as_mut) else {
                continue;
            };
            if conn.gen != done.token.gen {
                continue;
            }
            conn.in_flight = conn.in_flight.saturating_sub(1);
            if conn.close_after_flush {
                continue;
            }
            push_wire(conn, &done.wire);
        }
    }

    fn accept_ready(&mut self) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    chameleon_obs::counter!("gateway.connections").add(1);
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    if self.shared.open_connections.load(Ordering::Relaxed)
                        >= self.shared.max_connections
                    {
                        reject_busy(&stream, self.shared.max_connections);
                        continue;
                    }
                    self.insert_conn(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::Interrupted
                            | std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn insert_conn(&mut self, stream: TcpStream) {
        self.next_gen += 1;
        let conn = GwConn::new(stream, self.next_gen);
        match self.free.pop() {
            Some(idx) => self.conns[idx] = Some(conn),
            None => self.conns.push(Some(conn)),
        }
        self.shared.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    fn close_conn(&mut self, idx: usize) {
        if self.conns[idx].take().is_some() {
            self.free.push(idx);
            self.shared.open_connections.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn read_ready(&mut self, idx: usize) {
        let mut lines: Vec<Vec<u8>> = Vec::new();
        let mut fatal = false;
        let mut overflow = false;
        let mut truncated_bytes: Option<usize> = None;
        loop {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    if !conn.rbuf.is_empty() && !conn.close_after_flush && !overflow {
                        truncated_bytes = Some(conn.rbuf.len());
                        conn.rbuf.clear();
                    }
                    break;
                }
                Ok(n) => {
                    if conn.close_after_flush || overflow {
                        continue;
                    }
                    conn.rbuf.extend_from_slice(&self.scratch[..n]);
                    while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
                        let mut line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
                        line.pop();
                        if line.last() == Some(&b'\r') {
                            line.pop();
                        }
                        if line.len() > self.shared.max_request_bytes {
                            overflow = true;
                            break;
                        }
                        lines.push(line);
                    }
                    if conn.rbuf.len() > self.shared.max_request_bytes {
                        overflow = true;
                    }
                    if overflow {
                        conn.rbuf.clear();
                        continue;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    fatal = true;
                    break;
                }
            }
        }
        for line in lines {
            if self.conns[idx].is_none() {
                return;
            }
            self.handle_line(idx, line);
        }
        if fatal {
            self.close_conn(idx);
            return;
        }
        if let Some(conn) = self.conns[idx].as_mut() {
            if let Some(bytes) = truncated_bytes {
                push_line(
                    conn,
                    &coded_error_response(
                        None,
                        codes::BAD_REQUEST,
                        &format!("truncated request: {bytes} bytes without a newline before EOF"),
                        None,
                    ),
                );
                conn.close_after_flush = true;
            }
            if overflow {
                push_line(
                    conn,
                    &coded_error_response(
                        None,
                        codes::REQUEST_TOO_LARGE,
                        &format!(
                            "request line exceeds the {} byte limit",
                            self.shared.max_request_bytes
                        ),
                        None,
                    ),
                );
                conn.close_after_flush = true;
            }
        }
        let drained = self.conns[idx].as_ref().is_some_and(|c| {
            c.read_closed && !c.close_after_flush && c.in_flight == 0 && !c.has_pending_write()
        });
        if drained {
            self.close_conn(idx);
        }
    }

    fn handle_line(&mut self, idx: usize, raw: Vec<u8>) {
        let shared = Arc::clone(&self.shared);
        let gen = match self.conns[idx].as_ref() {
            Some(c) => c.gen,
            None => return,
        };
        let token = ConnToken { idx, gen };
        let line = match String::from_utf8(raw) {
            Ok(line) => line,
            Err(_) => {
                let resp = coded_error_response(
                    None,
                    codes::BAD_REQUEST,
                    "request line is not valid UTF-8",
                    None,
                );
                if let Some(conn) = self.conns[idx].as_mut() {
                    push_line(conn, &resp);
                }
                return;
            }
        };
        if line.trim().is_empty() {
            return;
        }
        // Parsed only to route and count responses — the *raw* line is
        // what a backend receives, so its responses match a direct
        // submission byte-for-byte.
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err((id, msg)) => {
                let resp = coded_error_response(id.as_deref(), codes::BAD_REQUEST, &msg, None);
                if let Some(conn) = self.conns[idx].as_mut() {
                    push_line(conn, &resp);
                }
                return;
            }
        };
        match request {
            Request::Status { id } => {
                let resp = ok_response(id.as_deref(), false, &shared.status_json());
                if let Some(conn) = self.conns[idx].as_mut() {
                    push_line(conn, &resp);
                }
            }
            Request::Shutdown { id } => {
                // Shuts down the *gateway*, not the fleet: backends are
                // shared infrastructure with their own lifecycles.
                shared.shutting_down.store(true, Ordering::Release);
                self.shutdown_requested = true;
                self.shutdown_waiters.push((token, id));
            }
            Request::Job(job) => {
                let key = job.spec.graph_digest();
                self.enqueue_forward(idx, token, line, key, vec![job.id]);
            }
            Request::Batch { id, items } => {
                if items.len() > shared.max_batch {
                    let resp = coded_error_response(
                        id.as_deref(),
                        codes::BATCH_TOO_LARGE,
                        &format!(
                            "batch of {} elements exceeds the {} element limit",
                            items.len(),
                            shared.max_batch
                        ),
                        None,
                    );
                    if let Some(conn) = self.conns[idx].as_mut() {
                        push_line(conn, &resp);
                    }
                    return;
                }
                // A batch routes whole-line by its first parsable
                // element's graph (elements of one batch usually share a
                // graph; splitting a line would break the protocol's
                // one-queue-slot batch semantics). Parse-failed elements
                // still get their per-element error from the backend.
                let key = items
                    .iter()
                    .find_map(|item| item.as_ref().ok())
                    .map(|job| job.spec.graph_digest())
                    .unwrap_or_else(|| fnv1a64(line.as_bytes()));
                let ids = items
                    .iter()
                    .map(|item| match item {
                        Ok(job) => job.id.clone(),
                        Err((id, _)) => id.clone(),
                    })
                    .collect();
                self.enqueue_forward(idx, token, line, key, ids);
            }
        }
    }

    /// Admits one raw request line to the forward queue, or rejects it
    /// with the same coded, hinted errors the backend daemon uses.
    fn enqueue_forward(
        &mut self,
        idx: usize,
        token: ConnToken,
        line: String,
        key: u64,
        ids: Vec<Option<String>>,
    ) {
        let shared = &self.shared;
        let expect = ids.len();
        let reject = |conn: &mut GwConn, code: &str, msg: &str, retry: Option<u64>| {
            for id in &ids {
                push_line(conn, &coded_error_response(id.as_deref(), code, msg, retry));
            }
        };
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if shared.shutting_down.load(Ordering::Acquire) {
            shared.rejected.fetch_add(expect as u64, Ordering::Relaxed);
            reject(conn, codes::SHUTTING_DOWN, "gateway is shutting down", None);
            return;
        }
        match shared.queue.try_push(ForwardJob {
            token,
            line,
            key,
            expect,
            ids: ids.clone(),
        }) {
            Ok(_) => {
                chameleon_obs::counter!("gateway.jobs.accepted").add(expect as u64);
                conn.in_flight += 1;
            }
            Err(PushError::Full { capacity }) => {
                shared.rejected.fetch_add(expect as u64, Ordering::Relaxed);
                chameleon_obs::counter!("gateway.jobs.rejected_full").add(expect as u64);
                let retry_ms = 100 * (1 + shared.queue.snapshot().active as u64).min(50);
                reject(
                    conn,
                    codes::QUEUE_FULL,
                    &format!("gateway queue full ({capacity} queued lines); retry later"),
                    Some(retry_ms),
                );
            }
            Err(PushError::Closed) => {
                shared.rejected.fetch_add(expect as u64, Ordering::Relaxed);
                reject(conn, codes::SHUTTING_DOWN, "gateway is shutting down", None);
            }
        }
    }

    fn answer_shutdown_when_drained(&mut self) {
        if !self.shutdown_requested || self.shutdown_answered {
            return;
        }
        if !self.shared.queue.is_drained() {
            return;
        }
        self.drain_completions();
        let report = self.shared.report();
        let result = format!(
            "{{\"drained\":true,\"forwarded\":{},\"redriven\":{},\
             \"no_backend_errors\":{},\"rejected\":{}}}",
            report.forwarded, report.redriven, report.no_backend_errors, report.rejected,
        );
        for (token, id) in std::mem::take(&mut self.shutdown_waiters) {
            let Some(conn) = self.conns.get_mut(token.idx).and_then(Option::as_mut) else {
                continue;
            };
            if conn.gen != token.gen {
                continue;
            }
            conn.close_after_flush = false;
            push_line(conn, &ok_response(id.as_deref(), false, &result));
            conn.close_after_flush = true;
        }
        self.shutdown_answered = true;
        self.exit_deadline = Some(Instant::now() + FLUSH_GRACE);
    }

    fn exit_ready(&self) -> bool {
        if !self.shutdown_answered {
            return false;
        }
        let all_flushed = self.conns.iter().flatten().all(|c| !c.has_pending_write());
        all_flushed || self.exit_deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn service_timers_and_flush(&mut self) {
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let mut close_now = false;
            if let Some(conn) = self.conns[idx].as_mut() {
                if conn.has_pending_write() {
                    // Dead socket, or alive but stalled past the write
                    // timeout: either way the connection is done.
                    close_now = !flush_conn(conn)
                        || (conn.has_pending_write()
                            && now.duration_since(conn.last_progress) > WRITE_TIMEOUT);
                }
                if !close_now && conn.close_after_flush && !conn.has_pending_write() {
                    close_now = true;
                }
                if !close_now
                    && conn.read_closed
                    && !conn.close_after_flush
                    && conn.in_flight == 0
                    && !conn.has_pending_write()
                {
                    close_now = true;
                }
            } else {
                continue;
            }
            if close_now {
                self.close_conn(idx);
            }
        }
    }
}

fn flush_conn(conn: &mut GwConn) -> bool {
    loop {
        let pending = &conn.wbuf[conn.wpos..];
        if pending.is_empty() {
            break;
        }
        match conn.stream.write(pending) {
            Ok(0) => return false,
            Ok(n) => {
                conn.wpos += n;
                conn.last_progress = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7000")).collect()
    }

    #[test]
    fn ring_construction_is_deterministic() {
        let a = HashRing::new(&addrs(5), 64);
        let b = HashRing::new(&addrs(5), 64);
        assert_eq!(a.point_count(), 5 * 64);
        for key in (0..10_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            assert_eq!(a.owner(key), b.owner(key));
        }
    }

    #[test]
    fn ring_spreads_keys_across_backends() {
        let ring = HashRing::new(&addrs(4), 64);
        let mut counts = [0usize; 4];
        for key in (0..40_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            counts[ring.owner(key).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > 40_000 / 16,
                "backend {i} owns only {c} of 40000 keys — ring badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn killing_a_backend_only_remaps_its_own_keys() {
        let ring = HashRing::new(&addrs(5), 64);
        let dead = 2usize;
        let mut dead_owned = 0usize;
        for key in (0..20_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let before = ring.owner(key).unwrap();
            let after = ring.route(key, |i| i != dead).unwrap();
            assert_ne!(after, dead);
            if before == dead {
                dead_owned += 1;
            } else {
                // The consistent-hash property: survivors keep their keys.
                assert_eq!(before, after, "live backend lost key {key:#x}");
            }
        }
        assert!(dead_owned > 0, "dead backend owned no keys at all");
    }

    #[test]
    fn route_skips_dead_backends_deterministically() {
        let ring = HashRing::new(&addrs(3), 32);
        for key in (0..5_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let a = ring.route(key, |i| i != 0);
            let b = ring.route(key, |i| i != 0);
            assert_eq!(a, b);
            assert_ne!(a, Some(0));
        }
        assert_eq!(ring.route(1, |_| false), None);
        assert_eq!(HashRing::new(&[], 64).route(1, |_| true), None);
    }

    #[test]
    fn empty_backend_list_fails_bind() {
        let err = match Gateway::bind(GatewayConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("bind accepted an empty backend list"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn gateway_answers_status_and_synthesizes_no_backend_errors() {
        // One dead backend (reserved then released port): jobs come back
        // as retryable `no_backend` errors, status reflects the outage,
        // and shutdown drains cleanly.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap().to_string();
        drop(dead);
        let handle = Gateway::spawn(GatewayConfig {
            backends: vec![dead_addr],
            health_interval_ms: 0,
            retry: RetryPolicy {
                io_retries: 0,
                base_delay_ms: 1,
                ..RetryPolicy::default()
            },
            ..GatewayConfig::default()
        })
        .unwrap();
        let addr = handle.addr().to_string();

        let status =
            crate::server::request_once(&addr, "{\"op\":\"status\",\"id\":\"s\"}").unwrap();
        assert!(status.contains("\"gateway\":true"), "got: {status}");
        assert!(status.contains("\"alive\":true"), "got: {status}");

        let job = crate::server::request_once(
            &addr,
            "{\"op\":\"check\",\"id\":\"j\",\"graph\":\"0 1 0.5\\n\",\"k\":2}",
        )
        .unwrap();
        assert!(job.contains("\"code\":\"no_backend\""), "got: {job}");
        assert!(job.contains("\"retry_after_ms\""), "got: {job}");
        assert!(job.contains("\"id\":\"j\""), "got: {job}");

        let bye = crate::server::request_once(&addr, "{\"op\":\"shutdown\"}").unwrap();
        assert!(bye.contains("\"drained\":true"), "got: {bye}");
        let report = handle.join().unwrap();
        assert_eq!(report.forwarded, 0);
        assert!(report.no_backend_errors >= 1);
    }
}
