//! Poison-recovering synchronization primitives.
//!
//! `std::sync::Mutex` poisons itself when a holder panics, and every
//! later `lock()` returns `Err(PoisonError)`. The daemon's original
//! `.expect("poisoned")` calls turned one worker panic into a permanent
//! outage: the panic poisoned the queue/cache mutex and every subsequent
//! request died unwinding on the poison error. Nothing the daemon guards
//! with a mutex has an invariant that a panic can actually break — the
//! queue holds owned jobs, the cache holds owned strings, and both are
//! valid after any prefix of their critical sections — so poisoning is
//! pure downside here. [`RecoverableMutex`] recovers the inner guard,
//! counts the event (`server.lock.poison_recovered` plus a process-wide
//! atomic readable in no-obs builds), and carries on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Process-wide count of poison recoveries (all [`RecoverableMutex`]es).
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// Total poisoned-lock recoveries since process start. Mirrored by the
/// `server.lock.poison_recovered` counter, but readable without obs.
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

fn note_recovery() {
    POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
    chameleon_obs::counter!("server.lock.poison_recovered").add(1);
}

/// A mutex whose `lock()` never fails: a poisoned lock is recovered (the
/// data is taken as-is) and the recovery is counted instead of being
/// fatal. Returns the plain [`MutexGuard`], so it composes with
/// [`Condvar`] via [`RecoverableMutex::wait`].
#[derive(Debug, Default)]
pub struct RecoverableMutex<T> {
    inner: Mutex<T>,
}

impl<T> RecoverableMutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering (and counting) poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                note_recovery();
                poisoned.into_inner()
            }
        }
    }

    /// `Condvar::wait` with the same recovery semantics as
    /// [`RecoverableMutex::lock`].
    pub fn wait<'a>(&self, condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match condvar.wait(guard) {
            Ok(guard) => guard,
            Err(poisoned) => {
                note_recovery();
                poisoned.into_inner()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_works_without_poison() {
        let m = RecoverableMutex::new(7);
        assert_eq!(*m.lock(), 7);
        *m.lock() = 8;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn poisoned_lock_recovers_and_counts() {
        let m = Arc::new(RecoverableMutex::new(vec![1, 2, 3]));
        let before = poison_recoveries();
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // The lock is poisoned now; a recoverable lock shrugs it off.
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        *m.lock() = vec![9];
        assert_eq!(*m.lock(), vec![9]);
        assert!(poison_recoveries() > before);
    }

    #[test]
    fn condvar_wait_round_trips() {
        let m = Arc::new(RecoverableMutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut guard = m2.lock();
            while !*guard {
                guard = m2.wait(&cv2, guard);
            }
            *guard
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }
}
