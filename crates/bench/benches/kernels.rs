//! Micro-benchmarks for the computational kernels of the reproduction,
//! including the paper's Lemma 2 vs Lemma 3 comparison: the naive per-edge
//! ERR estimator against Algorithm 2's reused-sampling estimator.

use chameleon_core::anonymity::{anonymity_check, AdversaryKnowledge};
use chameleon_core::relevance::{
    edge_reliability_relevance, edge_reliability_relevance_alg2, edge_reliability_relevance_naive,
    vertex_reliability_relevance,
};
use chameleon_core::uniqueness::uniqueness_scores;
use chameleon_datasets::brightkite_like;
use chameleon_reliability::{sample_distinct_pairs, WorldEnsemble};
use chameleon_stats::{PoissonBinomial, TruncatedNormal};
use chameleon_ugraph::{UncertainGraph, WorldSampler};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn graph(n: usize) -> UncertainGraph {
    brightkite_like(n, 1234)
}

fn bench_world_sampling(c: &mut Criterion) {
    let g = graph(500);
    let mut group = c.benchmark_group("world_sampling");
    group.bench_function("sample_one_world", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| black_box(WorldSampler::sample(&g, &mut rng)))
    });
    group.bench_function("connected_pairs_per_world", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let w = WorldSampler::sample(&g, &mut rng);
        b.iter(|| black_box(w.connected_pairs(&g)))
    });
    group.finish();
}

fn bench_ensemble(c: &mut Criterion) {
    let g = graph(500);
    let mut group = c.benchmark_group("ensemble");
    group.sample_size(20);
    group.bench_function("build_200_worlds", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(WorldEnsemble::sample(&g, 200, &mut rng))
        })
    });
    let mut rng = StdRng::seed_from_u64(3);
    let ens = WorldEnsemble::sample(&g, 200, &mut rng);
    let pairs = sample_distinct_pairs(g.num_nodes(), 500, &mut rng);
    group.bench_function("reliability_500_pairs", |b| {
        b.iter(|| black_box(ens.reliability_many(&pairs)))
    });
    group.finish();
}

/// Paper Lemma 2 vs Lemma 3: the reused-sampling ERR estimator
/// (Algorithm 2) against the naive per-edge baseline. The asymptotic gap
/// is a factor of |E|; keep the instance small so the naive side finishes.
fn bench_err_estimators(c: &mut Criterion) {
    let g = graph(120);
    let mut group = c.benchmark_group("err_lemma2_vs_lemma3");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("algorithm2_reused", g.num_edges()), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let ens = WorldEnsemble::sample(&g, 100, &mut rng);
            black_box(edge_reliability_relevance_alg2(&g, &ens))
        })
    });
    group.bench_function(BenchmarkId::new("coupled_default", g.num_edges()), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let ens = WorldEnsemble::sample(&g, 100, &mut rng);
            black_box(edge_reliability_relevance(&g, &ens))
        })
    });
    group.bench_function(BenchmarkId::new("naive_per_edge", g.num_edges()), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            black_box(edge_reliability_relevance_naive(&g, 100, &mut rng))
        })
    });
    group.finish();
}

fn bench_anonymity_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("anonymity_check");
    for n in [200usize, 500, 1000] {
        let g = graph(n);
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(anonymity_check(&g, &knowledge, 20)))
        });
    }
    group.finish();
}

fn bench_scores(c: &mut Criterion) {
    let g = graph(500);
    let mut group = c.benchmark_group("scores");
    group.bench_function("uniqueness_500", |b| {
        b.iter(|| black_box(uniqueness_scores(&g)))
    });
    let mut rng = StdRng::seed_from_u64(6);
    let ens = WorldEnsemble::sample(&g, 150, &mut rng);
    let err = edge_reliability_relevance(&g, &ens);
    group.bench_function("vrr_aggregate", |b| {
        b.iter(|| black_box(vertex_reliability_relevance(&g, &err)))
    });
    group.finish();
}

fn bench_traversal_kernels(c: &mut Criterion) {
    use chameleon_reliability::distance_constrained_reliability;
    use chameleon_reliability::metrics::anf::anf;
    use chameleon_reliability::metrics::hyperanf::hyperanf;
    use chameleon_ugraph::{World, WorldView};
    let g = graph(500);
    let mut group = c.benchmark_group("traversal");
    group.sample_size(20);
    group.bench_function("dcr_one_query_200_worlds", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(8);
            black_box(distance_constrained_reliability(
                &g, 0, 100, 4, 200, &mut rng,
            ))
        })
    });
    let mut full = World::empty(g.num_edges());
    for e in 0..g.num_edges() as u32 {
        full.set(e, true);
    }
    group.bench_function("fm_anf_64_sketches", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            let view = WorldView::new(&g, &full);
            black_box(anf(&view, 64, 32, &mut rng))
        })
    });
    group.bench_function("hyperanf_256_registers", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(10);
            let view = WorldView::new(&g, &full);
            black_box(hyperanf(&view, 8, 32, &mut rng))
        })
    });
    group.finish();
}

fn bench_stats_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    let probs: Vec<f64> = (0..64).map(|i| 0.1 + 0.8 * (i as f64 / 64.0)).collect();
    group.bench_function("poisson_binomial_64", |b| {
        b.iter(|| black_box(PoissonBinomial::new(&probs)))
    });
    let tn = TruncatedNormal::half_unit(0.3);
    group.bench_function("trunc_normal_sample", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(tn.sample(&mut rng)))
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_world_sampling,
    bench_ensemble,
    bench_err_estimators,
    bench_anonymity_check,
    bench_scores,
    bench_traversal_kernels,
    bench_stats_kernels
);
criterion_main!(kernels);
