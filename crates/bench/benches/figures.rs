//! Per-figure benchmark groups: each group runs a scaled-down version of
//! one paper table/figure pipeline so `cargo bench` exercises every
//! experiment end-to-end (full-scale regeneration is via the `table1`,
//! `fig3`, `fig4`, `fig8`–`fig11` / `figall` binaries — see DESIGN.md §5).

use chameleon_baseline::{extract_representative, RepresentativeStrategy};
use chameleon_bench::{anonymize, build_dataset, utility_errors, AnyMethod, ExperimentConfig};
use chameleon_datasets::DatasetKind;
use chameleon_stats::Histogram;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Tiny configuration shared by the figure benches.
fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        scale: 150,
        seed: 7,
        worlds: 60,
        pairs: 150,
        metric_worlds: 8,
        bfs_sources: 6,
        k_values: vec![8],
        epsilon: 0.08,
        trials: 2,
        threads: 1,
    }
}

fn bench_table1(c: &mut Criterion) {
    let cfg = tiny();
    c.bench_function("table1_dataset_characteristics", |b| {
        b.iter(|| {
            for kind in DatasetKind::ALL {
                let g = build_dataset(kind, &cfg);
                black_box((
                    g.num_edges(),
                    g.mean_edge_prob(),
                    g.expected_average_degree(),
                ));
            }
        })
    });
}

fn bench_fig3(c: &mut Criterion) {
    let cfg = tiny();
    let g = build_dataset(DatasetKind::Dblp, &cfg);
    c.bench_function("fig3_probability_histogram", |b| {
        b.iter(|| {
            let mut hist = Histogram::new(0.0, 1.0, 10);
            for e in g.edges() {
                hist.push(e.p);
            }
            black_box(hist.fractions())
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    let cfg = tiny();
    let g = build_dataset(DatasetKind::Brightkite, &cfg);
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("representative_extraction", |b| {
        b.iter(|| {
            black_box(extract_representative(
                &g,
                RepresentativeStrategy::ExpectedDegree,
            ))
        })
    });
    group.bench_function("repan_vs_rsme_cell", |b| {
        b.iter(|| {
            let repan = anonymize(&g, AnyMethod::RepAn, 8, &cfg);
            let rsme = anonymize(&g, AnyMethod::Rsme, 8, &cfg);
            black_box((repan.is_ok(), rsme.is_ok()))
        })
    });
    group.finish();
}

/// One sweep cell per method — the unit of work behind Figs. 8–11 (the
/// four figures share anonymizations and differ only in which metric they
/// read off `utility_errors`).
fn bench_fig8_to_11(c: &mut Criterion) {
    let cfg = tiny();
    let g = build_dataset(DatasetKind::Brightkite, &cfg);
    let mut group = c.benchmark_group("fig8_to_11_cells");
    group.sample_size(10);
    for method in AnyMethod::ALL {
        group.bench_function(format!("anonymize_{}", method.name()), |b| {
            b.iter(|| black_box(anonymize(&g, method, 8, &cfg)))
        });
    }
    let published = anonymize(&g, AnyMethod::Rsme, 8, &cfg).expect("rsme succeeds at tiny scale");
    group.bench_function("utility_metrics_all_four", |b| {
        b.iter(|| black_box(utility_errors(&g, &published, &cfg)))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig3,
    bench_fig4,
    bench_fig8_to_11
);
criterion_main!(figures);
