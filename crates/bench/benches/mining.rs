//! Benchmarks for the downstream mining tasks (reliable kNN, reliable
//! clusters, influence spread) — the workloads whose answers the
//! mining-utility experiment compares across releases.

use chameleon_datasets::brightkite_like;
use chameleon_mining::{
    greedy_seed_selection, influence_spread, reliability_knn, reliable_clusters,
};
use chameleon_reliability::WorldEnsemble;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_mining_tasks(c: &mut Criterion) {
    let g = brightkite_like(500, 77);
    let mut rng = StdRng::seed_from_u64(0);
    let ens = WorldEnsemble::sample(&g, 300, &mut rng);
    let mut group = c.benchmark_group("mining");
    group.sample_size(20);
    group.bench_function("reliability_knn_top10", |b| {
        b.iter(|| black_box(reliability_knn(&ens, 0, 10)))
    });
    group.bench_function("reliable_clusters", |b| {
        b.iter(|| black_box(reliable_clusters(&g, &ens, 0.5, 3)))
    });
    group.bench_function("influence_spread_5_seeds", |b| {
        b.iter(|| black_box(influence_spread(&ens, &[0, 10, 20, 30, 40])))
    });
    group.bench_function("greedy_seed_selection_k3", |b| {
        b.iter(|| black_box(greedy_seed_selection(&ens, 3)))
    });
    group.finish();
}

fn bench_ensemble_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mining_ensemble_scaling");
    group.sample_size(10);
    for worlds in [100usize, 300, 1000] {
        let g = brightkite_like(400, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let ens = WorldEnsemble::sample(&g, worlds, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(worlds), &worlds, |b, _| {
            b.iter(|| black_box(reliability_knn(&ens, 0, 10)))
        });
    }
    group.finish();
}

criterion_group!(mining, bench_mining_tasks, bench_ensemble_scaling);
criterion_main!(mining);
