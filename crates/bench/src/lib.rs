//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (see DESIGN.md §5 for the experiment index).
//!
//! Each figure/table has a binary in `src/bin/` that prints the series the
//! paper reports and writes CSV into `results/`. Criterion benches in
//! `benches/` time the computational kernels and run scaled-down versions
//! of each experiment pipeline.
//!
//! Scale note: the paper runs k ∈ \[100, 300\] on graphs of 12k–825k nodes.
//! The default reproduction scale is ~800-node synthetic analogues, with k
//! swept at matching *fractions* of |V| (k ≈ 1.25%–3.75% of n); every
//! binary accepts `--scale`, `--k`, `--worlds`, `--pairs`, `--seed` to run
//! larger.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod experiment;
pub mod sweep;
pub mod table;

pub use args::Args;
pub use experiment::{
    anonymize, build_dataset, utility_errors, AnyMethod, ExperimentConfig, UtilityErrors,
};
pub use sweep::{emit_figure, run_sweep, SweepRow};
pub use table::{write_csv, TablePrinter};
