//! Minimal command-line argument parsing for the experiment binaries
//! (kept dependency-free; the offline crate set has no CLI parser).

use std::collections::HashMap;

/// Parsed `--flag value` pairs plus positional arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses the process arguments (skipping the program name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator of arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    out.flags.insert(k.to_string(), v.to_string());
                } else if iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false)
                {
                    let value = iter.next().expect("peeked");
                    out.flags.insert(name.to_string(), value);
                } else {
                    out.switches.push(name.to_string());
                }
            } else {
                out.positional.push(arg);
            }
        }
        out
    }

    /// Typed flag lookup with default.
    ///
    /// # Panics
    /// Panics with a usage message when the value does not parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.flags.get(name) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                panic!("invalid value {raw:?} for --{name}");
            }),
        }
    }

    /// Comma-separated list flag, e.g. `--k 10,20,30`.
    pub fn get_list<T: std::str::FromStr>(&self, name: &str, default: Vec<T>) -> Vec<T> {
        match self.flags.get(name) {
            None => default,
            Some(raw) => raw
                .split(',')
                .map(|tok| {
                    tok.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("invalid list element {tok:?} for --{name}"))
                })
                .collect(),
        }
    }

    /// True when a bare `--name` switch was supplied.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name) || self.flags.contains_key(name)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flag_value_pairs() {
        let a = parse(&["--scale", "500", "--seed", "7"]);
        assert_eq!(a.get("scale", 0usize), 500);
        assert_eq!(a.get("seed", 0u64), 7);
        assert_eq!(a.get("missing", 42u64), 42);
    }

    #[test]
    fn equals_syntax() {
        let a = parse(&["--epsilon=0.05"]);
        assert!((a.get("epsilon", 0.0f64) - 0.05).abs() < 1e-15);
    }

    #[test]
    fn switches_and_positionals() {
        // Positionals precede switches: `--quick foo` would bind foo as the
        // flag's value (greedy), so binaries take positionals first.
        let a = parse(&["input.txt", "--quick"]);
        assert!(a.has("quick"));
        assert!(!a.has("slow"));
        assert_eq!(a.positional(), &["input.txt".to_string()]);
        // Greedy binding variant.
        let b = parse(&["--quick", "input.txt"]);
        assert!(b.has("quick"));
        assert!(b.positional().is_empty());
    }

    #[test]
    fn list_flag() {
        let a = parse(&["--k", "10,20,30"]);
        assert_eq!(a.get_list("k", vec![1usize]), vec![10, 20, 30]);
        assert_eq!(a.get_list("j", vec![5usize]), vec![5]);
    }

    #[test]
    fn switch_followed_by_flag() {
        let a = parse(&["--quick", "--scale", "100"]);
        assert!(a.has("quick"));
        assert_eq!(a.get("scale", 0usize), 100);
    }

    #[test]
    #[should_panic]
    fn invalid_value_panics() {
        let a = parse(&["--scale", "abc"]);
        let _ = a.get("scale", 0usize);
    }
}
